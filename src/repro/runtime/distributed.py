"""Distributed campaign execution: TCP coordinator + worker fleet.

The paper's grids (per-vendor, per-tRAS/tRC, fine NRH bisection over
thousands of rows) are embarrassingly parallel, and after the kernel-tier
work the remaining order-of-magnitude lever is scale-out across hosts.
:class:`FleetScheduler` is the ``fleet`` backend behind
:func:`repro.runtime.scheduler.make_scheduler` — the same shape as the
litex-rowhammer-tester ``litex_server``/``RemoteClient`` socket bridge
that drives real DRAM Bender boards remotely, but for simulation tasks:

* the **coordinator** (this process) listens on a TCP socket, leases
  *batches* of tasks to workers (one round trip per batch, not per task),
  tracks each lease in a monotonic deadline table, and is the only writer
  of the result store — workers push result bytes back over the wire and
  the coordinator publishes them with the same atomic durable writes the
  local pool uses;
* **workers** (``repro-experiments worker --connect host:port``, or the
  loopback processes the coordinator spawns itself) pull leases, execute
  them through the identical ``Task`` machinery — failure taxonomy,
  kernel graceful degradation included — in a private scratch directory,
  and report per-task outcomes;
* task payloads ship as **digests + args**, not pickles: heavy arguments
  (campaign/sweep configs) are content-addressed blobs sent at most once
  per worker (:mod:`repro.runtime.wire`), so warm workers receive
  digest-sized leases, and results compress above a size threshold;
* failures map onto the PR-7 taxonomy: a worker crash or disconnect is
  **infrastructure** (the lease is requeued without charging the point an
  attempt, bounded by ``max_infra_retries``), an overrun lease is a
  **timeout** (revoked — the in-flight generation is invalidated so a
  late result is dropped as stale — and reassigned, charged), worker-side
  exceptions classify exactly as they would locally.

Because every task derives its result only from its arguments and seed,
and retries/reassignments re-run the same pure function, the published
files are **byte-identical** to a local run for any worker count, lease
batch size, or failure interleaving — asserted by the fleet chaos
scenarios and the ``distributed-smoke`` CI job.

Trust model: see :mod:`repro.runtime.wire` — a worker executes
coordinator-named module-level callables, so only connect workers to a
coordinator you control (the CLI's own loopback fleet always qualifies).
"""

from __future__ import annotations

import base64
import heapq
import json
import os
import shutil
import socket
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import Any, Callable

from repro.errors import ConfigError
from repro.runtime.engine import Task, TaskPool, PoolReport
from repro.runtime.failures import (
    INFRASTRUCTURE,
    PERMANENT,
    TIMEOUT,
    TRANSIENT,
    TaskTimeout,
    classify_failure,
)
from repro.runtime.persist import quarantine, write_atomic
from repro.runtime.wire import (
    PROTOCOL_VERSION,
    FrameError,
    callable_ref,
    connect_with_retry,
    decode_value,
    encode_value,
    intern_args,
    recv_frame,
    referenced_blobs,
    resolve_callable,
    send_frame,
)

__all__ = ["FleetScheduler", "run_worker", "DEFAULT_LEASE_BATCH",
           "echo_point"]

#: Tasks per lease.  Batching amortizes the request/reply round trip; the
#: default keeps a small grid spread across workers while cutting frames
#: by ~4x on large ones.
DEFAULT_LEASE_BATCH = 4

#: How long an idle worker waits before asking again when the coordinator
#: has nothing ready (everything leased out, or retries backing off).
DEFAULT_POLL_S = 0.05

#: Per-worker counter names, fixed so ``run_report.json`` is stable.
_WORKER_STATS = ("tasks", "failures", "degraded", "revoked", "disconnects",
                 "stale_results")


def echo_point(n: int, path: str) -> None:
    """Trivial reference task (tests and the scheduler-overhead bench)."""
    write_atomic(path, json.dumps({"n": n, "echo": n * n + 1},
                                  sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
def _execute_spec(spec: dict, blobs: dict[str, Any],
                  scratch_root: Path) -> dict:
    """Run one leased task in a private scratch dir; return its outcome.

    The result file (and any siblings the task writes next to it, e.g. a
    ``*.violations.jsonl`` ledger) are shipped back base64-encoded; the
    scratch dir is deleted afterwards, so a worker host accumulates no
    state beyond its warm caches.
    """
    entry: dict[str, Any] = {"key": spec["key"], "gen": spec["gen"],
                             "status": "ok", "degraded": False}
    started = time.monotonic()
    task_dir = Path(tempfile.mkdtemp(prefix="task-", dir=scratch_root))
    path = task_dir / spec["path"]
    try:
        try:
            fn = resolve_callable(spec["fn"])
            args = [decode_value(a, task_path=str(path), blobs=blobs)
                    for a in spec["args"]]
        except Exception as error:  # noqa: BLE001 — reported, not raised
            entry.update(status="error", error=f"{error}",
                         error_class=classify_failure(error))
            return entry
        try:
            try:
                fn(*args)
            except Exception as error:  # noqa: BLE001 — degradation hook
                fallback = spec.get("fallback")
                if fallback is None or classify_failure(error) == TIMEOUT:
                    raise
                # Kernel graceful degradation, worker-side: one free re-run
                # on the fallback (scalar-oracle) args, exactly like the
                # local drain loop.
                entry["degraded"] = True
                entry["degraded_error"] = f"{error}"
                fn(*[decode_value(a, task_path=str(path), blobs=blobs)
                     for a in fallback])
        except Exception as error:  # noqa: BLE001 — classified for the wire
            entry.update(status="error", error=f"{error}",
                         error_class=classify_failure(error))
            return entry
        files: dict[str, str] = {}
        for file in sorted(task_dir.rglob("*")):
            if file.is_file():
                name = file.relative_to(task_dir).as_posix()
                files[name] = base64.b64encode(file.read_bytes()
                                               ).decode("ascii")
        if spec["path"] not in files:
            entry.update(status="error",
                         error=f"task produced no result file "
                               f"{spec['path']!r}",
                         error_class=TRANSIENT)
            return entry
        entry["files"] = files
        return entry
    finally:
        entry["elapsed_s"] = round(time.monotonic() - started, 6)
        shutil.rmtree(task_dir, ignore_errors=True)


def run_worker(host: str, port: int, *, worker_id: str | None = None,
               batch: int = DEFAULT_LEASE_BATCH,
               scratch_dir: str | Path | None = None,
               connect_timeout_s: float = 10.0) -> int:
    """Worker client: pull leases from ``host:port`` until shut down.

    Blocks until the coordinator says ``shutdown`` or the connection
    drops; returns 0 on a clean shutdown and 3 if the coordinator went
    away first (the run may simply have finished while this worker was
    idle — the coordinator closes every connection when it is done).
    ``scratch_dir`` overrides the temporary scratch root (kept if given,
    deleted otherwise).  Connecting retries with bounded exponential
    backoff for up to ``connect_timeout_s`` (a worker started moments
    before its coordinator must not die on the race), then raises
    :class:`~repro.errors.ConfigError` instead of hanging.
    """
    worker_id = worker_id or f"w-{socket.gethostname()}-{os.getpid()}"
    own_scratch = scratch_dir is None
    scratch_root = Path(scratch_dir) if scratch_dir is not None \
        else Path(tempfile.mkdtemp(prefix="repro-worker-"))
    scratch_root.mkdir(parents=True, exist_ok=True)
    sock = connect_with_retry(host, port, timeout_s=connect_timeout_s)
    blobs: dict[str, Any] = {}
    try:
        send_frame(sock, {"type": "hello", "worker": worker_id,
                          "pid": os.getpid(),
                          "protocol": PROTOCOL_VERSION,
                          "max": batch, "results": []})
        while True:
            try:
                reply = recv_frame(sock)
            except (ConnectionError, OSError):
                return 3  # coordinator gone (usually: the run finished)
            if reply is None or reply.get("type") == "shutdown":
                return 0
            if reply.get("type") == "error":
                raise ConfigError(f"coordinator refused worker: "
                                  f"{reply.get('error')}")
            if reply.get("type") == "idle":
                time.sleep(float(reply.get("poll_s", DEFAULT_POLL_S)))
                send_frame(sock, {"type": "lease", "max": batch,
                                  "results": []})
                continue
            # A lease: absorb new blob bodies, run the batch, report the
            # outcomes and ask for the next batch in the same frame.
            blobs.update(reply.get("blobs") or {})
            entries = [_execute_spec(spec, blobs, scratch_root)
                       for spec in reply.get("tasks") or []]
            send_frame(sock, {"type": "lease", "max": batch,
                              "results": entries})
    except (ConnectionError, BrokenPipeError, OSError):
        return 3
    finally:
        sock.close()
        if own_scratch:
            shutil.rmtree(scratch_root, ignore_errors=True)


# ---------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------
@dataclass
class _Lease:
    """One task currently out with a worker."""

    worker: str
    gen: int
    deadline: float | None
    task: Task


class FleetScheduler(TaskPool):
    """The ``fleet`` scheduler backend: lease tasks to a worker fleet.

    Inherits every shared contract from :class:`TaskPool` — resume/reuse,
    quarantine, the error ledger, ``run_report.json``, retry accounting —
    and overrides only the drain: instead of a local process pool, tasks
    are leased over TCP to ``workers`` spawned loopback worker processes
    and/or external ``repro-experiments worker`` clients connecting to the
    ``serve`` address.  ``timeout_s`` / per-task deadlines become lease
    deadlines enforced by the coordinator's revocation table.
    """

    def __init__(self, *, workers: int = 2,
                 serve: tuple[str, int] | None = None,
                 lease_batch: int = DEFAULT_LEASE_BATCH,
                 poll_s: float = DEFAULT_POLL_S,
                 **pool_options: Any) -> None:
        super().__init__(**pool_options)
        if workers < 0:
            raise ConfigError(f"workers must be >= 0, got {workers}")
        if workers == 0 and serve is None:
            raise ConfigError(
                "a fleet needs spawned loopback workers (workers >= 1) "
                "or a serve address for external ones")
        if lease_batch < 1:
            raise ConfigError(
                f"lease_batch must be >= 1, got {lease_batch}")
        self.workers = workers
        self.serve = serve
        self.lease_batch = lease_batch
        self.poll_s = poll_s
        #: ``(host, port)`` actually bound, set once listening (tests and
        #: external workers need the ephemeral port).
        self.bound_address: tuple[str, int] | None = None
        #: Set while the coordinator is accepting connections.
        self.serving = threading.Event()

    def _execute(self, pending: list[Task], loader: Callable[[Path], Any],
                 results: dict[str, Any], report: PoolReport) -> None:
        try:
            _FleetRun(self, pending, loader, results, report).execute()
        finally:
            self.serving.clear()


class _FleetRun:
    """One fleet run: the lease table, retry schedule, and worker server."""

    def __init__(self, pool: FleetScheduler, pending: list[Task],
                 loader: Callable[[Path], Any], results: dict[str, Any],
                 report: PoolReport) -> None:
        self.p = pool
        self.loader = loader
        self.results = results
        self.report = report
        self.pending = pending
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        self.queue: list[tuple[Task, bool]] = []
        #: (ready_at, seq, task, charge) — scheduled retries.
        self.retries: list[tuple[float, int, Task, bool]] = []
        self.attempts = {task.key: 0 for task in pending}
        self.gens: dict[str, int] = {}
        self.leases: dict[str, _Lease] = {}
        self.outstanding = {task.key for task in pending}
        self.blob_table: dict[str, Any] = {}
        self.worker_sent: dict[str, set[str]] = {}
        self.worker_stats: dict[str, dict[str, int]] = {}
        self.connected: set[str] = set()
        self.degraded_keys: set[str] = set()
        self.infra_strikes: dict[str, int] = {}
        self.closing = False
        self._seq = 0
        self._server: socket.socket | None = None
        self._conns: list[socket.socket] = []
        self._procs: list[Any] = []

    # ------------------------------------------------------------------
    def execute(self) -> None:
        for task, _charge in ((t, True) for t in self.pending):
            self.queue.append((task, True))
        address = self.p.serve or ("127.0.0.1", 0)
        self._server = socket.create_server(address)
        self.p.bound_address = self._server.getsockname()[:2]
        # Everything past the listener — including spawning — runs under
        # the shutdown guarantee: a Ctrl-C or crash anywhere below must
        # never orphan a spawned worker or leave a lease connection open.
        try:
            # Spawn loopback workers BEFORE starting any thread: forking
            # a multi-threaded parent can deadlock the child on inherited
            # lock state.  The workers connect immediately and block in
            # the listen backlog until the accept loop starts.
            self._spawn_workers()
            accept = threading.Thread(target=self._accept_loop, daemon=True,
                                      name="fleet-accept")
            accept.start()
            self.p.serving.set()
            with self.cond:
                while self.outstanding:
                    self._revoke_overdue()
                    if self._fleet_dead():
                        self._fail_remaining(
                            "every fleet worker is gone (no connections, "
                            "no live spawned workers)")
                        break
                    self.cond.wait(timeout=0.05)
        finally:
            self._shutdown()
        self.report.final_mode = "fleet"
        self.report.scheduler = "fleet"
        self.report.workers = {worker: dict(stats) for worker, stats
                               in sorted(self.worker_stats.items())}

    def _spawn_workers(self) -> None:
        if not self.p.workers:
            return
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork
            ctx = multiprocessing.get_context("spawn")
        host, port = self.p.bound_address
        connect_host = "127.0.0.1" if host in ("0.0.0.0", "") else host
        for index in range(self.p.workers):
            proc = ctx.Process(
                target=run_worker, args=(connect_host, port),
                kwargs={"worker_id": f"w{index + 1}",
                        "batch": self.p.lease_batch},
                daemon=True, name=f"repro-fleet-w{index + 1}")
            proc.start()
            self._procs.append(proc)

    def _fleet_dead(self) -> bool:
        """No worker will ever serve this run again.

        Only decidable for a pure loopback fleet: with an explicit serve
        address, an external worker may still connect, so the coordinator
        keeps waiting (the operator owns that fleet's lifecycle).
        """
        if self.connected or self.p.serve is not None:
            return False
        return all(not proc.is_alive() for proc in self._procs)

    def _fail_remaining(self, reason: str) -> None:
        for key in sorted(self.outstanding):
            task = next(t for t in self.pending if t.key == key)
            self._fail(task, reason, INFRASTRUCTURE)
        self.outstanding.clear()

    def _shutdown(self) -> None:
        """Tear the fleet down without orphans, however the run ended.

        Remote leases first: half-closing every connection unblocks a
        worker parked in ``recv`` so it exits on its own (external
        workers see "coordinator gone" and return cleanly).  Spawned
        loopback workers then get one short grace period *collectively*,
        and stragglers are escalated SIGTERM -> join -> SIGKILL — an
        interrupted coordinator (Ctrl-C mid-sweep) must never leave live
        children behind.
        """
        with self.lock:
            self.closing = True
            server, self._server = self._server, None
            conns, self._conns = list(self._conns), []
        if server is not None:
            try:
                server.close()
            except OSError:
                pass
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        deadline = time.monotonic() + 0.5
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()  # SIGTERM: let multiprocessing clean up
        for proc in self._procs:
            if proc.is_alive():
                proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)

    # ------------------------------------------------------------------
    # server threads
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._server.accept()
            except (OSError, AttributeError):
                return  # listener closed: the run is over
            with self.lock:
                if self.closing:
                    conn.close()
                    return
                self._conns.append(conn)
            threading.Thread(target=self._serve_worker, args=(conn,),
                             daemon=True, name="fleet-worker-conn").start()

    def _serve_worker(self, conn: socket.socket) -> None:
        worker: str | None = None
        try:
            hello = recv_frame(conn)
            if hello is None or hello.get("type") != "hello":
                return
            if hello.get("protocol") != PROTOCOL_VERSION:
                send_frame(conn, {
                    "type": "error",
                    "error": f"protocol {hello.get('protocol')!r} != "
                             f"{PROTOCOL_VERSION} (upgrade the worker)"})
                return
            worker = self._register(str(hello.get("worker") or "w-?"))
            message: dict = hello
            while True:
                with self.cond:
                    self._ingest(worker, message.get("results") or [])
                    reply = self._grant(
                        worker,
                        max(1, int(message.get("max")
                                   or self.p.lease_batch)))
                    self.cond.notify_all()
                send_frame(conn, reply)
                if reply["type"] == "shutdown":
                    with self.cond:
                        self.connected.discard(worker)
                        self.cond.notify_all()
                    return
                message = recv_frame(conn)
                if message is None:
                    raise ConnectionError("worker closed the connection")
        except Exception as error:  # noqa: BLE001 — classified as a loss
            if worker is not None:
                self._worker_lost(worker, error)
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _register(self, requested: str) -> str:
        with self.cond:
            worker = requested
            suffix = 2
            while worker in self.connected:
                worker = f"{requested}#{suffix}"
                suffix += 1
            self.connected.add(worker)
            self.worker_stats.setdefault(
                worker, {name: 0 for name in _WORKER_STATS})
            self.p.progress.worker_joined(worker, len(self.connected))
            return worker

    def _worker_lost(self, worker: str, error: BaseException) -> None:
        """A connection died: requeue its leases without charging them.

        The worker's results died with it through no fault of the tasks —
        the PR-7 infrastructure rule — but each loss still counts an
        infra strike, so a poison task that kills every worker it lands
        on is eventually abandoned as ``infrastructure`` instead of
        looping forever.
        """
        with self.cond:
            self.connected.discard(worker)
            if self.closing:
                self.cond.notify_all()
                return
            stats = self.worker_stats.setdefault(
                worker, {name: 0 for name in _WORKER_STATS})
            for key, lease in sorted(self.leases.items()):
                if lease.worker != worker:
                    continue
                del self.leases[key]
                stats["disconnects"] += 1
                task = lease.task
                # Refund the attempt charged at grant: requeue uncharged.
                self.attempts[key] -= 1
                strikes = self.infra_strikes.get(key, 0) + 1
                self.infra_strikes[key] = strikes
                self.report.infra_pauses += 1
                self.p._record(key, strikes, f"worker lost: {error}",
                               action="worker-lost", worker=worker,
                               **{"class": INFRASTRUCTURE})
                if strikes > self.p.max_infra_retries:
                    self._fail(task, f"worker lost: {error} "
                                     f"({strikes} strikes)", INFRASTRUCTURE)
                else:
                    self.queue.append((task, True))
            self.p.progress.worker_left(worker, len(self.connected),
                                        f"{error}")
            self.cond.notify_all()

    # ------------------------------------------------------------------
    # lease granting (lock held)
    # ------------------------------------------------------------------
    def _pop_ready(self, now: float) -> tuple[Task, bool] | None:
        while self.retries and self.retries[0][0] <= now:
            _, _, task, charge = heapq.heappop(self.retries)
            self.queue.append((task, charge))
        if self.queue:
            return self.queue.pop(0)
        return None

    def _push_retry(self, task: Task, ready_at: float, *,
                    charge: bool) -> None:
        self._seq += 1
        heapq.heappush(self.retries, (ready_at, self._seq, task, charge))

    def _grant(self, worker: str, maxn: int) -> dict:
        now = self.p.clock()
        specs: list[dict] = []
        while len(specs) < maxn:
            item = self._pop_ready(now)
            if item is None:
                break
            task, charge = item
            if charge:
                self.attempts[task.key] += 1
            gen = self.gens[task.key] = self.gens.get(task.key, 0) + 1
            timeout = task.timeout_s if task.timeout_s is not None \
                else self.p.timeout_s
            deadline = now + timeout if timeout is not None else None
            self.leases[task.key] = _Lease(worker, gen, deadline, task)
            specs.append(self._spec(task, gen))
        if specs:
            sent = self.worker_sent.setdefault(worker, set())
            needed: set[str] = set()
            for spec in specs:
                needed |= referenced_blobs(spec["args"])
                if spec["fallback"] is not None:
                    needed |= referenced_blobs(spec["fallback"])
            bodies = {digest: self.blob_table[digest]
                      for digest in sorted(needed - sent)}
            sent.update(bodies)
            self.p.progress.lease_update(
                worker, sum(1 for lease in self.leases.values()
                            if lease.worker == worker))
            return {"type": "lease", "tasks": specs, "blobs": bodies}
        if not self.outstanding:
            return {"type": "shutdown"}
        return {"type": "idle", "poll_s": self.p.poll_s}

    def _spec(self, task: Task, gen: int) -> dict:
        path_str = str(task.path)
        args = intern_args(
            [encode_value(a, task_path=path_str) for a in task.args],
            self.blob_table)
        fallback = None
        if task.fallback_args is not None:
            fallback = intern_args(
                [encode_value(a, task_path=path_str)
                 for a in task.fallback_args],
                self.blob_table)
        return {"key": task.key, "gen": gen, "fn": callable_ref(task.fn),
                "args": args, "fallback": fallback,
                "path": task.path.name}

    # ------------------------------------------------------------------
    # result ingestion (lock held)
    # ------------------------------------------------------------------
    def _ingest(self, worker: str, entries: list[dict]) -> None:
        stats = self.worker_stats[worker]
        for entry in entries:
            key = entry.get("key")
            lease = self.leases.get(key)
            if (lease is None or lease.worker != worker
                    or lease.gen != entry.get("gen")):
                # Revoked-and-reassigned (or plain unknown): the lease
                # table is the source of truth; drop the stale result.
                stats["stale_results"] += 1
                continue
            del self.leases[key]
            task = lease.task
            if entry.get("degraded") and key not in self.degraded_keys:
                self.degraded_keys.add(key)
                self.report.degraded.append(key)
                message = entry.get("degraded_error", "fast kernel failed")
                stats["degraded"] += 1
                self.p._record(key, self.attempts[key], message,
                               action="degraded", worker=worker)
                self.p.progress.task_degraded(key, message)
            if entry.get("status") == "ok":
                self._publish_ok(task, worker, entry, stats)
            else:
                stats["failures"] += 1
                self._failed_attempt(
                    task, worker, str(entry.get("error", "worker error")),
                    str(entry.get("error_class", TRANSIENT)))

    def _publish_ok(self, task: Task, worker: str, entry: dict,
                    stats: dict[str, int]) -> None:
        try:
            self._publish_files(task, entry.get("files") or {})
            loaded = self.loader(task.path)
        except Exception as error:  # noqa: BLE001 — classified transient
            if task.path.exists():
                quarantine(task.path)
            self.report.quarantined.append(task.key)
            # A corrupt shipped result is recomputable by construction:
            # always a (transient) retry, never a permanent verdict.
            self._failed_attempt(task, worker, f"{error}", TRANSIENT)
            return
        self.results[task.key] = loaded
        self.report.computed.append(task.key)
        self.outstanding.discard(task.key)
        stats["tasks"] += 1
        self.p.progress.task_done(task.key, worker=worker)

    def _publish_files(self, task: Task, files: dict[str, str]) -> None:
        """Atomically write the worker's shipped files into the store."""
        if task.path.name not in files:
            raise FrameError(
                f"worker shipped no result file {task.path.name!r}")
        for name, encoded in sorted(files.items()):
            rel = PurePosixPath(name)
            if rel.is_absolute() or ".." in rel.parts:
                raise FrameError(f"illegal shipped file name {name!r}")
            text = base64.b64decode(encoded).decode("utf-8")
            # The primary result gets the local pool's durable write;
            # side files (violation ledgers) take the cheaper default,
            # exactly as the in-process task function would.
            write_atomic(task.path.parent / rel, text,
                         durable=(name == task.path.name))

    def _failed_attempt(self, task: Task, worker: str, message: str,
                        classification: str) -> None:
        if classification not in (TRANSIENT, PERMANENT, TIMEOUT,
                                  INFRASTRUCTURE):
            classification = TRANSIENT
        key = task.key
        attempt = self.attempts[key]
        self.p._record(key, attempt, message, action="attempt",
                       worker=worker, **{"class": classification})
        if classification == PERMANENT:
            self._fail(task, message, classification)
            return
        if classification == INFRASTRUCTURE:
            # The worker's *environment* failed (full disk, OOM): refund
            # the attempt and retry after a pause, bounded separately.
            self.attempts[key] -= 1
            strikes = self.infra_strikes.get(key, 0) + 1
            self.infra_strikes[key] = strikes
            self.report.infra_pauses += 1
            if strikes > self.p.max_infra_retries:
                self._fail(task, message, INFRASTRUCTURE)
                return
            self.p.progress.task_retry(key, strikes, message,
                                       classification=INFRASTRUCTURE)
            self._push_retry(task, self.p.clock() + self.p.infra_pause_s,
                             charge=True)
            return
        if attempt < self.p.max_attempts:
            self.report.retried.append(key)
            self.p.progress.task_retry(key, attempt, message,
                                       classification=classification)
            delay = self.p.backoff_for(key, attempt)
            self._push_retry(task, self.p.clock() + delay, charge=True)
        else:
            self._fail(task, message, classification)

    def _fail(self, task: Task, error: str, classification: str) -> None:
        self.report.failed[task.key] = error
        self.report.failure_classes[task.key] = classification
        self.p._record(task.key, self.attempts[task.key], error,
                       action="abandoned", **{"class": classification})
        self.p.progress.task_failed(task.key, error)
        self.outstanding.discard(task.key)

    # ------------------------------------------------------------------
    # lease watchdog (main thread, lock held)
    # ------------------------------------------------------------------
    def _revoke_overdue(self) -> None:
        """Revoke leases past their deadline and reassign the tasks.

        The PR-7 watchdog, coordinator-style: the overrunning worker is
        not killed (it may be another host), but its lease generation is
        invalidated — a late result is dropped as stale — and the task is
        recharged and rescheduled exactly like a local watchdog timeout.
        """
        now = self.p.clock()
        for key, lease in sorted(self.leases.items()):
            if lease.deadline is None or lease.deadline > now:
                continue
            del self.leases[key]
            self.gens[key] = self.gens.get(key, 0) + 1
            task = lease.task
            self.report.lease_revocations += 1
            self.report.timeouts.append(key)
            self.worker_stats[lease.worker]["revoked"] += 1
            timeout = task.timeout_s if task.timeout_s is not None \
                else self.p.timeout_s
            attempt = self.attempts[key]
            error = TaskTimeout(
                f"no result within {timeout:g}s (attempt {attempt}; "
                f"lease revoked from {lease.worker})")
            self.p.progress.task_timeout(key, attempt, timeout)
            self.p._record(key, attempt, f"{error}", action="timeout",
                           worker=lease.worker, **{"class": TIMEOUT})
            if attempt < self.p.max_attempts:
                self.report.retried.append(key)
                delay = self.p.backoff_for(key, attempt)
                self._push_retry(task, now + delay, charge=True)
            else:
                self._fail(task, f"{error}", TIMEOUT)
