"""Progress and ETA reporting for campaigns and sweeps.

The paper's artifact tracks its Ramulator grid with ``check_run_status.py``;
this is that tracker for the execution engine.  The engine calls the
reporter as tasks are reused, finished, retried, or abandoned, and the
:class:`PrintProgress` implementation renders completion, elapsed time, and
an ETA extrapolated from the observed per-task rate.

The reporter is **scheduler-agnostic**: completion and ETA are aggregated
from the task-level events every backend emits — the local pool from its
drain loop, the fleet coordinator from its lease table (grant, report,
revoke) — never from pool internals.  Fleet runs additionally call the
worker hooks (:meth:`ProgressReporter.worker_joined` /
:meth:`ProgressReporter.worker_left` / :meth:`ProgressReporter.lease_update`)
and attribute each completion to the worker that computed it; local runs
never pass a worker, so the single-line local output format is unchanged.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

__all__ = ["ProgressReporter", "PrintProgress"]


class ProgressReporter:
    """No-op base reporter; library calls are silent unless one is passed."""

    def start(self, total: int, reused: int = 0) -> None:
        """A run begins: ``total`` tasks, ``reused`` already loaded from disk."""

    def task_done(self, key: str, *, worker: str | None = None) -> None:
        """One task computed and persisted successfully.

        ``worker`` names the fleet worker that computed it; the local
        scheduler's anonymous pool processes pass ``None``.
        """

    def task_retry(self, key: str, attempt: int, error: str, *,
                   classification: str = "transient") -> None:
        """One attempt failed; the task will be retried.

        ``classification`` is the engine's failure-taxonomy verdict
        (:mod:`repro.runtime.failures`): transient, timeout, or
        infrastructure — permanent failures are never retried.
        """

    def task_timeout(self, key: str, attempt: int, timeout_s: float) -> None:
        """The watchdog killed a worker that overran its deadline."""

    def task_degraded(self, key: str, error: str) -> None:
        """A fast kernel failed; the task re-runs on its fallback kernel."""

    def task_failed(self, key: str, error: str) -> None:
        """A task exhausted its attempts and was abandoned."""

    def pool_rebuilt(self, rebuilds: int, mode: str, reason: str) -> None:
        """The worker pool died (or was killed) and was replaced."""

    def worker_joined(self, worker: str, workers: int) -> None:
        """A fleet worker connected (``workers`` now connected in total)."""

    def worker_left(self, worker: str, workers: int, reason: str) -> None:
        """A fleet worker disconnected or crashed."""

    def lease_update(self, worker: str, in_flight: int) -> None:
        """A worker's lease changed; ``in_flight`` tasks now leased to it."""

    def finish(self) -> None:
        """The run is over (successfully or not)."""


class PrintProgress(ProgressReporter):
    """Prints one status line per event, with elapsed time and ETA."""

    def __init__(self, stream: TextIO | None = None,
                 clock=time.monotonic) -> None:
        self.stream = stream if stream is not None else sys.stdout
        self.clock = clock
        self.total = 0
        self.reused = 0
        self.done = 0
        self.failed = 0
        self.started_at = 0.0

    # ------------------------------------------------------------------
    def start(self, total: int, reused: int = 0) -> None:
        self.total = total
        self.reused = reused
        self.done = 0
        self.failed = 0
        self.started_at = self.clock()
        pending = total - reused
        if reused:
            self._emit(f"{total} tasks: {reused} reused from disk, "
                       f"{pending} to run")
        else:
            self._emit(f"{total} tasks to run")

    def task_done(self, key: str, *, worker: str | None = None) -> None:
        self.done += 1
        via = f" via {worker}" if worker is not None else ""
        self._emit(f"[{self._finished}/{self.total}] done {key}{via}"
                   f" ({self._timing()})")

    def task_retry(self, key: str, attempt: int, error: str, *,
                   classification: str = "transient") -> None:
        self._emit(f"[{self._finished}/{self.total}] retry {key} "
                   f"(attempt {attempt} failed [{classification}]: {error})")

    def task_timeout(self, key: str, attempt: int, timeout_s: float) -> None:
        self._emit(f"[{self._finished}/{self.total}] timeout {key} "
                   f"(attempt {attempt} exceeded {timeout_s:g}s; "
                   f"worker killed)")

    def task_degraded(self, key: str, error: str) -> None:
        self._emit(f"[{self._finished}/{self.total}] degraded {key} "
                   f"(fast kernel failed: {error}; retrying on the "
                   f"fallback kernel)")

    def task_failed(self, key: str, error: str) -> None:
        self.failed += 1
        self._emit(f"[{self._finished}/{self.total}] FAILED {key}: {error}")

    def pool_rebuilt(self, rebuilds: int, mode: str, reason: str) -> None:
        self._emit(f"worker pool rebuilt (#{rebuilds}, now {mode}): {reason}")

    def worker_joined(self, worker: str, workers: int) -> None:
        self._emit(f"worker {worker} joined ({workers} connected)")

    def worker_left(self, worker: str, workers: int, reason: str) -> None:
        self._emit(f"worker {worker} left ({workers} connected): {reason}")

    def finish(self) -> None:
        elapsed = self.clock() - self.started_at
        line = (f"{self._finished}/{self.total} tasks finished "
                f"in {elapsed:.1f}s")
        if self.failed:
            line += f" ({self.failed} failed)"
        self._emit(line)

    # ------------------------------------------------------------------
    @property
    def _finished(self) -> int:
        return self.reused + self.done + self.failed

    def _timing(self) -> str:
        elapsed = self.clock() - self.started_at
        remaining = self.total - self._finished
        if self.done and remaining > 0:
            eta = elapsed / self.done * remaining
            return f"elapsed {elapsed:.1f}s, eta {eta:.1f}s"
        return f"elapsed {elapsed:.1f}s"

    def _emit(self, line: str) -> None:
        if self.stream is None:
            return
        try:
            print(line, file=self.stream, flush=True)
        except (BrokenPipeError, ValueError):
            # stdout was closed under us (e.g. piped into `head`); keep the
            # run alive and stop reporting rather than abort the campaign.
            self.stream = None
