"""Shared fault-tolerant parallel execution engine (the artifact's
``run_ramulator_all.sh`` + ``check_run_status.py`` workflow, in-process).

Both :class:`~repro.characterization.campaign.CharacterizationCampaign` and
:class:`~repro.analysis.sweeprunner.SweepRunner` route all execution and
persistence through :class:`TaskPool`: atomic result writes, corrupt-result
quarantine on resume, bounded retry with an error ledger, and a
progress/ETA reporter.  ``jobs=1`` runs the identical code path serially.
"""

from repro.runtime.engine import (
    LEDGER_MAX_BYTES,
    LEDGER_NAME,
    PoolReport,
    Task,
    TaskPool,
)
from repro.runtime.persist import (
    CORRUPT_SUFFIX,
    discard_stale_tmp,
    quarantine,
    write_atomic,
)
from repro.runtime.progress import PrintProgress, ProgressReporter

__all__ = [
    "CORRUPT_SUFFIX",
    "LEDGER_MAX_BYTES",
    "LEDGER_NAME",
    "PoolReport",
    "PrintProgress",
    "ProgressReporter",
    "Task",
    "TaskPool",
    "discard_stale_tmp",
    "quarantine",
    "write_atomic",
]
