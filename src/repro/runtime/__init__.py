"""Shared fault-tolerant parallel execution engine (the artifact's
``run_ramulator_all.sh`` + ``check_run_status.py`` workflow, in-process).

Both :class:`~repro.characterization.campaign.CharacterizationCampaign` and
:class:`~repro.analysis.sweeprunner.SweepRunner` route all execution and
persistence through :class:`TaskPool`: atomic result writes, corrupt-result
quarantine on resume, bounded retry with an error ledger, and a
progress/ETA reporter.  ``jobs=1`` runs the identical code path serially.
"""

from repro.runtime.cache import (
    DigestCache,
    cache_counters,
    clear_disk_tiers,
    disk_tier_entries,
    registered_tiers,
    reset_cache_counters,
    summarize_caches,
)
from repro.runtime.engine import (
    LEDGER_MAX_BYTES,
    LEDGER_NAME,
    REPORT_NAME,
    PoolReport,
    Task,
    TaskPool,
    describe_run_report,
)
from repro.runtime.failures import (
    FAILURE_CLASSES,
    INFRASTRUCTURE,
    PERMANENT,
    TIMEOUT,
    TRANSIENT,
    TaskTimeout,
    classify_failure,
    register_failure,
    reset_failure_rules,
)
from repro.runtime.persist import (
    CORRUPT_SUFFIX,
    discard_stale_tmp,
    quarantine,
    write_atomic,
)
from repro.runtime.progress import PrintProgress, ProgressReporter
from repro.runtime.scheduler import (
    SCHEDULER_NAMES,
    make_scheduler,
    parse_address,
    validate_scheduler,
)

__all__ = [
    "CORRUPT_SUFFIX",
    "DigestCache",
    "FAILURE_CLASSES",
    "INFRASTRUCTURE",
    "LEDGER_MAX_BYTES",
    "LEDGER_NAME",
    "PERMANENT",
    "PoolReport",
    "PrintProgress",
    "ProgressReporter",
    "REPORT_NAME",
    "SCHEDULER_NAMES",
    "TIMEOUT",
    "TRANSIENT",
    "Task",
    "TaskPool",
    "TaskTimeout",
    "cache_counters",
    "classify_failure",
    "clear_disk_tiers",
    "describe_run_report",
    "discard_stale_tmp",
    "disk_tier_entries",
    "make_scheduler",
    "parse_address",
    "quarantine",
    "register_failure",
    "registered_tiers",
    "reset_cache_counters",
    "reset_failure_rules",
    "summarize_caches",
    "validate_scheduler",
    "write_atomic",
]
