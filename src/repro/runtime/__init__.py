"""Shared fault-tolerant parallel execution engine (the artifact's
``run_ramulator_all.sh`` + ``check_run_status.py`` workflow, in-process).

Both :class:`~repro.characterization.campaign.CharacterizationCampaign` and
:class:`~repro.analysis.sweeprunner.SweepRunner` route all execution and
persistence through :class:`TaskPool`: atomic result writes, corrupt-result
quarantine on resume, bounded retry with an error ledger, and a
progress/ETA reporter.  ``jobs=1`` runs the identical code path serially.
"""

from repro.runtime.cache import (
    DigestCache,
    cache_counters,
    clear_disk_tiers,
    disk_tier_entries,
    registered_tiers,
    reset_cache_counters,
    summarize_caches,
)
from repro.runtime.engine import (
    LEDGER_MAX_BYTES,
    LEDGER_NAME,
    PoolReport,
    Task,
    TaskPool,
)
from repro.runtime.persist import (
    CORRUPT_SUFFIX,
    discard_stale_tmp,
    quarantine,
    write_atomic,
)
from repro.runtime.progress import PrintProgress, ProgressReporter

__all__ = [
    "CORRUPT_SUFFIX",
    "DigestCache",
    "LEDGER_MAX_BYTES",
    "LEDGER_NAME",
    "PoolReport",
    "PrintProgress",
    "ProgressReporter",
    "Task",
    "TaskPool",
    "cache_counters",
    "clear_disk_tiers",
    "discard_stale_tmp",
    "disk_tier_entries",
    "quarantine",
    "registered_tiers",
    "reset_cache_counters",
    "summarize_caches",
    "write_atomic",
]
