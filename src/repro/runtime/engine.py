"""Fault-tolerant parallel task pool shared by campaigns and sweeps.

The artifact's ``run_ramulator_all.sh`` fans a grid of independent runs out
across many cores and resumes any that are missing; characterizing 30
modules is embarrassingly parallel by construction.  :class:`TaskPool` is
that engine for the in-process reproduction:

* each grid point is an independent :class:`Task` whose worker computes the
  result and persists it **atomically** to ``task.path``;
* on resume, existing result files are validated by the caller's loader —
  unparseable or schema-invalid files are quarantined (``*.corrupt``) and
  re-run instead of crashing the campaign;
* failures are *classified* (:mod:`repro.runtime.failures`): transient
  errors retry with bounded, seed-jittered exponential backoff; permanent
  (``ConfigError``-shaped) errors fail immediately with no retries;
  infrastructure errors (broken pool, ``ENOSPC``) pause, probe the result
  directory, and retry without charging the point an attempt; and every
  event lands in a per-run error ledger (``errors.jsonl``);
* retries are *scheduled*, not slept through: the drain loop keeps
  collecting finished futures while a retrying point waits out its
  backoff, so one flaky point never stalls the rest of the grid;
* a per-task **deadline** (``timeout_s``) arms a watchdog: the drain loop
  waits with a bounded timeout, and a worker that overruns is killed
  (the whole pool is torn down and rebuilt — a hung process cannot be
  cancelled politely), the in-flight survivors are re-enqueued without
  charge, and the timed-out point retries or fails as ``timeout``;
* a **broken pool** (a worker SIGKILLed by the OOM killer takes the whole
  ``ProcessPoolExecutor`` down) is rebuilt up to ``max_pool_rebuilds``
  times, re-enqueueing every in-flight point without charging attempts;
  if pools keep dying the engine degrades to *isolated* mode — one fresh
  single-worker pool per point, so a poison task breaks only itself and
  is finally identifiable — and to inline in-process execution if worker
  processes cannot be spawned at all;
* a task may carry ``fallback_args`` (the scalar-oracle kernel): if its
  primary args raise inside a worker, it is re-run once on the fallback
  — recorded as ``degraded`` — before normal retry logic applies, so a
  numpy edge case costs one point's speed, not the campaign;
* ``jobs=1`` runs the very same submission/retry/load code path inline
  (no subprocesses), so serial and parallel runs are the same engine —
  deadlines are only enforceable when workers are separate processes;
* every run ends by writing ``run_report.json`` next to the ledger: task
  counts, the failure-class breakdown, degradations, timeouts, and pool
  rebuilds, machine-readable for dashboards and asserted consistent with
  the ledger by a property test.

Workers must be module-level callables with picklable arguments (they cross
a ``ProcessPoolExecutor`` boundary when ``jobs > 1``), and results flow back
through the filesystem, not the pipe: the parent re-loads ``task.path``
after the worker finishes, so what a run returns is exactly what a resumed
run would reload.
"""

from __future__ import annotations

import heapq
import json
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable

from repro.errors import ConfigError, ExecutionError
from repro.rng import derive_seed
from repro.runtime.failures import (
    INFRASTRUCTURE,
    PERMANENT,
    TIMEOUT,
    TRANSIENT,
    TaskTimeout,
    classify_failure,
)
from repro.runtime.persist import discard_stale_tmp, quarantine, write_atomic
from repro.runtime.progress import ProgressReporter

__all__ = ["Task", "TaskPool", "PoolReport", "LEDGER_NAME",
           "LEDGER_MAX_BYTES", "REPORT_NAME", "describe_run_report"]

#: File name of the per-run error ledger, kept next to the results.
LEDGER_NAME = "errors.jsonl"

#: Default size cap of the error ledger.  A retry loop on a long campaign
#: must not fill the disk; when the ledger outgrows the cap, the oldest
#: records are dropped (the newest ones explain the current failures).
LEDGER_MAX_BYTES = 512 * 1024

#: File name of the end-of-run machine-readable report.
REPORT_NAME = "run_report.json"

#: ``run_report.json`` schema version (bump on breaking shape changes).
#: v2 adds the scheduler name, per-worker task/failure/degraded counts, and
#: lease-revocation stats; every v1 field keeps its exact shape, so v1
#: readers (which ``.get`` what they need) keep working.
REPORT_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class Task:
    """One independent grid point.

    ``fn(*args)`` must compute the point and persist it atomically to
    ``path`` (see :func:`repro.runtime.persist.write_atomic`); its return
    value is ignored — the pool re-loads ``path`` instead.

    ``timeout_s`` overrides the pool-wide deadline for this task;
    ``fallback_args`` are the graceful-degradation arguments (typically
    the same args with the scalar-oracle kernel substituted): if the
    primary args raise inside a worker, the task re-runs once on the
    fallback before normal retry accounting resumes.
    """

    key: str
    path: Path
    fn: Callable[..., Any]
    args: tuple = ()
    timeout_s: float | None = None
    fallback_args: tuple | None = None


class _InlineExecutor:
    """``jobs=1`` executor: runs each submission immediately, in-process.

    Implements just enough of the ``Executor`` protocol for the pool's
    submit/wait/retry loop, so the serial path exercises the exact same
    engine code as the parallel one.
    """

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as error:  # noqa: BLE001 — mirrored to future
            future.set_exception(error)
        return future

    def shutdown(self, wait: bool = True,
                 cancel_futures: bool = False) -> None:
        return None

    def __enter__(self) -> "_InlineExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


@dataclass
class PoolReport:
    """What happened during one :meth:`TaskPool.run` call."""

    reused: list[str] = field(default_factory=list)
    computed: list[str] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)
    retried: list[str] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)
    #: Failure-taxonomy class of each permanently failed key.
    failure_classes: dict[str, str] = field(default_factory=dict)
    #: Keys whose worker overran its deadline (one entry per event).
    timeouts: list[str] = field(default_factory=list)
    #: Keys re-run on their fallback (scalar-oracle) args.
    degraded: list[str] = field(default_factory=list)
    #: Pause-and-probe cycles taken for infrastructure failures.
    infra_pauses: int = 0
    #: Times a broken worker pool was replaced.
    pool_rebuilds: int = 0
    #: Times the watchdog tore a pool down for a deadline overrun.
    watchdog_kills: int = 0
    #: Execution mode the run ended in: ``pool``, ``isolated``, ``inline``
    #: (local scheduler) or ``fleet`` (distributed scheduler).
    final_mode: str = "inline"
    #: Which scheduler backend produced this report.
    scheduler: str = "local"
    #: Per-worker counters (fleet runs; empty for the local pool, whose
    #: worker processes are anonymous and interchangeable).
    workers: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Leases the coordinator revoked from overrunning workers.
    lease_revocations: int = 0


def describe_run_report(payload: dict) -> str:
    """One human line summarizing a persisted ``run_report.json``."""
    counts = payload.get("counts", {})
    pool = payload.get("pool", {})
    parts = [f"computed {counts.get('computed', 0)}",
             f"reused {counts.get('reused', 0)}",
             f"failed {counts.get('failed', 0)}"]
    for quiet in ("quarantined", "retries", "timeouts", "degraded",
                  "infra_pauses"):
        if counts.get(quiet):
            parts.append(f"{quiet} {counts[quiet]}")
    if pool.get("rebuilds"):
        parts.append(f"pool rebuilds {pool['rebuilds']}")
    if pool.get("watchdog_kills"):
        parts.append(f"watchdog kills {pool['watchdog_kills']}")
    # v2 fields; absent from v1 payloads, which must keep describing fine.
    workers = payload.get("workers") or {}
    if workers:
        parts.append(f"workers {len(workers)}")
    revoked = (payload.get("leases") or {}).get("revoked", 0)
    if revoked:
        parts.append(f"leases revoked {revoked}")
    classes = {name: count
               for name, count in payload.get("failure_classes", {}).items()
               if count}
    line = "last run: " + ", ".join(parts)
    if classes:
        breakdown = ", ".join(f"{name}={count}"
                              for name, count in sorted(classes.items()))
        line += f" [{breakdown}]"
    return line


class TaskPool:
    """Resumable, retrying executor for a list of independent tasks."""

    def __init__(self, *, jobs: int | None = None, max_attempts: int = 3,
                 backoff_s: float = 0.1, backoff_max_s: float = 30.0,
                 backoff_jitter: float = 0.25,
                 timeout_s: float | None = None,
                 max_pool_rebuilds: int = 3,
                 max_infra_retries: int = 5,
                 infra_pause_s: float = 1.0,
                 seed: int = 0,
                 ledger_path: str | Path | None = None,
                 ledger_max_bytes: int = LEDGER_MAX_BYTES,
                 report_path: str | Path | None = None,
                 progress: ProgressReporter | None = None,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic) -> None:
        import os
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {max_attempts}")
        if ledger_max_bytes < 1:
            raise ConfigError(
                f"ledger_max_bytes must be >= 1, got {ledger_max_bytes}")
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigError(f"timeout_s must be positive, got {timeout_s}")
        if backoff_max_s < 0 or backoff_jitter < 0:
            raise ConfigError("backoff_max_s and backoff_jitter must be >= 0")
        if max_pool_rebuilds < 0 or max_infra_retries < 0:
            raise ConfigError(
                "max_pool_rebuilds and max_infra_retries must be >= 0")
        self.jobs = jobs
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self.backoff_jitter = backoff_jitter
        self.timeout_s = timeout_s
        self.max_pool_rebuilds = max_pool_rebuilds
        self.max_infra_retries = max_infra_retries
        self.infra_pause_s = infra_pause_s
        self.seed = seed
        self.ledger_path = Path(ledger_path) if ledger_path else None
        self.ledger_max_bytes = ledger_max_bytes
        self.report_path = Path(report_path) if report_path else None
        self.progress = progress or ProgressReporter()
        self.sleep = sleep
        self.clock = clock
        self.last_report: PoolReport | None = None
        self._run_started_monotonic = time.monotonic()

    # ------------------------------------------------------------------
    def backoff_for(self, key: str, attempt: int) -> float:
        """Retry delay after failed ``attempt`` of ``key``.

        Exponential in the attempt number but bounded by
        ``backoff_max_s``, plus deterministic seed-derived jitter (a
        fraction of the base in ``[0, backoff_jitter)``) so a grid of
        points that failed together — one NFS hiccup hits every worker
        at once — does not resubmit in lockstep and recreate the spike.
        """
        base = min(self.backoff_s * (2 ** (attempt - 1)), self.backoff_max_s)
        if base <= 0 or self.backoff_jitter <= 0:
            return max(base, 0.0)
        unit = derive_seed(self.seed, "backoff", key, attempt) / 2.0 ** 64
        return base * (1.0 + self.backoff_jitter * unit)

    # ------------------------------------------------------------------
    def run(self, tasks: list[Task], loader: Callable[[Path], Any], *,
            force: bool = False) -> dict[str, Any]:
        """Run (or resume) ``tasks``; returns ``{key: loaded result}``.

        Existing result files are validated through ``loader`` and reused;
        corrupt ones are quarantined and re-run.  Raises
        :class:`~repro.errors.ExecutionError` after all points have been
        attempted if any failed permanently — everything else is persisted,
        so a follow-up run only re-attempts the failures.
        """
        keys = [task.key for task in tasks]
        if len(set(keys)) != len(keys):
            raise ConfigError("task keys must be unique within one run")
        self._run_started_monotonic = time.monotonic()
        report = PoolReport()
        self.last_report = report
        results: dict[str, Any] = {}
        pending: list[Task] = []
        for task in tasks:
            if force or not task.path.exists():
                pending.append(task)
                continue
            try:
                results[task.key] = loader(task.path)
                report.reused.append(task.key)
            except Exception as error:  # corrupt / schema-invalid result
                moved = quarantine(task.path)
                report.quarantined.append(task.key)
                self._record(task.key, 0, f"{error}",
                             action="quarantine", moved_to=str(moved))
                pending.append(task)
        self.progress.start(len(tasks), reused=len(report.reused))
        if pending:
            for directory in {task.path.parent for task in pending}:
                discard_stale_tmp(directory)
            self._execute(pending, loader, results, report)
        self.progress.finish()
        self._write_report(len(tasks), report)
        if report.failed:
            ledger = f" (ledger: {self.ledger_path})" if self.ledger_path else ""
            named = ", ".join(
                f"{key} [{report.failure_classes.get(key, TRANSIENT)}]"
                for key in sorted(report.failed))
            raise ExecutionError(
                f"{len(report.failed)}/{len(tasks)} points failed permanently "
                f"after {self.max_attempts} attempts: {named}{ledger}")
        return {key: results[key] for key in keys}

    # ------------------------------------------------------------------
    def _execute(self, pending: list[Task], loader: Callable[[Path], Any],
                 results: dict[str, Any], report: PoolReport) -> None:
        """Drain ``pending`` into ``results``/``report``.

        The scheduler seam: :class:`TaskPool` drains through a local
        process pool; :class:`repro.runtime.distributed.FleetScheduler`
        overrides this one method to drain through a worker fleet.  Reuse,
        quarantine, ledgering, reporting, and the failure contract all
        live in :meth:`run` and are shared by every backend.
        """
        _Drain(self, pending, loader, results, report).execute()

    # ------------------------------------------------------------------
    def _write_report(self, total: int, report: PoolReport) -> None:
        """Persist ``run_report.json`` next to the results/ledger."""
        path = self.report_path
        if path is None and self.ledger_path is not None:
            path = self.ledger_path.parent / REPORT_NAME
        if path is None:
            return
        class_counts: dict[str, int] = {}
        for classification in report.failure_classes.values():
            class_counts[classification] = \
                class_counts.get(classification, 0) + 1
        payload = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "scheduler": report.scheduler,
            "jobs": self.jobs,
            "tasks": total,
            "elapsed_s": round(
                time.monotonic() - self._run_started_monotonic, 6),
            "counts": {
                "reused": len(report.reused),
                "computed": len(report.computed),
                "quarantined": len(report.quarantined),
                "retries": len(report.retried),
                "timeouts": len(report.timeouts),
                "degraded": len(report.degraded),
                "infra_pauses": report.infra_pauses,
                "failed": len(report.failed),
            },
            "pool": {
                "rebuilds": report.pool_rebuilds,
                "watchdog_kills": report.watchdog_kills,
                "final_mode": report.final_mode,
            },
            "failure_classes": class_counts,
            "failed": {
                key: {"error": message,
                      "class": report.failure_classes.get(key, TRANSIENT)}
                for key, message in sorted(report.failed.items())
            },
            "degraded_keys": sorted(set(report.degraded)),
            "timeout_keys": sorted(set(report.timeouts)),
            "workers": {worker: dict(sorted(stats.items()))
                        for worker, stats in sorted(report.workers.items())},
            "leases": {"revoked": report.lease_revocations},
        }
        write_atomic(path, json.dumps(payload, indent=1, sort_keys=True) + "\n")

    # ------------------------------------------------------------------
    def _record(self, key: str, attempt: int, error: str, *,
                action: str, worker: str = "local", **extra: str) -> None:
        """Append one event to the error ledger (if one is configured).

        Each record carries the retry ``attempt`` number, the monotonic
        ``elapsed_s`` since the run started (wall-clock ``time`` can jump
        backwards under NTP; debugging a retry storm needs real durations),
        and the ``worker`` the event is attributed to — ``"local"`` for the
        in-process pool, the worker id for fleet runs.
        """
        if self.ledger_path is None:
            return
        record = {"key": key, "action": action, "attempt": attempt,
                  "error": error, "worker": worker, "time": time.time(),
                  "elapsed_s": round(
                      time.monotonic() - self._run_started_monotonic, 6),
                  **extra}
        self.ledger_path.parent.mkdir(parents=True, exist_ok=True)
        with self.ledger_path.open("a") as ledger:
            ledger.write(json.dumps(record) + "\n")
        self._trim_ledger()

    def _trim_ledger(self) -> None:
        """Drop oldest ledger records once the file outgrows the cap."""
        try:
            size = self.ledger_path.stat().st_size
        except OSError:
            return
        if size <= self.ledger_max_bytes:
            return
        lines = self.ledger_path.read_text().splitlines(keepends=True)
        # Evict oldest-first, but always keep the newest record even if it
        # alone exceeds the cap.
        while len(lines) > 1 and size > self.ledger_max_bytes:
            size -= len(lines.pop(0).encode("utf-8"))
        write_atomic(self.ledger_path, "".join(lines))


class _Drain:
    """One run's drain loop: submissions, deadlines, retries, pools.

    Execution modes, in degradation order:

    * ``pool`` — one ``ProcessPoolExecutor`` with up to ``jobs`` workers;
    * ``isolated`` — after ``max_pool_rebuilds`` broken pools, one fresh
      single-worker pool per outstanding point, so a poison task breaks
      only its own pool and is identifiable (and chargeable);
    * ``inline`` — ``jobs=1``, or worker processes cannot be spawned at
      all; tasks run in the parent, where deadlines are unenforceable.
    """

    def __init__(self, pool: TaskPool, pending: list[Task],
                 loader: Callable[[Path], Any], results: dict[str, Any],
                 report: PoolReport) -> None:
        self.p = pool
        self.loader = loader
        self.results = results
        self.report = report
        self.pending = pending
        self.workers = min(pool.jobs, len(pending))
        self.mode = "pool" if self.workers > 1 else "inline"
        self.executor: Any = None
        self.generation = 0
        self.futures: dict[Future, Task] = {}
        self.future_gen: dict[Future, int] = {}
        self.deadlines: dict[Future, float] = {}
        #: (ready_at, seq, task, charge_attempt, probe_infrastructure)
        self.retries: list[tuple[float, int, Task, bool, bool]] = []
        self.queue: deque[tuple[Task, bool]] = deque()
        self.attempts = {task.key: 0 for task in pending}
        self.degraded_keys: set[str] = set()
        self.infra_strikes: dict[str, int] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    def execute(self) -> None:
        self._new_executor()
        for task in self.pending:
            self.queue.append((task, True))
        try:
            while self.queue or self.retries or self.futures:
                self._submit_ready()
                if not self.futures:
                    if self.queue:
                        continue  # isolated-mode gate re-opens next pass
                    if self.retries:
                        self._wait_for_retry()
                    continue
                done, _ = wait(self.futures, timeout=self._tick(),
                               return_when=FIRST_COMPLETED)
                for future in done:
                    self._on_complete(future)
                self._enforce_deadlines()
        finally:
            self._shutdown(kill=False)
        self.report.final_mode = self.mode

    # ------------------------------------------------------------------
    # executor lifecycle
    # ------------------------------------------------------------------
    def _new_executor(self) -> None:
        self.generation += 1
        if self.mode == "inline":
            self.executor = _InlineExecutor()
            return
        workers = 1 if self.mode == "isolated" else self.workers
        try:
            self.executor = ProcessPoolExecutor(max_workers=workers)
        except OSError:
            # Cannot spawn workers at all: last rung of the ladder.
            self.mode = "inline"
            self.executor = _InlineExecutor()

    def _shutdown(self, kill: bool) -> None:
        executor = self.executor
        self.executor = None
        if executor is None:
            return
        if kill:
            # A hung worker cannot be cancelled through the Executor API;
            # SIGKILL the worker processes before discarding the pool.
            for process in list(getattr(executor, "_processes", {}).values()):
                try:
                    process.kill()
                except OSError:  # already reaped
                    pass
        try:
            executor.shutdown(wait=not kill, cancel_futures=True)
        except Exception:  # noqa: BLE001 — a dying pool must not kill the run
            pass

    def _rebuild(self, reason: str) -> None:
        """Replace a broken pool, degrading to isolated mode past the cap."""
        self.report.pool_rebuilds += 1
        if self.mode == "pool" \
                and self.report.pool_rebuilds > self.p.max_pool_rebuilds:
            self.mode = "isolated"
        self._requeue_in_flight()
        self._shutdown(kill=True)
        self._new_executor()
        self.p.progress.pool_rebuilt(self.report.pool_rebuilds, self.mode,
                                     reason)

    def _requeue_in_flight(self) -> None:
        """Re-enqueue every in-flight task without charging an attempt.

        Their results died with the pool through no fault of their own;
        stale completions of the popped futures are ignored later.
        """
        for future, task in list(self.futures.items()):
            self.queue.append((task, False))
        self.futures.clear()
        self.future_gen.clear()
        self.deadlines.clear()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def _submit_ready(self) -> None:
        now = self.p.clock()
        while self.retries and self.retries[0][0] <= now:
            _, _, task, charge, probe = heapq.heappop(self.retries)
            self._enqueue_or_probe(task, charge, probe)
        while self.queue:
            if self.mode == "isolated" and self.futures:
                return  # one outstanding point at a time when isolating
            task, charge = self.queue.popleft()
            self._submit(task, charge)

    def _submit(self, task: Task, charge: bool) -> None:
        if charge:
            self.attempts[task.key] += 1
        while True:
            try:
                future = self.executor.submit(task.fn, *task.args)
            except (BrokenExecutor, RuntimeError) as error:
                # The pool died between completions (or was shut down
                # under us); replace it and try this submission again.
                self._record_infra(task, error, action="pool-broken")
                self._rebuild(f"submit failed: {error}")
                continue
            break
        self.futures[future] = task
        self.future_gen[future] = self.generation
        timeout = task.timeout_s if task.timeout_s is not None \
            else self.p.timeout_s
        if timeout is not None and self.mode != "inline":
            self.deadlines[future] = self.p.clock() + timeout

    def _push_retry(self, task: Task, ready_at: float, *, charge: bool,
                    probe: bool) -> None:
        self._seq += 1
        heapq.heappush(self.retries, (ready_at, self._seq, task, charge, probe))

    def _enqueue_or_probe(self, task: Task, charge: bool, probe: bool) -> None:
        if probe and not self._probe_ok(task):
            strikes = self.infra_strikes.get(task.key, 0) + 1
            self.infra_strikes[task.key] = strikes
            self.report.infra_pauses += 1
            self.p._record(task.key, strikes,
                           "result directory not writable (probe failed)",
                           action="infra-pause",
                           **{"class": INFRASTRUCTURE})
            if strikes > self.p.max_infra_retries:
                self._fail(task, "infrastructure failure outlasted "
                                 f"{self.p.max_infra_retries} probes",
                           INFRASTRUCTURE)
            else:
                self._push_retry(task,
                                 self.p.clock() + self.p.infra_pause_s,
                                 charge=charge, probe=True)
            return
        self.queue.append((task, charge))

    def _probe_ok(self, task: Task) -> bool:
        """Whether the task's result directory accepts writes again."""
        import os
        probe = task.path.parent / f".probe.{os.getpid()}{'.tmp'}"
        try:
            task.path.parent.mkdir(parents=True, exist_ok=True)
            probe.write_text("probe")
            probe.unlink()
            return True
        except OSError:
            try:
                probe.unlink(missing_ok=True)
            except OSError:
                pass
            return False

    # ------------------------------------------------------------------
    # waiting
    # ------------------------------------------------------------------
    def _tick(self) -> float | None:
        """Bounded ``wait()`` timeout: the next deadline or retry, if any."""
        next_event: float | None = None
        if self.deadlines:
            next_event = min(self.deadlines.values())
        if self.retries:
            ready_at = self.retries[0][0]
            next_event = ready_at if next_event is None \
                else min(next_event, ready_at)
        if next_event is None:
            return None
        return max(0.0, next_event - self.p.clock())

    def _wait_for_retry(self) -> None:
        """Nothing in flight: advance to the earliest scheduled retry.

        After sleeping the full remaining delay the retry is treated as
        due unconditionally — injected test clocks may not advance, and
        trusting the sleep keeps the schedule deterministic for them.
        """
        ready_at, _, task, charge, probe = heapq.heappop(self.retries)
        delay = ready_at - self.p.clock()
        if delay > 0:
            self.p.sleep(delay)
        self._enqueue_or_probe(task, charge, probe)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def _on_complete(self, future: Future) -> None:
        task = self.futures.pop(future, None)
        if task is None:
            return  # stale completion from a torn-down pool
        generation = self.future_gen.pop(future, self.generation)
        self.deadlines.pop(future, None)
        error = future.exception()
        if error is None:
            try:
                loaded = self.loader(task.path)
            except Exception as load_error:
                if task.path.exists():
                    quarantine(task.path)
                # A corrupt result is recomputable by construction:
                # always a (transient) retry, never a permanent verdict.
                self._failed_attempt(task, load_error, TRANSIENT)
            else:
                self.results[task.key] = loaded
                self.report.computed.append(task.key)
                self.progress_done(task)
            return
        if isinstance(error, BrokenExecutor):
            self._on_broken_pool(task, error, generation)
            return
        classification = classify_failure(error)
        if classification == INFRASTRUCTURE:
            self._infra_failure(task, error)
            return
        self._failed_attempt(task, error, classification)

    def progress_done(self, task: Task) -> None:
        self.p.progress.task_done(task.key)

    def _on_broken_pool(self, task: Task, error: BaseException,
                        generation: int) -> None:
        if self.mode == "isolated" and generation == self.generation:
            # Single-task pool: the culprit is known.  Replace the pool
            # and charge the point like any other failed attempt.
            self._record_infra(task, error, action="pool-broken")
            self.report.pool_rebuilds += 1
            self._shutdown(kill=True)
            self._new_executor()
            self._failed_attempt(task, error, INFRASTRUCTURE,
                                 recorded=True)
            return
        self._record_infra(task, error, action="pool-broken")
        if generation == self.generation:
            self._rebuild(f"{error}")
        # The result was lost with the pool; re-run without charge.
        self.queue.append((task, False))

    def _record_infra(self, task: Task, error: BaseException, *,
                      action: str) -> None:
        self.p._record(task.key, self.attempts[task.key], f"{error}",
                       action=action, **{"class": INFRASTRUCTURE})

    def _infra_failure(self, task: Task, error: BaseException) -> None:
        """Worker hit an environment fault (e.g. ENOSPC): pause and probe.

        The attempt charged at submission is refunded — the environment
        failed, not the point — and the retry is bounded separately by
        ``max_infra_retries`` so a dead disk cannot loop forever.
        """
        self.attempts[task.key] -= 1
        strikes = self.infra_strikes.get(task.key, 0) + 1
        self.infra_strikes[task.key] = strikes
        self.report.infra_pauses += 1
        self.p._record(task.key, strikes, f"{error}", action="infra-pause",
                       **{"class": INFRASTRUCTURE})
        if strikes > self.p.max_infra_retries:
            self._fail(task, f"{error}", INFRASTRUCTURE)
            return
        self.p.progress.task_retry(task.key, strikes, f"{error}",
                                   classification=INFRASTRUCTURE)
        self._push_retry(task, self.p.clock() + self.p.infra_pause_s,
                         charge=True, probe=True)

    def _failed_attempt(self, task: Task, error: BaseException,
                        classification: str, *,
                        recorded: bool = False) -> None:
        attempt = self.attempts[task.key]
        if not recorded:
            self.p._record(task.key, attempt, f"{error}", action="attempt",
                           **{"class": classification})
        if (task.fallback_args is not None
                and task.key not in self.degraded_keys
                and classification != TIMEOUT):
            # Kernel graceful degradation: one free re-run on the
            # fallback (scalar-oracle) args before retry accounting
            # resumes — a numpy edge case costs one point's speed, not
            # the campaign.
            self.degraded_keys.add(task.key)
            self.report.degraded.append(task.key)
            self.p._record(task.key, attempt, f"{error}", action="degraded")
            self.p.progress.task_degraded(task.key, f"{error}")
            self.queue.append(
                (replace(task, args=task.fallback_args, fallback_args=None),
                 False))
            return
        if classification == PERMANENT:
            self._fail(task, f"{error}", classification)
            return
        if attempt < self.p.max_attempts:
            self.report.retried.append(task.key)
            self.p.progress.task_retry(task.key, attempt, f"{error}",
                                       classification=classification)
            delay = self.p.backoff_for(task.key, attempt)
            self._push_retry(task, self.p.clock() + delay,
                             charge=True, probe=False)
        else:
            self._fail(task, f"{error}", classification)

    def _fail(self, task: Task, error: str, classification: str) -> None:
        self.report.failed[task.key] = error
        self.report.failure_classes[task.key] = classification
        self.p._record(task.key, self.attempts[task.key], error,
                       action="abandoned", **{"class": classification})
        self.p.progress.task_failed(task.key, error)

    # ------------------------------------------------------------------
    # watchdog
    # ------------------------------------------------------------------
    def _enforce_deadlines(self) -> None:
        if not self.deadlines:
            return
        now = self.p.clock()
        overdue = {future for future, deadline in self.deadlines.items()
                   if deadline <= now}
        if not overdue:
            return
        self.report.watchdog_kills += 1
        # A hung worker cannot be cancelled individually: tear the whole
        # pool down (SIGKILL), rebuild, and re-enqueue the innocent
        # in-flight points without charging them an attempt.
        in_flight = list(self.futures.items())
        self.futures.clear()
        self.future_gen.clear()
        self.deadlines.clear()
        self._shutdown(kill=True)
        self._new_executor()
        self.p.progress.pool_rebuilt(
            self.report.pool_rebuilds, self.mode,
            "watchdog: task deadline exceeded")
        for future, task in in_flight:
            if future not in overdue:
                self.queue.append((task, False))
                continue
            timeout = task.timeout_s if task.timeout_s is not None \
                else self.p.timeout_s
            attempt = self.attempts[task.key]
            error = TaskTimeout(
                f"no result within {timeout:g}s (attempt {attempt}; "
                f"worker killed)")
            self.report.timeouts.append(task.key)
            self.p.progress.task_timeout(task.key, attempt, timeout)
            self.p._record(task.key, attempt, f"{error}", action="timeout",
                           **{"class": TIMEOUT})
            if attempt < self.p.max_attempts:
                self.report.retried.append(task.key)
                delay = self.p.backoff_for(task.key, attempt)
                self._push_retry(task, self.p.clock() + delay,
                                 charge=True, probe=False)
            else:
                self._fail(task, f"{error}", TIMEOUT)
