"""Fault-tolerant parallel task pool shared by campaigns and sweeps.

The artifact's ``run_ramulator_all.sh`` fans a grid of independent runs out
across many cores and resumes any that are missing; characterizing 30
modules is embarrassingly parallel by construction.  :class:`TaskPool` is
that engine for the in-process reproduction:

* each grid point is an independent :class:`Task` whose worker computes the
  result and persists it **atomically** to ``task.path``;
* on resume, existing result files are validated by the caller's loader —
  unparseable or schema-invalid files are quarantined (``*.corrupt``) and
  re-run instead of crashing the campaign;
* transient worker failures are retried with exponential backoff, and every
  failed attempt is appended to a per-run error ledger (``errors.jsonl``)
  so one bad point cannot kill a 600-point sweep;
* ``jobs=1`` runs the very same submission/retry/load code path inline
  (no subprocesses), so serial and parallel runs are the same engine.

Workers must be module-level callables with picklable arguments (they cross
a ``ProcessPoolExecutor`` boundary when ``jobs > 1``), and results flow back
through the filesystem, not the pipe: the parent re-loads ``task.path``
after the worker finishes, so what a run returns is exactly what a resumed
run would reload.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.errors import ConfigError, ExecutionError
from repro.runtime.persist import discard_stale_tmp, quarantine, write_atomic
from repro.runtime.progress import ProgressReporter

__all__ = ["Task", "TaskPool", "LEDGER_NAME", "LEDGER_MAX_BYTES"]

#: File name of the per-run error ledger, kept next to the results.
LEDGER_NAME = "errors.jsonl"

#: Default size cap of the error ledger.  A retry loop on a long campaign
#: must not fill the disk; when the ledger outgrows the cap, the oldest
#: records are dropped (the newest ones explain the current failures).
LEDGER_MAX_BYTES = 512 * 1024


@dataclass(frozen=True)
class Task:
    """One independent grid point.

    ``fn(*args)`` must compute the point and persist it atomically to
    ``path`` (see :func:`repro.runtime.persist.write_atomic`); its return
    value is ignored — the pool re-loads ``path`` instead.
    """

    key: str
    path: Path
    fn: Callable[..., Any]
    args: tuple = ()


class _InlineExecutor:
    """``jobs=1`` executor: runs each submission immediately, in-process.

    Implements just enough of the ``Executor`` protocol for the pool's
    submit/wait/retry loop, so the serial path exercises the exact same
    engine code as the parallel one.
    """

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as error:  # noqa: BLE001 — mirrored to future
            future.set_exception(error)
        return future

    def __enter__(self) -> "_InlineExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


@dataclass
class PoolReport:
    """What happened during one :meth:`TaskPool.run` call."""

    reused: list[str] = field(default_factory=list)
    computed: list[str] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)
    retried: list[str] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)


class TaskPool:
    """Resumable, retrying executor for a list of independent tasks."""

    def __init__(self, *, jobs: int | None = None, max_attempts: int = 3,
                 backoff_s: float = 0.1,
                 ledger_path: str | Path | None = None,
                 ledger_max_bytes: int = LEDGER_MAX_BYTES,
                 progress: ProgressReporter | None = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        import os
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {max_attempts}")
        if ledger_max_bytes < 1:
            raise ConfigError(
                f"ledger_max_bytes must be >= 1, got {ledger_max_bytes}")
        self.jobs = jobs
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.ledger_path = Path(ledger_path) if ledger_path else None
        self.ledger_max_bytes = ledger_max_bytes
        self.progress = progress or ProgressReporter()
        self.sleep = sleep
        self.last_report: PoolReport | None = None
        self._run_started_monotonic = time.monotonic()

    # ------------------------------------------------------------------
    def run(self, tasks: list[Task], loader: Callable[[Path], Any], *,
            force: bool = False) -> dict[str, Any]:
        """Run (or resume) ``tasks``; returns ``{key: loaded result}``.

        Existing result files are validated through ``loader`` and reused;
        corrupt ones are quarantined and re-run.  Raises
        :class:`~repro.errors.ExecutionError` after all points have been
        attempted if any failed permanently — everything else is persisted,
        so a follow-up run only re-attempts the failures.
        """
        keys = [task.key for task in tasks]
        if len(set(keys)) != len(keys):
            raise ConfigError("task keys must be unique within one run")
        self._run_started_monotonic = time.monotonic()
        report = PoolReport()
        self.last_report = report
        results: dict[str, Any] = {}
        pending: list[Task] = []
        for task in tasks:
            if force or not task.path.exists():
                pending.append(task)
                continue
            try:
                results[task.key] = loader(task.path)
                report.reused.append(task.key)
            except Exception as error:  # corrupt / schema-invalid result
                moved = quarantine(task.path)
                report.quarantined.append(task.key)
                self._record(task.key, 0, f"{error}",
                             action="quarantine", moved_to=str(moved))
                pending.append(task)
        self.progress.start(len(tasks), reused=len(report.reused))
        if pending:
            for directory in {task.path.parent for task in pending}:
                discard_stale_tmp(directory)
            self._execute(pending, loader, results, report)
        self.progress.finish()
        if report.failed:
            ledger = f" (ledger: {self.ledger_path})" if self.ledger_path else ""
            raise ExecutionError(
                f"{len(report.failed)}/{len(tasks)} points failed permanently "
                f"after {self.max_attempts} attempts: "
                f"{', '.join(sorted(report.failed))}{ledger}")
        return {key: results[key] for key in keys}

    # ------------------------------------------------------------------
    def _execute(self, pending: list[Task], loader: Callable[[Path], Any],
                 results: dict[str, Any], report: PoolReport) -> None:
        workers = min(self.jobs, len(pending))
        executor = (ProcessPoolExecutor(max_workers=workers)
                    if workers > 1 else _InlineExecutor())
        attempts = {task.key: 0 for task in pending}
        with executor as pool:
            futures: dict[Future, Task] = {}
            for task in pending:
                attempts[task.key] += 1
                futures[pool.submit(task.fn, *task.args)] = task
            while futures:
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    task = futures.pop(future)
                    error = future.exception()
                    if error is None:
                        try:
                            loaded = loader(task.path)
                        except Exception as load_error:
                            if task.path.exists():
                                quarantine(task.path)
                            error = load_error
                        else:
                            results[task.key] = loaded
                            report.computed.append(task.key)
                            self.progress.task_done(task.key)
                            continue
                    attempt = attempts[task.key]
                    self._record(task.key, attempt, f"{error}",
                                 action="attempt")
                    if attempt < self.max_attempts:
                        report.retried.append(task.key)
                        self.progress.task_retry(task.key, attempt, f"{error}")
                        self.sleep(self.backoff_s * (2 ** (attempt - 1)))
                        attempts[task.key] += 1
                        try:
                            futures[pool.submit(task.fn, *task.args)] = task
                        except RuntimeError as submit_error:
                            # Executor broken (e.g. a worker was SIGKILLed
                            # taking the pool down); give up on this task
                            # but keep draining the rest.
                            self._fail(task, f"{submit_error}", report)
                    else:
                        self._fail(task, f"{error}", report)

    def _fail(self, task: Task, error: str, report: PoolReport) -> None:
        report.failed[task.key] = error
        self._record(task.key, self.max_attempts, error, action="abandoned")
        self.progress.task_failed(task.key, error)

    # ------------------------------------------------------------------
    def _record(self, key: str, attempt: int, error: str, *,
                action: str, **extra: str) -> None:
        """Append one event to the error ledger (if one is configured).

        Each record carries the retry ``attempt`` number and the monotonic
        ``elapsed_s`` since the run started (wall-clock ``time`` can jump
        backwards under NTP; debugging a retry storm needs real durations).
        """
        if self.ledger_path is None:
            return
        record = {"key": key, "action": action, "attempt": attempt,
                  "error": error, "time": time.time(),
                  "elapsed_s": round(
                      time.monotonic() - self._run_started_monotonic, 6),
                  **extra}
        self.ledger_path.parent.mkdir(parents=True, exist_ok=True)
        with self.ledger_path.open("a") as ledger:
            ledger.write(json.dumps(record) + "\n")
        self._trim_ledger()

    def _trim_ledger(self) -> None:
        """Drop oldest ledger records once the file outgrows the cap."""
        try:
            size = self.ledger_path.stat().st_size
        except OSError:
            return
        if size <= self.ledger_max_bytes:
            return
        lines = self.ledger_path.read_text().splitlines(keepends=True)
        # Evict oldest-first, but always keep the newest record even if it
        # alone exceeds the cap.
        while len(lines) > 1 and size > self.ledger_max_bytes:
            size -= len(lines.pop(0).encode("utf-8"))
        write_atomic(self.ledger_path, "".join(lines))
