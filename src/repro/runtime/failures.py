"""Failure taxonomy for the execution engine.

A week-long characterization campaign sees failures of very different
natures, and retrying them identically is exactly wrong in both
directions: a ``ConfigError`` is deterministic — re-running the point
burns attempts (and wall-clock) to reach the same exception — while a
full disk fails *every* point until an operator intervenes, so hammering
retries turns one infrastructure event into a grid-wide abandonment.

:func:`classify_failure` maps a worker exception onto one of four
classes, each with its own retry policy in
:class:`~repro.runtime.engine.TaskPool`:

``transient``
    Unknown/one-off errors (the default).  Retried with bounded,
    jittered exponential backoff, charged against ``max_attempts``.
``permanent``
    Deterministic library errors (``ConfigError``-shaped): the same
    inputs will raise the same way, so the point fails immediately with
    a single ledger record and no retries.
``timeout``
    The watchdog killed the task's worker past its deadline
    (:class:`TaskTimeout`).  Retried like a transient failure — a fresh
    worker may simply have been scheduled onto a healthier moment.
``infrastructure``
    The *environment* failed, not the point: a broken process pool, a
    full disk (``ENOSPC``), exhausted file descriptors.  The engine
    pauses, probes the result directory for writability, and retries
    without charging the point an attempt (bounded separately by
    ``max_infra_retries``).

The classification travels with every ledger record, the
:class:`~repro.runtime.engine.PoolReport`, progress lines, and the
end-of-run ``run_report.json``, so a post-mortem can separate "the model
rejected this config" from "the disk filled up at 3am".
"""

from __future__ import annotations

import errno
from concurrent.futures import BrokenExecutor
from typing import Callable

from repro.errors import (
    CharacterizationError,
    ConfigError,
    ProgramError,
    ReproError,
    UnknownModuleError,
)

__all__ = [
    "TRANSIENT",
    "PERMANENT",
    "TIMEOUT",
    "INFRASTRUCTURE",
    "FAILURE_CLASSES",
    "TaskTimeout",
    "classify_failure",
    "register_failure",
]

TRANSIENT = "transient"
PERMANENT = "permanent"
TIMEOUT = "timeout"
INFRASTRUCTURE = "infrastructure"

#: Every classification the engine understands, in severity order.
FAILURE_CLASSES = (TRANSIENT, PERMANENT, TIMEOUT, INFRASTRUCTURE)


class TaskTimeout(ReproError):
    """A task's worker produced no result within its deadline.

    Synthesized by the engine's watchdog (the worker itself was killed;
    it never raises this), and classified as ``timeout``.
    """


#: ``errno`` values that mean the *host* failed, not the task: resource
#: exhaustion and I/O-path faults an operator can fix while the campaign
#: pauses and probes.
_INFRA_ERRNOS = frozenset(
    code
    for code in (
        getattr(errno, name, None)
        for name in ("ENOSPC", "EDQUOT", "EROFS", "EIO",
                     "EMFILE", "ENFILE", "ENOMEM", "EAGAIN")
    )
    if code is not None
)

#: Deterministic library errors: same inputs, same exception — retrying
#: cannot succeed.  (Corrupt-*file* errors raised by loaders never reach
#: this table; the engine quarantines and recomputes those separately.)
_PERMANENT_TYPES: tuple[type[BaseException], ...] = (
    ConfigError,
    ProgramError,
    UnknownModuleError,
    CharacterizationError,
)

#: Extension rules, consulted newest-first before the built-in tables.
_RULES: list[tuple[type[BaseException],
                   Callable[[BaseException], bool] | None, str]] = []


def register_failure(classification: str, exc_type: type[BaseException], *,
                     when: Callable[[BaseException], bool] | None = None,
                     ) -> None:
    """Register a classification rule checked before the built-ins.

    ``when`` optionally narrows the rule to instances it returns true
    for (e.g. one specific ``errno``).  Later registrations win, so a
    caller can override a built-in default for its own exception types.
    """
    if classification not in FAILURE_CLASSES:
        raise ConfigError(
            f"failure class must be one of {FAILURE_CLASSES}, "
            f"got {classification!r}")
    if not (isinstance(exc_type, type)
            and issubclass(exc_type, BaseException)):
        raise ConfigError(f"expected an exception type, got {exc_type!r}")
    _RULES.append((exc_type, when, classification))


def reset_failure_rules() -> None:
    """Drop every registered extension rule (test isolation)."""
    _RULES.clear()


def classify_failure(error: BaseException) -> str:
    """Map one worker exception onto its failure class."""
    for exc_type, when, classification in reversed(_RULES):
        if isinstance(error, exc_type) and (when is None or when(error)):
            return classification
    if isinstance(error, TaskTimeout):
        return TIMEOUT
    if isinstance(error, BrokenExecutor):
        return INFRASTRUCTURE
    if isinstance(error, (MemoryError, BlockingIOError)):
        return INFRASTRUCTURE
    if isinstance(error, OSError) and error.errno in _INFRA_ERRNOS:
        return INFRASTRUCTURE
    if isinstance(error, _PERMANENT_TYPES):
        return PERMANENT
    return TRANSIENT
