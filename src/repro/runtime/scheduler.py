"""Pluggable scheduler selection for campaigns and sweeps.

Every execution backend implements one interface — :class:`TaskPool`'s
``run(tasks, loader, force=...)`` contract: reuse valid on-disk results,
quarantine corrupt ones, drain the rest with classified retries, persist
``errors.jsonl`` + ``run_report.json``, and raise
:class:`~repro.errors.ExecutionError` naming any permanently failed
points.  What varies is only *where* the draining happens:

``local``
    :class:`~repro.runtime.engine.TaskPool` itself — a process pool on
    this host (``jobs`` workers; ``jobs=1`` runs inline).

``fleet``
    :class:`~repro.runtime.distributed.FleetScheduler` — a TCP
    coordinator that leases batched tasks to ``repro-experiments worker``
    clients (spawned loopback workers and/or external connections), and
    writes the results they push back into the same content-addressed
    store.  Results are byte-identical to a ``local`` run for any worker
    count or failure interleaving.

Call sites never branch on the name: :func:`make_scheduler` is the one
resolution site, mirroring how :mod:`repro.exec` resolves kernels.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigError
from repro.runtime.engine import TaskPool

__all__ = ["SCHEDULER_NAMES", "make_scheduler", "parse_address",
           "validate_scheduler"]

#: Every scheduler backend, oracle (reference) first.
SCHEDULER_NAMES = ("local", "fleet")


def validate_scheduler(name: str) -> str:
    """Validate a scheduler backend name."""
    if name not in SCHEDULER_NAMES:
        raise ConfigError(
            f"scheduler must be one of {SCHEDULER_NAMES}, got {name!r}")
    return name


def parse_address(address: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (the ``--serve``/``--connect``
    grammar; host may be empty for all-interfaces binds)."""
    host, separator, port_text = address.rpartition(":")
    if not separator or not port_text.isdigit():
        raise ConfigError(
            f"expected HOST:PORT (e.g. 127.0.0.1:7045), got {address!r}")
    port = int(port_text)
    if port > 65535:
        raise ConfigError(f"port out of range in {address!r}")
    return host or "0.0.0.0", port


def make_scheduler(name: str = "local", *,
                   workers: int | None = None,
                   serve: str | tuple[str, int] | None = None,
                   lease_batch: int | None = None,
                   **pool_options: Any) -> TaskPool:
    """Build the scheduler backend ``name`` resolves to.

    ``pool_options`` are the shared :class:`TaskPool` knobs (jobs,
    retries, backoff, ledger/report paths, timeouts, progress, seed);
    ``workers``/``serve``/``lease_batch`` configure the fleet backend and
    are rejected for ``local``, where they would silently do nothing.
    """
    validate_scheduler(name)
    if name == "local":
        ignored = [flag for flag, value in
                   (("workers", workers), ("serve", serve),
                    ("lease_batch", lease_batch)) if value is not None]
        if ignored:
            raise ConfigError(
                f"{', '.join(ignored)} only apply to --scheduler fleet")
        return TaskPool(**pool_options)
    from repro.runtime.distributed import FleetScheduler

    if isinstance(serve, str):
        serve = parse_address(serve)
    fleet_options: dict[str, Any] = {}
    if workers is not None:
        fleet_options["workers"] = workers
    if serve is not None:
        fleet_options["serve"] = serve
    if lease_batch is not None:
        fleet_options["lease_batch"] = lease_batch
    return FleetScheduler(**fleet_options, **pool_options)
