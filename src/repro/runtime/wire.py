"""Wire format of the distributed scheduler: frames, codec, blob interning.

The fleet backend (:mod:`repro.runtime.distributed`) moves three kinds of
payload between a coordinator and its workers, and every byte crosses a
TCP socket — so the format is built for amortization, not generality:

* **Frames** — length-prefixed JSON.  Each frame is a 5-byte header
  (``!BI``: flags, payload length) followed by the payload; payloads at or
  above :data:`COMPRESS_MIN` are zlib-compressed (flag bit
  :data:`FLAG_ZLIB`).  JSON rather than pickle keeps the protocol
  inspectable and version-checkable, and means a malicious *frame* can at
  worst produce garbage data, not code execution.

* **Values** — a small tagged codec for the argument shapes task payloads
  actually contain: JSON scalars pass through, tuples and dataclasses are
  tagged (``{"__t": [...]}`` / ``{"__dc": "module:qualname", ...}``) and
  rebuilt on the far side, and the one string equal to the task's result
  path is replaced by a sentinel the worker resolves to its *own* scratch
  path — result files travel back through the protocol, never through a
  shared filesystem.

* **Blobs** — content-addressed interning of heavy arguments.  A campaign
  ships the same :class:`~repro.characterization.campaign.CampaignConfig`
  with every task; instead of re-serializing it per task, any encoded
  argument above :data:`BLOB_MIN` bytes is replaced by the 16-hex digest of
  its canonical encoding, and the body ships at most once per worker
  (the coordinator tracks which digests each worker has already seen).
  Warm workers therefore receive digest-sized task payloads — the
  measured reason fleet leases beat pickled-task payloads in
  ``bench_parallel_scaling``.

Trust model: resolving ``fn`` references (:func:`resolve_callable`) imports
and calls coordinator-chosen module-level callables, so a worker extends
the same trust to its coordinator that running the CLI extends to this
codebase.  Only connect ``repro-experiments worker`` to a coordinator you
control — the loopback fleet the CLI spawns itself always satisfies this.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import socket
import struct
import time
import zlib
from pathlib import Path
from typing import Any

from repro.errors import ConfigError

__all__ = [
    "COMPRESS_MIN",
    "BLOB_MIN",
    "PROTOCOL_VERSION",
    "FrameError",
    "connect_with_retry",
    "send_frame",
    "recv_frame",
    "encode_value",
    "decode_value",
    "canonical_blob",
    "blob_digest",
    "callable_ref",
    "resolve_callable",
]

#: Protocol version carried in every ``hello``; a mismatch is a hard error
#: (a half-upgraded fleet must fail loudly, not deadlock on frame shapes).
PROTOCOL_VERSION = 1

#: Frame payloads at or above this many bytes are zlib-compressed.
COMPRESS_MIN = 2048

#: Encoded arguments at or above this many bytes are interned as blobs.
BLOB_MIN = 96

#: Refuse frames claiming more than this (a corrupt length prefix must not
#: make the receiver allocate gigabytes).
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct("!BI")
_FLAG_ZLIB = 0x01

#: Tag keys of the value codec.  Deliberately un-JSON-like so real payload
#: dicts (statistics, configs) can never collide with them.
_TAG_TUPLE = "__t"
_TAG_DATACLASS = "__dc"
_TAG_PATH = "__p"
_TAG_TASK_PATH = "__task_path"
_TAG_BLOB = "__blob"
_TAGS = frozenset({_TAG_TUPLE, _TAG_DATACLASS, _TAG_PATH, _TAG_TASK_PATH,
                   _TAG_BLOB})


class FrameError(ConfigError):
    """A frame violated the protocol (bad length, bad JSON, bad shape)."""


# ---------------------------------------------------------------------------
# connections
# ---------------------------------------------------------------------------
def connect_with_retry(host: str, port: int, *, timeout_s: float = 10.0,
                       base_delay_s: float = 0.05,
                       max_delay_s: float = 1.0,
                       sleep=time.sleep,
                       clock=time.monotonic) -> socket.socket:
    """Connect to ``host:port``, retrying with exponential backoff.

    Workers and service clients often start before the coordinator or
    ``serve-api`` endpoint has bound its socket; a single connect attempt
    turns that ordering race into a hard failure (or, with a long socket
    timeout, an opaque hang).  This retries refused/unreachable connects
    with doubling delays (``base_delay_s`` up to ``max_delay_s``) until
    ``timeout_s`` has elapsed, then raises a :class:`ConfigError` naming
    the address, the budget, and the last underlying error — never an
    indefinite hang.  The returned socket is in blocking mode.
    """
    if timeout_s <= 0:
        raise ConfigError(f"timeout_s must be positive, got {timeout_s}")
    deadline = clock() + timeout_s
    attempt = 0
    last_error: OSError | None = None
    while True:
        remaining = deadline - clock()
        if remaining <= 0:
            break
        attempt += 1
        try:
            sock = socket.create_connection((host, port),
                                            timeout=max(remaining, 0.01))
            sock.settimeout(None)
            return sock
        except OSError as error:
            last_error = error
        remaining = deadline - clock()
        if remaining <= 0:
            break
        delay = min(base_delay_s * (2 ** (attempt - 1)), max_delay_s,
                    remaining)
        sleep(delay)
    raise ConfigError(
        f"could not connect to {host}:{port} within {timeout_s:g}s "
        f"({attempt} attempt(s); last error: {last_error})")


# ---------------------------------------------------------------------------
# frames
# ---------------------------------------------------------------------------
def send_frame(sock: socket.socket, message: dict) -> int:
    """Serialize and send one message; returns the bytes put on the wire."""
    blob = json.dumps(message, separators=(",", ":")).encode("utf-8")
    flags = 0
    if len(blob) >= COMPRESS_MIN:
        compressed = zlib.compress(blob, 6)
        if len(compressed) < len(blob):
            blob, flags = compressed, _FLAG_ZLIB
    frame = _HEADER.pack(flags, len(blob)) + blob
    sock.sendall(frame)
    return len(frame)


def recv_frame(sock: socket.socket) -> dict | None:
    """Receive one message; ``None`` on clean EOF at a frame boundary."""
    header = _recv_exact(sock, _HEADER.size, eof_ok=True)
    if header is None:
        return None
    flags, length = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame claims {length} bytes "
                         f"(cap {MAX_FRAME_BYTES}); corrupt length prefix?")
    blob = _recv_exact(sock, length, eof_ok=False)
    if flags & _FLAG_ZLIB:
        try:
            blob = zlib.decompress(blob)
        except zlib.error as error:
            raise FrameError(f"bad compressed frame: {error}") from error
    try:
        message = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise FrameError(f"frame is not valid JSON: {error}") from error
    if not isinstance(message, dict):
        raise FrameError(f"frame must be an object, got {type(message).__name__}")
    return message


def _recv_exact(sock: socket.socket, count: int,
                *, eof_ok: bool) -> bytes | None:
    """Read exactly ``count`` bytes (``None`` on immediate EOF if allowed)."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise ConnectionError(
                f"connection closed mid-frame ({count - remaining}/{count} "
                f"bytes received)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# value codec
# ---------------------------------------------------------------------------
def callable_ref(fn: Any) -> str:
    """``module:qualname`` reference of a module-level callable."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname:
        raise ConfigError(
            f"fleet tasks need module-level callables (got {fn!r}); "
            f"closures and lambdas cannot be named across hosts")
    return f"{module}:{qualname}"


def resolve_callable(ref: str) -> Any:
    """Import and return the callable a :func:`callable_ref` names."""
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname:
        raise ConfigError(f"malformed callable reference {ref!r}")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise ConfigError(f"{ref!r} resolved to a non-callable {obj!r}")
    return obj


def encode_value(value: Any, *, task_path: str | None = None) -> Any:
    """Value -> JSON-safe tagged payload.

    ``task_path`` is the coordinator-side result path; string arguments
    equal to it become the task-path sentinel so the worker can substitute
    its own scratch location (result bytes travel back over the wire).
    """
    if value is None or isinstance(value, (bool, int, float)):
        return value
    if isinstance(value, str):
        if task_path is not None and value == task_path:
            return {_TAG_TASK_PATH: True}
        return value
    if isinstance(value, tuple):
        return {_TAG_TUPLE: [encode_value(v, task_path=task_path)
                             for v in value]}
    if isinstance(value, list):
        return [encode_value(v, task_path=task_path) for v in value]
    if isinstance(value, Path):
        return {_TAG_PATH: str(value)}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        fields = {f.name: encode_value(getattr(value, f.name),
                                       task_path=task_path)
                  for f in dataclasses.fields(cls) if f.init}
        return {_TAG_DATACLASS: f"{cls.__module__}:{cls.__qualname__}",
                "fields": fields}
    if isinstance(value, dict):
        encoded = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ConfigError(
                    f"fleet task arguments need string dict keys, "
                    f"got {key!r}")
            if key in _TAGS:
                raise ConfigError(
                    f"dict key {key!r} collides with a wire-codec tag")
            encoded[key] = encode_value(item, task_path=task_path)
        return encoded
    raise ConfigError(
        f"cannot ship {type(value).__name__!r} over the fleet wire; "
        f"task arguments must be JSON scalars, lists, tuples, string-keyed "
        f"dicts, paths, or dataclasses of those")


def decode_value(payload: Any, *, task_path: str | None = None,
                 blobs: dict[str, Any] | None = None) -> Any:
    """Tagged payload -> value (inverse of :func:`encode_value`).

    ``blobs`` maps digests to encoded bodies for :data:`_TAG_BLOB`
    references; ``task_path`` resolves the task-path sentinel.
    """
    if isinstance(payload, list):
        return [decode_value(v, task_path=task_path, blobs=blobs)
                for v in payload]
    if not isinstance(payload, dict):
        return payload
    if _TAG_BLOB in payload:
        digest = payload[_TAG_BLOB]
        if blobs is None or digest not in blobs:
            raise ConfigError(
                f"lease references unknown blob {digest!r}; coordinator "
                f"and worker blob tables are out of sync")
        return decode_value(blobs[digest], task_path=task_path, blobs=blobs)
    if _TAG_TASK_PATH in payload:
        if task_path is None:
            raise ConfigError("task-path sentinel outside a task context")
        return task_path
    if _TAG_TUPLE in payload:
        return tuple(decode_value(v, task_path=task_path, blobs=blobs)
                     for v in payload[_TAG_TUPLE])
    if _TAG_PATH in payload:
        return Path(payload[_TAG_PATH])
    if _TAG_DATACLASS in payload:
        cls = resolve_callable(payload[_TAG_DATACLASS])
        if not dataclasses.is_dataclass(cls):
            raise ConfigError(
                f"{payload[_TAG_DATACLASS]!r} is not a dataclass")
        fields = {name: decode_value(v, task_path=task_path, blobs=blobs)
                  for name, v in payload["fields"].items()}
        return cls(**fields)
    return {key: decode_value(v, task_path=task_path, blobs=blobs)
            for key, v in payload.items()}


# ---------------------------------------------------------------------------
# blob interning
# ---------------------------------------------------------------------------
def canonical_blob(encoded: Any) -> str:
    """Canonical serialization of an encoded value (digest input)."""
    return json.dumps(encoded, sort_keys=True, separators=(",", ":"))


def blob_digest(canonical: str) -> str:
    """Content digest a blob is addressed by (16 hex chars)."""
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def intern_args(encoded_args: list[Any],
                table: dict[str, Any]) -> list[Any]:
    """Replace heavy encoded arguments with blob references.

    Arguments whose canonical encoding reaches :data:`BLOB_MIN` bytes are
    stored in ``table`` under their content digest and replaced by a
    ``{"__blob": digest}`` reference.  Scalars and small payloads ship
    inline — a digest would not be smaller.
    """
    interned: list[Any] = []
    for encoded in encoded_args:
        if isinstance(encoded, (dict, list)):
            canonical = canonical_blob(encoded)
            if len(canonical) >= BLOB_MIN:
                digest = blob_digest(canonical)
                table.setdefault(digest, encoded)
                interned.append({_TAG_BLOB: digest})
                continue
        interned.append(encoded)
    return interned


def referenced_blobs(payload: Any) -> set[str]:
    """Every blob digest a (nested) wire payload references."""
    found: set[str] = set()
    if isinstance(payload, dict):
        digest = payload.get(_TAG_BLOB)
        if isinstance(digest, str):
            found.add(digest)
        for item in payload.values():
            found |= referenced_blobs(item)
    elif isinstance(payload, list):
        for item in payload:
            found |= referenced_blobs(item)
    return found
