"""Digest-bound caching shared by every fast path (the one implementation).

Both memoization layers of the repo — the characterization
:class:`~repro.characterization.probecache.ProbeCache` and the system
evaluation :class:`~repro.analysis.baselines.BaselineCache` — follow the
same discipline:

* entries are *bound to a digest* of everything that shapes a result
  without appearing in the key (the calibrated device model, or the
  simulator's tuning constants); :meth:`DigestCache.ensure` drops every
  entry when the digest drifts, so editing the model can never serve a
  stale result;
* the in-memory tier is a bounded LRU;
* an optional disk tier persists one atomic JSON file per entry (safe
  under parallel workers), ignoring files bound to a stale digest.

This module holds that machinery exactly once.  Concrete caches subclass
:class:`DigestCache` with a value codec and a tier name; the **tier
registry** lets ``--force`` clear every persisted tier under an output
directory without each call site knowing which caches exist, and the
process-wide counters give campaign/sweep summaries one unified view of
hits, misses, and invalidations across all caches.
"""

from __future__ import annotations

import hashlib
import json
import weakref
from collections import OrderedDict
from pathlib import Path
from typing import Any

from repro.runtime.persist import write_atomic

#: Registered disk tiers: cache name -> (subdir, file glob).  Populated at
#: class-definition time by :meth:`DigestCache.__init_subclass__`.
_TIER_REGISTRY: dict[str, tuple[str, str]] = {}

#: Live cache instances (all subclasses, disk-backed or not), so a
#: module-level ``--force`` can drop in-memory tiers of caches that are
#: still serving in this process — not just their persisted files.
_INSTANCES: "weakref.WeakSet[DigestCache]" = weakref.WeakSet()

#: Process-wide counters per cache name, accumulated across every instance
#: (including short-lived per-worker ones): the unified stats surfaced in
#: campaign and sweep summaries.
_COUNTERS: dict[str, dict[str, int]] = {}


def registered_tiers() -> dict[str, tuple[str, str]]:
    """``{cache name: (subdir, file glob)}`` of every known disk tier."""
    return dict(_TIER_REGISTRY)


def clear_disk_tiers(root: str | Path) -> dict[str, int]:
    """Delete every registered cache's persisted entries under ``root``.

    This is the single ``--force`` semantics: one call clears *all*
    persisted tiers beneath an output directory (``baseline_cache/``,
    ``probe_cache/``, and any tier a future cache registers), so a forced
    re-run can never replay memoized results from any layer.  Returns the
    per-cache removal counts.
    """
    root = Path(root)
    removed: dict[str, int] = {}
    for name, (subdir, pattern) in sorted(_TIER_REGISTRY.items()):
        tier_dir = root / subdir
        count = 0
        if tier_dir.is_dir():
            for path in sorted(tier_dir.glob(pattern)):
                path.unlink()
                count += 1
        removed[name] = count
    # Unlinking files is not enough: a cache instance alive in this
    # process would keep serving the same stale payloads from its memory
    # tier.  Drop the memory tier of every live instance whose disk tier
    # lives under ``root`` (and of memory-only instances, which cannot be
    # scoped to a directory), so a forced re-run truly recomputes.
    for cache in list(_INSTANCES):
        if cache.disk_dir is None or root in cache.disk_dir.parents \
                or cache.disk_dir == root:
            cache.clear_memory()
    return removed


def disk_tier_entries(root: str | Path) -> dict[str, int]:
    """Persisted entry counts per registered cache under ``root``."""
    root = Path(root)
    counts: dict[str, int] = {}
    for name, (subdir, pattern) in sorted(_TIER_REGISTRY.items()):
        tier_dir = root / subdir
        counts[name] = (len(list(tier_dir.glob(pattern)))
                        if tier_dir.is_dir() else 0)
    return counts


def cache_counters() -> dict[str, dict[str, int]]:
    """Process-wide hit/miss/invalidation totals per cache name."""
    return {name: dict(values) for name, values in sorted(_COUNTERS.items())}


def reset_cache_counters() -> None:
    """Zero the process-wide counters (test isolation)."""
    _COUNTERS.clear()


def summarize_caches(root: str | Path | None = None) -> str:
    """One-line-per-cache summary for campaign/sweep reports.

    Combines the process-local counters (meaningful for serial runs) with
    the persisted disk-tier entry counts under ``root`` (meaningful for
    parallel runs, whose workers counted in their own processes).
    """
    persisted = disk_tier_entries(root) if root is not None else {}
    names = sorted(set(_TIER_REGISTRY) | set(_COUNTERS))
    lines = []
    for name in names:
        counts = _COUNTERS.get(name, {})
        parts = [f"hits={counts.get('hits', 0)}",
                 f"disk_hits={counts.get('disk_hits', 0)}",
                 f"misses={counts.get('misses', 0)}",
                 f"invalidations={counts.get('invalidations', 0)}"]
        if root is not None:
            parts.append(f"persisted={persisted.get(name, 0)}")
        lines.append(f"cache {name}: " + " ".join(parts))
    return "\n".join(lines)


def _count(name: str, counter: str, amount: int = 1) -> None:
    totals = _COUNTERS.setdefault(
        name, {"hits": 0, "disk_hits": 0, "misses": 0, "invalidations": 0})
    totals[counter] = totals.get(counter, 0) + amount


class DigestCache:
    """Bounded LRU memo bound to a digest, with an optional disk tier.

    Subclasses set :attr:`name` (the registry/counter identity),
    :attr:`tier_subdir` (where the disk tier lives under an output
    directory), and :attr:`file_prefix` (entry file naming), and may
    override the codec hooks:

    * :meth:`key_text` — stable string identity of a key (disk file
      naming and stale-entry validation);
    * :meth:`encode` / :meth:`decode` — value <-> JSON-safe payload.
      ``encode`` may raise to refuse caching a value; ``decode`` runs on
      every hit, so mutable values come back as fresh copies.
    """

    name = "digest"
    tier_subdir: str | None = None
    file_prefix = "entry"

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        if cls.tier_subdir is not None:
            _TIER_REGISTRY[cls.name] = (cls.tier_subdir,
                                        f"{cls.file_prefix}_*.json")

    def __init__(self, maxsize: int, disk_dir: str | Path | None = None) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.digest: str | None = None
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.invalidations = 0
        self.corrupt_entries = 0
        _INSTANCES.add(self)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # codec hooks
    # ------------------------------------------------------------------
    def key_text(self, key: Any) -> str:
        """Stable string identity of ``key`` (must be injective).

        Canonical JSON: sorted mapping keys and fixed separators, so
        logically equal keys (``{"a": 1, "b": 2}`` vs. insertion-reversed)
        share one memory entry and one disk file.
        """
        return key if isinstance(key, str) else json.dumps(
            key, sort_keys=True, separators=(",", ":"), default=str)

    def legacy_key_texts(self, key: Any) -> tuple[str, ...]:
        """Superseded serializations of ``key`` still valid on disk.

        Entries persisted before :meth:`key_text` canonicalized (no key
        sorting, default separators) live at paths derived from the old
        text; a disk miss probes these and migrates any match to the
        canonical path.
        """
        if isinstance(key, str):
            return ()
        return (json.dumps(key, default=str),)

    def encode(self, value: Any) -> Any:
        """Value -> JSON-safe payload (raise to refuse caching it)."""
        return value

    def decode(self, payload: Any) -> Any:
        """Payload -> a fresh value the caller may mutate freely."""
        return payload

    def valid_payload(self, payload: Any) -> bool:
        """Whether a persisted payload is shaped like an encoded value."""
        return True

    # ------------------------------------------------------------------
    # core protocol
    # ------------------------------------------------------------------
    def ensure(self, digest: str) -> None:
        """Bind the cache to ``digest``, clearing every entry on drift."""
        if self.digest == digest:
            return
        if self.digest is not None:
            self.invalidations += 1
            _count(self.name, "invalidations")
        self._entries.clear()
        self.digest = digest

    def get(self, key: Any) -> Any | None:
        # The memory tier keys on the canonical text, so logically equal
        # keys (and unhashable ones, like plain dicts) collapse to one
        # entry in both tiers.
        text = self.key_text(key)
        entries = self._entries
        try:
            payload = entries[text]
        except KeyError:
            payload = self._disk_get(key, text)
            if payload is None:
                self.misses += 1
                _count(self.name, "misses")
                return None
            self._store_memory(text, payload)
            self.disk_hits += 1
            _count(self.name, "disk_hits")
        else:
            entries.move_to_end(text)
        self.hits += 1
        _count(self.name, "hits")
        return self.decode(payload)

    def put(self, key: Any, value: Any) -> None:
        payload = self.encode(value)
        text = self.key_text(key)
        self._store_memory(text, payload)
        if self.disk_dir is not None:
            self._disk_put(text, payload)

    def _store_memory(self, text: str, payload: Any) -> None:
        entries = self._entries
        entries[text] = payload
        entries.move_to_end(text)
        if len(entries) > self.maxsize:
            entries.popitem(last=False)

    def clear_memory(self) -> None:
        """Drop every memory-tier entry and unbind the digest.

        Part of the ``--force`` contract: the next :meth:`ensure` rebinds
        without counting an invalidation, and every :meth:`get` recomputes.
        """
        self._entries.clear()
        self.digest = None

    # ------------------------------------------------------------------
    # disk tier
    # ------------------------------------------------------------------
    def _path(self, key: Any) -> Path:
        return self._path_for(self.key_text(key))

    def _path_for(self, text: str) -> Path:
        digest = hashlib.sha256(text.encode()).hexdigest()[:24]
        return self.disk_dir / f"{self.file_prefix}_{digest}.json"

    def _checksum(self, digest: str | None, text: str, payload: Any) -> str:
        """Integrity checksum over a disk entry's semantic content."""
        body = json.dumps({"digest": digest, "key": text, "result": payload},
                          sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(body.encode()).hexdigest()

    def _disk_put(self, text: str, payload: Any) -> None:
        self.disk_dir.mkdir(parents=True, exist_ok=True)
        blob = json.dumps({"digest": self.digest, "key": text,
                           "result": payload,
                           "checksum": self._checksum(self.digest, text,
                                                      payload)},
                          sort_keys=True)
        write_atomic(self._path_for(text), blob)

    def _read_disk(self, path: Path, text: str) -> Any | None:
        try:
            raw = json.loads(path.read_text())
        except (OSError, ValueError):
            return None  # absent or torn file: treat as a miss
        if (not isinstance(raw, dict) or raw.get("digest") != self.digest
                or raw.get("key") != text
                or not self.valid_payload(raw.get("result"))):
            return None  # stale digest or hash collision: recompute
        # Torn writes are already impossible (write_atomic), but storage
        # bit-rot is not: a checksum mismatch means the payload silently
        # changed since it was written — serve a miss and recompute rather
        # than poison downstream results.  Entries persisted before the
        # checksum existed carry none and stay acceptable.
        checksum = raw.get("checksum")
        if checksum is not None and checksum != self._checksum(
                self.digest, text, raw["result"]):
            self.corrupt_entries += 1
            _count(self.name, "corrupt")
            return None
        return raw["result"]

    def _disk_get(self, key: Any, text: str | None = None) -> Any | None:
        if self.disk_dir is None:
            return None
        if text is None:
            text = self.key_text(key)
        payload = self._read_disk(self._path_for(text), text)
        if payload is not None:
            return payload
        # Migration: entries persisted under a superseded serialization
        # are rewritten at the canonical path and the old file removed.
        for legacy in self.legacy_key_texts(key):
            if legacy == text:
                continue
            legacy_path = self._path_for(legacy)
            payload = self._read_disk(legacy_path, legacy)
            if payload is not None:
                self._disk_put(text, payload)
                try:
                    legacy_path.unlink()
                except OSError:
                    pass  # a parallel worker migrated it first
                return payload
        return None

    def clear_disk(self) -> int:
        """Delete every persisted entry (``--force``); returns the count.

        Also drops the memory tier and unbinds the digest: a live instance
        must not keep serving payloads whose persisted twins were just
        discarded.
        """
        self.clear_memory()
        if self.disk_dir is None or not self.disk_dir.is_dir():
            return 0
        removed = 0
        for path in sorted(self.disk_dir.glob(f"{self.file_prefix}_*.json")):
            path.unlink()
            removed += 1
        return removed

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "corrupt_entries": self.corrupt_entries,
            "hit_rate": self.hit_rate(),
        }
