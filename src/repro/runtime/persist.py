"""Crash-safe result persistence: atomic writes and corrupt-file quarantine.

The artifact workflow's whole value is resumability: a campaign that dies
mid-run must pick up exactly where it stopped.  A bare ``path.write_text``
breaks that promise — a crash mid-write leaves a truncated JSON file that
existence-based status checks count as "done" and that ``json.loads`` then
crashes on during resume.  This module provides the two primitives the
execution engine builds on:

* :func:`write_atomic` — write to a same-directory temp file, then
  ``os.replace`` it into place.  Readers observe either the old state or
  the complete new file, never a prefix.
* :func:`quarantine` — move an unreadable result aside (``*.corrupt``)
  so the point can be re-run instead of crashing the whole campaign.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["write_atomic", "quarantine", "discard_stale_tmp"]

#: Suffix appended to the temp file while an atomic write is in flight.
TMP_SUFFIX = ".tmp"

#: Suffix given to quarantined (unparseable / schema-invalid) result files.
CORRUPT_SUFFIX = ".corrupt"


def write_atomic(path: str | Path, text: str, *, durable: bool = False) -> Path:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``).

    The temp file lives in the target directory (``os.replace`` is only
    atomic within one filesystem) and carries the writer's PID so
    concurrent workers never collide on it.  A crash between the two steps
    leaves only a stale ``*.tmp`` file, never a truncated result.

    ``durable=True`` additionally fsyncs the temp file before the rename
    and the parent directory after it.  The rename alone survives *process*
    crashes but not power loss: without the syncs the kernel may still hold
    both the data and the directory entry in the page cache, and a reboot
    can resurface an empty or missing result that existence-based resume
    then trusts.  Campaign and sweep results — hours of compute per file —
    are written durably; caches and ledgers accept the cheaper default.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}{TMP_SUFFIX}")
    try:
        if durable:
            with tmp.open("w") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
        else:
            tmp.write_text(text)
        os.replace(tmp, path)
        if durable:
            _fsync_dir(path.parent)
    finally:
        # Only reached with the tmp file still present if write or replace
        # failed; never remove the published result.
        tmp.unlink(missing_ok=True)
    return path


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry (the rename itself) to stable storage.

    Directory fds are not openable on some platforms/filesystems; losing
    the sync there only narrows the durability window back to the
    non-durable behavior, so failures are deliberately non-fatal.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def quarantine(path: str | Path) -> Path:
    """Move a corrupt result file aside and return its new location.

    The file is renamed to ``<name>.corrupt`` (with a numeric suffix if a
    previous quarantine already claimed that name) so it remains available
    for post-mortem inspection while the engine re-runs the point.
    """
    path = Path(path)
    candidate = path.with_name(path.name + CORRUPT_SUFFIX)
    counter = 1
    while candidate.exists():
        candidate = path.with_name(f"{path.name}{CORRUPT_SUFFIX}{counter}")
        counter += 1
    os.replace(path, candidate)
    return candidate


def discard_stale_tmp(directory: str | Path) -> int:
    """Delete leftover ``*.tmp`` files from crashed writers; returns count.

    Safe to call before launching workers: live writers use fresh
    PID-stamped names, so anything already on disk is an orphan.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    removed = 0
    for stale in directory.glob(f"*{TMP_SUFFIX}"):
        stale.unlink(missing_ok=True)
        removed += 1
    return removed
