"""A software stand-in for the DRAM Bender FPGA testing infrastructure.

The paper drives real DDR4 modules with DRAM Bender (built on SoftMC): a
host machine compiles test programs, an FPGA executes them with
cycle-accurate command timing, and a PID-controlled heater holds the chips at
a target temperature.  This package reproduces that stack in software:

* :mod:`repro.bender.isa` — the test-program instruction set
  (ACT / PRE / write-row / read-row / sleep);
* :mod:`repro.bender.program` — a builder for test programs;
* :mod:`repro.bender.executor` — executes programs against a
  :class:`~repro.dram.module.DRAMModule` with timing bookkeeping;
* :mod:`repro.bender.temperature` — the PID temperature controller
  (MaxWell FT200 stand-in, +/- 0.5 C precision);
* :mod:`repro.bender.host` — the host-machine facade tying it together.
"""

from repro.bender.isa import Act, Pre, ReadRow, Sleep, SleepUntil, WriteRow
from repro.bender.program import TestProgram
from repro.bender.executor import ExecutionResult, ProgramExecutor
from repro.bender.compile import CompiledProgram, DoseSummary, compile_program, run_compiled
from repro.bender.temperature import PIDTemperatureController
from repro.bender.host import DRAMBenderHost, EXECUTION_KERNELS

__all__ = [
    "Act", "Pre", "ReadRow", "Sleep", "SleepUntil", "WriteRow",
    "TestProgram", "ExecutionResult", "ProgramExecutor",
    "CompiledProgram", "DoseSummary", "compile_program", "run_compiled",
    "PIDTemperatureController", "DRAMBenderHost", "EXECUTION_KERNELS",
]
