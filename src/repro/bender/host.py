"""The host-machine facade of the testing platform.

A :class:`DRAMBenderHost` owns the device under test, the program executor,
and the temperature controller, mirroring the four components of the paper's
infrastructure (Fig. 5): host machine, FPGA board, thermocouple + heaters,
and PID controller.
"""

from __future__ import annotations

from repro.bender.compile import run_compiled
from repro.bender.executor import ExecutionResult, ProgramExecutor
from repro.bender.program import TestProgram
from repro.bender.temperature import PIDTemperatureController
from repro.dram.module import DRAMModule
from repro.exec import STAGE_KERNELS, resolve_kernel

#: Program-execution kernels (the ``host`` stage of
#: :data:`repro.exec.STAGE_KERNELS`): ``stepping`` walks every instruction
#: through the device model (the validation path, observed by
#: ``--check-protocol``); ``compiled`` folds each program analytically
#: (bit-identical, faster).
EXECUTION_KERNELS = STAGE_KERNELS["host"]


class DRAMBenderHost:
    """Connects a module, runs programs, and regulates temperature."""

    def __init__(self, module: DRAMModule | str, *,
                 temperature_c: float = 80.0, seed: int = 2025,
                 kernel: str | None = None) -> None:
        kernel = resolve_kernel("host", kernel)
        if isinstance(module, str):
            module = DRAMModule(module, seed=seed, temperature_c=temperature_c)
        self.module = module
        self.kernel = kernel
        self.executor = ProgramExecutor(module)
        self.controller = PIDTemperatureController(setpoint_c=temperature_c)
        self.set_temperature(temperature_c)

    def set_temperature(self, temperature_c: float) -> float:
        """Drive the heaters until the chips settle at ``temperature_c``.

        The settled (regulated) temperature — within +/- 0.5 C of the target
        — is what the device under test actually experiences.
        """
        self.controller.set_target(temperature_c)
        settled = self.controller.settle()
        self.module.temperature_c = settled
        return settled

    def run(self, program: TestProgram) -> ExecutionResult:
        """Execute a test program on the device under test."""
        if self.kernel == "compiled":
            return run_compiled(self.module, program)
        return self.executor.execute(program)

    def new_program(self) -> TestProgram:
        """A fresh program bound to the device's timing parameters."""
        return TestProgram(timing=self.module.timing)
