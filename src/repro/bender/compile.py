"""Analytic (compiled) execution of test programs.

The instruction-stepping executor (:mod:`repro.bender.executor`) mutates a
:class:`~repro.dram.module.RowState` and walks the neighbor mapping for
every ACT/PRE cycle.  Characterization programs are highly regular — a few
row writes, a restoration loop, one hammer macro, one sleep, one read — so
the whole program can instead be *folded* into a per-row
:class:`DoseSummary` in a single pass and each read evaluated analytically
in one call (:meth:`DRAMModule.evaluate_read`).

The fold replicates the stepping executor bit-exactly: the same protocol
checks (same :class:`~repro.errors.ProgramError` messages, same indices),
the same clock arithmetic in the same operation order, and the same
device-state side effects applied back to the module afterward — so a
compiled run is indistinguishable from a stepped run, just cheaper.  The
stepping executor remains the validation path (``--check-protocol`` runs
observe it), with this compiled path selected through
``DRAMBenderHost(kernel="compiled")``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bender.executor import ExecutionResult
from repro.bender.isa import (
    Act,
    Hammer,
    Pre,
    ReadRow,
    Restore,
    Sleep,
    SleepUntil,
    WriteRow,
)
from repro.bender.program import TestProgram
from repro.dram.disturbance import BLAST_RADIUS, DataPattern, HammerDose
from repro.dram.module import DRAMModule
from repro.errors import DeviceError, ProgramError


@dataclass
class DoseSummary:
    """Folded per-row device state (the compiled form of ``RowState``)."""

    pattern: DataPattern | None = None
    restore_factor: float = 1.0
    consecutive_partial: int = 0
    near: float = 0.0
    far: float = 0.0
    last_restore_ns: float = 0.0
    activations: int = 0

    def dose(self) -> HammerDose:
        return HammerDose(self.near, self.far)


@dataclass
class CompiledProgram:
    """Result of folding one program against one module's current state."""

    bitflips: dict[str, int] = field(default_factory=dict)
    states: dict[tuple[int, int], DoseSummary] = field(default_factory=dict)
    duration_ns: float = 0.0
    instructions: int = 0


class _Folder:
    """Single-pass symbolic execution of a program."""

    def __init__(self, module: DRAMModule) -> None:
        self.module = module
        self.clock = 0.0
        self.open_row: dict[int, tuple[int, float]] = {}
        self.states: dict[tuple[int, int], DoseSummary] = {}
        self.out = CompiledProgram()
        self._handlers = {
            Act: self._act,
            Pre: self._pre,
            WriteRow: self._write_row,
            ReadRow: self._read_row,
            Sleep: self._sleep,
            SleepUntil: self._sleep_until,
            Hammer: self._hammer,
            Restore: self._restore,
        }

    # ------------------------------------------------------------------
    def fold(self, program: TestProgram) -> CompiledProgram:
        handlers = self._handlers
        for index, inst in enumerate(program):
            handler = handlers.get(type(inst))
            if handler is None:  # pragma: no cover - exhaustive over the ISA
                raise ProgramError(f"[{index}] unknown instruction {inst!r}")
            handler(inst, index)
            self.out.instructions += 1
        if self.open_row:
            banks = sorted(self.open_row)
            raise ProgramError(f"program ended with banks {banks} still open")
        self.out.states = self.states
        self.out.duration_ns = self.clock
        return self.out

    # ------------------------------------------------------------------
    # symbolic row state
    # ------------------------------------------------------------------
    def _touch(self, bank: int, row: int) -> DoseSummary:
        """Symbolic state of a row, creating it exactly as the device would
        on first touch (copying pre-program module state if present)."""
        self.module._check_address(bank, row)
        key = (bank, row)
        state = self.states.get(key)
        if state is None:
            existing = self.module._states.get(key)
            if existing is not None:
                state = DoseSummary(
                    pattern=existing.pattern,
                    restore_factor=existing.restore_factor,
                    consecutive_partial=existing.consecutive_partial,
                    near=existing.dose.near, far=existing.dose.far,
                    last_restore_ns=existing.last_restore_ns,
                    activations=existing.activations)
            else:
                state = DoseSummary(last_restore_ns=self.clock)
            self.states[key] = state
        return state

    def _disturb(self, bank: int, row: int, count: int) -> None:
        """Deposit dose on tracked neighbors (same visibility rule as the
        device: rows never touched and absent from the module hold no test
        data, so their dose is not tracked)."""
        module = self.module
        for distance in range(1, BLAST_RADIUS + 1):
            for victim in module.mapping.neighbors(row, distance):
                key = (bank, victim)
                state = self.states.get(key)
                if state is None:
                    if key not in module._states:
                        continue
                    state = self._touch(bank, victim)
                if distance == 1:
                    state.near = state.near + count
                else:
                    state.far = state.far + count

    # ------------------------------------------------------------------
    # per-opcode handlers (clock arithmetic mirrors DRAMModule op-for-op)
    # ------------------------------------------------------------------
    def _act(self, inst: Act, index: int) -> None:
        if inst.bank in self.open_row:
            raise ProgramError(f"[{index}] ACT to open bank {inst.bank}")
        self.open_row[inst.bank] = (inst.row, inst.wait_ns)

    def _pre(self, inst: Pre, index: int) -> None:
        if inst.bank not in self.open_row:
            raise ProgramError(f"[{index}] PRE on closed bank {inst.bank}")
        row, act_wait = self.open_row.pop(inst.bank)
        timing = self.module.timing
        tras_ns = act_wait
        if tras_ns <= 0:
            raise DeviceError(f"non-positive tRAS: {tras_ns}")
        state = self._touch(inst.bank, row)
        factor = min(tras_ns / timing.tRAS, 1.0)
        if factor >= 1.0:
            state.restore_factor = 1.0
            state.consecutive_partial = 0
        elif state.consecutive_partial and state.restore_factor == factor:
            state.consecutive_partial += 1
        else:
            state.restore_factor = factor
            state.consecutive_partial = 1
        state.near = 0.0
        state.far = 0.0
        state.last_restore_ns = self.clock
        state.activations += 1
        self._disturb(inst.bank, row, 1)
        self.clock += tras_ns + timing.tRP

    def _write_row(self, inst: WriteRow, index: int) -> None:
        self._require_closed(inst.bank, index)
        state = self._touch(inst.bank, inst.row)
        state.pattern = inst.pattern
        state.restore_factor = 1.0
        state.consecutive_partial = 0
        state.near = 0.0
        state.far = 0.0
        state.last_restore_ns = self.clock
        state.activations += 1
        self._disturb(inst.bank, inst.row, 1)
        timing = self.module.timing
        self.clock += (timing.tRCD + self.module.geometry.columns_per_row
                       * timing.tCCD + timing.tWR + timing.tRP)

    def _read_row(self, inst: ReadRow, index: int) -> None:
        self._require_closed(inst.bank, index)
        state = self._touch(inst.bank, inst.row)
        if state.pattern is None:
            raise DeviceError(
                f"row ({inst.bank}, {inst.row}) read before initialization")
        wait_ns = max(0.0, self.clock - state.last_restore_ns)
        self.out.bitflips[inst.key] = self.module.evaluate_read(
            inst.bank, inst.row, pattern=state.pattern,
            factor=state.restore_factor,
            n_pr=max(1, state.consecutive_partial),
            dose=state.dose(), wait_ns=wait_ns)

    def _sleep(self, inst: Sleep, index: int) -> None:
        if inst.duration_ns < 0:
            raise DeviceError("cannot elapse negative time")
        self.clock += inst.duration_ns

    def _sleep_until(self, inst: SleepUntil, index: int) -> None:
        if self.clock < inst.target_ns:
            self.clock += inst.target_ns - self.clock

    def _hammer(self, inst: Hammer, index: int) -> None:
        self._require_closed(inst.bank, index)
        if inst.count < 0:
            raise DeviceError("negative hammer count")
        if inst.count == 0:
            return
        for row in inst.rows:
            state = self._touch(inst.bank, row)
            state.restore_factor = 1.0
            state.consecutive_partial = 0
            state.near = 0.0
            state.far = 0.0
            state.last_restore_ns = self.clock
            state.activations += inst.count
            self._disturb(inst.bank, row, inst.count)
        self.clock += inst.count * len(inst.rows) * self.module.timing.tRC

    def _restore(self, inst: Restore, index: int) -> None:
        self._require_closed(inst.bank, index)
        if inst.count < 0:
            raise DeviceError("negative restoration count")
        if inst.count == 0:
            return
        timing = self.module.timing
        factor = min(inst.tras_ns / timing.tRAS, 1.0)
        state = self._touch(inst.bank, inst.row)
        if factor >= 1.0:
            state.restore_factor = 1.0
            state.consecutive_partial = 0
        elif state.consecutive_partial and state.restore_factor == factor:
            state.consecutive_partial += inst.count
        else:
            state.restore_factor = factor
            state.consecutive_partial = inst.count
        state.near = 0.0
        state.far = 0.0
        state.last_restore_ns = self.clock
        state.activations += inst.count
        self._disturb(inst.bank, inst.row, inst.count)
        self.clock += inst.count * (inst.tras_ns + timing.tRP)

    def _require_closed(self, bank: int, index: int) -> None:
        if bank in self.open_row:
            raise ProgramError(
                f"[{index}] bank {bank} must be precharged first")


def compile_program(module: DRAMModule, program: TestProgram) -> CompiledProgram:
    """Fold ``program`` into per-row dose summaries and evaluated reads.

    Pure with respect to the module's *row states* (they are read, not
    written); the returned :class:`CompiledProgram` carries the folded end
    state.  The program clock starts at zero, exactly like
    :meth:`ProgramExecutor.execute`.
    """
    return _Folder(module).fold(program)


def run_compiled(module: DRAMModule, program: TestProgram) -> ExecutionResult:
    """Execute a program via the analytic fold, applying side effects.

    Equivalent to ``ProgramExecutor(module).execute(program)`` — same
    results, same errors, same post-run module state — evaluated in one
    pass over the folded summaries.
    """
    module.clock_ns = 0.0
    compiled = compile_program(module, program)
    for (bank, row), summary in compiled.states.items():
        state = module._states.get((bank, row))
        if state is None:
            state = module.row_state(bank, row)
        state.pattern = summary.pattern
        state.restore_factor = summary.restore_factor
        state.consecutive_partial = summary.consecutive_partial
        state.dose = summary.dose()
        state.last_restore_ns = summary.last_restore_ns
        state.activations = summary.activations
    module.clock_ns = compiled.duration_ns
    return ExecutionResult(bitflips=compiled.bitflips,
                           duration_ns=compiled.duration_ns,
                           instructions_executed=compiled.instructions)


def fold_probe_states(timing, columns_per_row: int, tras_red_ns: float,
                      n_pr: int, hammer_counts) -> tuple:
    """Fold a batch of ``perform_rh`` programs' doses as array ops.

    The array-tier form of the per-probe analytic fold: for a vector of
    hammer counts (one per victim row, as the bisection diverges per row),
    returns ``(wait_ns, equivalent)`` float64 arrays — the victim's idle
    time since its last restoration at the read, and its per-aggressor
    double-sided dose.  Every elementwise operation replicates the scalar
    fold's expression order (see
    :func:`repro.characterization.vectorized._probe_state`), so the folded
    doses are bit-identical to stepping each program.
    """
    import numpy as np

    from repro.dram.disturbance import BLAST_RADIUS_WEIGHTS

    hc = np.asarray(hammer_counts, dtype=np.int64)
    write_ns = (timing.tRCD + columns_per_row * timing.tCCD
                + timing.tWR + timing.tRP)
    clock = 0.0
    clock += write_ns  # WriteRow victim (last_restore := 0.0)
    clock += write_ns  # WriteRow aggressor 1
    clock += write_ns  # WriteRow aggressor 2
    last_restore = 0.0
    if n_pr > TestProgram.UNROLL_LIMIT:
        last_restore = clock
        clock += n_pr * (tras_red_ns + timing.tRP)
    else:
        for _ in range(n_pr):
            last_restore = clock
            clock += tras_red_ns + timing.tRP
    hammered = hc > 0
    near = np.where(hammered, (0.0 + hc) + hc, 0.0)
    clock = np.where(hammered, clock + hc * 2 * timing.tRC, clock)
    clock = np.where(clock < timing.tREFW,
                     clock + (timing.tREFW - clock), clock)
    wait_ns = np.maximum(0.0, clock - last_restore)
    equivalent = (near + BLAST_RADIUS_WEIGHTS[2] * 0.0) / 2.0
    return wait_ns, equivalent
