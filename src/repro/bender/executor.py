"""Executes test programs against a DRAM module device model.

The executor enforces the command-protocol invariants a real memory
controller/FPGA would (no ACT to an open bank, PRE only on an open bank) and
keeps the program clock, so characterization code can rely on the
"runtime must not exceed the refresh window" discipline of §4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bender.isa import (
    Act,
    Hammer,
    Instruction,
    Pre,
    ReadRow,
    Restore,
    Sleep,
    SleepUntil,
    WriteRow,
)
from repro.bender.program import TestProgram
from repro.dram.module import DRAMModule
from repro.errors import ProgramError


@dataclass
class ExecutionResult:
    """Outcome of one program execution."""

    bitflips: dict[str, int] = field(default_factory=dict)
    duration_ns: float = 0.0
    instructions_executed: int = 0

    def flips(self, key: str) -> int:
        """Bitflip count recorded under ``key`` (KeyError if never read)."""
        return self.bitflips[key]


class ProgramExecutor:
    """Runs :class:`TestProgram` instances on a :class:`DRAMModule`."""

    def __init__(self, module: DRAMModule) -> None:
        self.module = module

    def execute(self, program: TestProgram) -> ExecutionResult:
        """Execute every instruction, returning recorded bitflip counts.

        The module's clock is reset at program start, mirroring how each
        DRAM Bender test runs as an isolated experiment with periodic
        refresh disabled (§4.1).
        """
        module = self.module
        module.clock_ns = 0.0
        result = ExecutionResult()
        open_row: dict[int, tuple[int, float]] = {}  # bank -> (row, act wait)
        for index, inst in enumerate(program):
            self._dispatch(inst, module, open_row, result, index)
            result.instructions_executed += 1
        if open_row:
            banks = sorted(open_row)
            raise ProgramError(f"program ended with banks {banks} still open")
        result.duration_ns = module.clock_ns
        return result

    # ------------------------------------------------------------------
    def _dispatch(self, inst: Instruction, module: DRAMModule,
                  open_row: dict[int, tuple[int, float]],
                  result: ExecutionResult, index: int) -> None:
        if isinstance(inst, Act):
            if inst.bank in open_row:
                raise ProgramError(
                    f"[{index}] ACT to open bank {inst.bank}")
            open_row[inst.bank] = (inst.row, inst.wait_ns)
        elif isinstance(inst, Pre):
            if inst.bank not in open_row:
                raise ProgramError(
                    f"[{index}] PRE on closed bank {inst.bank}")
            row, act_wait = open_row.pop(inst.bank)
            # The ACT wait is the charge-restoration time actually granted.
            module.activate(inst.bank, row, tras_ns=act_wait)
        elif isinstance(inst, WriteRow):
            self._require_closed(inst.bank, open_row, index)
            module.write_row(inst.bank, inst.row, inst.pattern)
        elif isinstance(inst, ReadRow):
            self._require_closed(inst.bank, open_row, index)
            result.bitflips[inst.key] = module.read_row_bitflips(
                inst.bank, inst.row)
        elif isinstance(inst, Sleep):
            module.elapse(inst.duration_ns)
        elif isinstance(inst, SleepUntil):
            if module.clock_ns < inst.target_ns:
                module.elapse(inst.target_ns - module.clock_ns)
        elif isinstance(inst, Hammer):
            self._require_closed(inst.bank, open_row, index)
            module.hammer(inst.bank, inst.rows, inst.count)
        elif isinstance(inst, Restore):
            self._require_closed(inst.bank, open_row, index)
            module.partial_restore(inst.bank, inst.row, inst.tras_ns, inst.count)
        else:  # pragma: no cover - exhaustive over the ISA
            raise ProgramError(f"[{index}] unknown instruction {inst!r}")

    @staticmethod
    def _require_closed(bank: int, open_row: dict[int, tuple[int, float]],
                        index: int) -> None:
        if bank in open_row:
            raise ProgramError(
                f"[{index}] bank {bank} must be precharged first")
