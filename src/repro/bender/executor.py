"""Executes test programs against a DRAM module device model.

The executor enforces the command-protocol invariants a real memory
controller/FPGA would (no ACT to an open bank, PRE only on an open bank) and
keeps the program clock, so characterization code can rely on the
"runtime must not exceed the refresh window" discipline of §4.1.

Instruction dispatch is a dict keyed on the instruction type (one hash
lookup per instruction) rather than an ``isinstance`` chain; the table is
shared by this instruction-stepping executor and the analytic compiler in
:mod:`repro.bender.compile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bender.isa import (
    Act,
    Hammer,
    Instruction,
    Pre,
    ReadRow,
    Restore,
    Sleep,
    SleepUntil,
    WriteRow,
)
from repro.bender.program import TestProgram
from repro.dram.module import DRAMModule
from repro.errors import ProgramError


@dataclass
class ExecutionResult:
    """Outcome of one program execution."""

    bitflips: dict[str, int] = field(default_factory=dict)
    duration_ns: float = 0.0
    instructions_executed: int = 0

    def flips(self, key: str) -> int:
        """Bitflip count recorded under ``key``.

        Raises :class:`~repro.errors.ProgramError` naming the missing key
        and listing what *was* recorded, so a typo'd key fails with an
        actionable message instead of a bare ``KeyError``.
        """
        try:
            return self.bitflips[key]
        except KeyError:
            recorded = ", ".join(sorted(self.bitflips)) or "<none>"
            raise ProgramError(
                f"no bitflip count recorded under key {key!r} "
                f"(recorded keys: {recorded})") from None


class ProgramExecutor:
    """Runs :class:`TestProgram` instances on a :class:`DRAMModule`."""

    def __init__(self, module: DRAMModule) -> None:
        self.module = module
        self._handlers = {
            Act: self._act,
            Pre: self._pre,
            WriteRow: self._write_row,
            ReadRow: self._read_row,
            Sleep: self._sleep,
            SleepUntil: self._sleep_until,
            Hammer: self._hammer,
            Restore: self._restore,
        }

    def execute(self, program: TestProgram) -> ExecutionResult:
        """Execute every instruction, returning recorded bitflip counts.

        The module's clock is reset at program start, mirroring how each
        DRAM Bender test runs as an isolated experiment with periodic
        refresh disabled (§4.1).
        """
        module = self.module
        module.clock_ns = 0.0
        result = ExecutionResult()
        open_row: dict[int, tuple[int, float]] = {}  # bank -> (row, act wait)
        handlers = self._handlers
        for index, inst in enumerate(program):
            handler = handlers.get(type(inst))
            if handler is None:  # pragma: no cover - exhaustive over the ISA
                raise ProgramError(f"[{index}] unknown instruction {inst!r}")
            handler(inst, open_row, result, index)
            result.instructions_executed += 1
        if open_row:
            banks = sorted(open_row)
            raise ProgramError(f"program ended with banks {banks} still open")
        result.duration_ns = module.clock_ns
        return result

    # ------------------------------------------------------------------
    # per-opcode handlers
    # ------------------------------------------------------------------
    def _act(self, inst: Act, open_row: dict[int, tuple[int, float]],
             result: ExecutionResult, index: int) -> None:
        if inst.bank in open_row:
            raise ProgramError(f"[{index}] ACT to open bank {inst.bank}")
        open_row[inst.bank] = (inst.row, inst.wait_ns)

    def _pre(self, inst: Pre, open_row: dict[int, tuple[int, float]],
             result: ExecutionResult, index: int) -> None:
        if inst.bank not in open_row:
            raise ProgramError(f"[{index}] PRE on closed bank {inst.bank}")
        row, act_wait = open_row.pop(inst.bank)
        # The ACT wait is the charge-restoration time actually granted.
        self.module.activate(inst.bank, row, tras_ns=act_wait)

    def _write_row(self, inst: WriteRow, open_row: dict[int, tuple[int, float]],
                   result: ExecutionResult, index: int) -> None:
        self._require_closed(inst.bank, open_row, index)
        self.module.write_row(inst.bank, inst.row, inst.pattern)

    def _read_row(self, inst: ReadRow, open_row: dict[int, tuple[int, float]],
                  result: ExecutionResult, index: int) -> None:
        self._require_closed(inst.bank, open_row, index)
        result.bitflips[inst.key] = self.module.read_row_bitflips(
            inst.bank, inst.row)

    def _sleep(self, inst: Sleep, open_row: dict[int, tuple[int, float]],
               result: ExecutionResult, index: int) -> None:
        self.module.elapse(inst.duration_ns)

    def _sleep_until(self, inst: SleepUntil,
                     open_row: dict[int, tuple[int, float]],
                     result: ExecutionResult, index: int) -> None:
        module = self.module
        if module.clock_ns < inst.target_ns:
            module.elapse(inst.target_ns - module.clock_ns)

    def _hammer(self, inst: Hammer, open_row: dict[int, tuple[int, float]],
                result: ExecutionResult, index: int) -> None:
        self._require_closed(inst.bank, open_row, index)
        self.module.hammer(inst.bank, inst.rows, inst.count)

    def _restore(self, inst: Restore, open_row: dict[int, tuple[int, float]],
                 result: ExecutionResult, index: int) -> None:
        self._require_closed(inst.bank, open_row, index)
        self.module.partial_restore(inst.bank, inst.row, inst.tras_ns,
                                    inst.count)

    @staticmethod
    def _require_closed(bank: int, open_row: dict[int, tuple[int, float]],
                        index: int) -> None:
        if bank in open_row:
            raise ProgramError(
                f"[{index}] bank {bank} must be precharged first")
