"""Builder for DRAM Bender test programs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.bender.isa import (
    Act,
    Hammer,
    Instruction,
    Pre,
    ReadRow,
    Restore,
    Sleep,
    SleepUntil,
    WriteRow,
)
from repro.dram.disturbance import DataPattern
from repro.dram.timing import TimingParams, ddr4_timing
from repro.errors import ProgramError


@dataclass
class TestProgram:
    """A sequence of test instructions plus the timing used to build it.

    The builder methods mirror the helper functions of Algorithm 1, so
    characterization code reads like the paper's pseudocode::

        program = TestProgram()
        program.init_rows(bank, victim, aggressors, pattern)
        program.partial_restoration(bank, victim, tras_red, n_pr)
        program.hammer_doublesided(bank, aggressors, hammer_count)
        program.sleep_until(tREFW)
        program.check_bitflips(bank, victim, key="victim")
    """

    timing: TimingParams = field(default_factory=ddr4_timing)
    instructions: list[Instruction] = field(default_factory=list)

    #: Despite its name, this is a library class, not a pytest test class.
    __test__ = False

    # ------------------------------------------------------------------
    # raw instruction appends
    # ------------------------------------------------------------------
    def act(self, bank: int, row: int, wait_ns: float | None = None) -> "TestProgram":
        """Append an ACT (default wait: nominal tRAS)."""
        self.instructions.append(Act(bank, row, wait_ns or self.timing.tRAS))
        return self

    def pre(self, bank: int, wait_ns: float | None = None) -> "TestProgram":
        """Append a PRE (default wait: tRP)."""
        self.instructions.append(Pre(bank, wait_ns or self.timing.tRP))
        return self

    def sleep(self, duration_ns: float) -> "TestProgram":
        self.instructions.append(Sleep(duration_ns))
        return self

    def sleep_until(self, target_ns: float) -> "TestProgram":
        self.instructions.append(SleepUntil(target_ns))
        return self

    # ------------------------------------------------------------------
    # Algorithm-1 helpers
    # ------------------------------------------------------------------
    def init_rows(self, bank: int, victim: int, aggressors: tuple[int, ...],
                  pattern: DataPattern) -> "TestProgram":
        """Initialize the victim and aggressor rows (Alg. 1 line 7).

        The victim gets the pattern's victim byte and the aggressors the
        aggressor byte; the device model keys disturbance coupling off the
        pattern object itself.
        """
        self.instructions.append(WriteRow(bank, victim, pattern))
        for row in aggressors:
            self.instructions.append(WriteRow(bank, row, pattern))
        return self

    #: Restoration loops longer than this are emitted as a bulk macro.
    UNROLL_LIMIT = 16

    def partial_restoration(self, bank: int, row: int, tras_red_ns: float,
                            count: int) -> "TestProgram":
        """``count`` consecutive partial charge restorations (Alg. 1 l. 1-5)."""
        if count < 0:
            raise ProgramError("restoration count must be non-negative")
        if tras_red_ns > self.timing.tRAS:
            raise ProgramError(
                f"reduced tRAS {tras_red_ns} exceeds nominal {self.timing.tRAS}")
        if count > self.UNROLL_LIMIT:
            self.instructions.append(Restore(bank, row, tras_red_ns, count))
            return self
        for _ in range(count):
            self.act(bank, row, wait_ns=tras_red_ns)
            self.pre(bank)
        return self

    def hammer_doublesided(self, bank: int, aggressors: tuple[int, ...],
                           count: int) -> "TestProgram":
        """Alternating max-rate activations of the aggressor rows."""
        if len(aggressors) not in (1, 2):
            raise ProgramError("double-sided hammering uses one or two aggressors")
        self.instructions.append(Hammer(bank, tuple(aggressors), count))
        return self

    def check_bitflips(self, bank: int, row: int, key: str) -> "TestProgram":
        """Read a row back, recording its bitflip count under ``key``."""
        if not key:
            raise ProgramError("result key must be non-empty")
        self.instructions.append(ReadRow(bank, row, key))
        return self

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def estimated_duration_ns(self) -> float:
        """Lower-bound runtime of the program (explicit waits only)."""
        total = 0.0
        for inst in self.instructions:
            if isinstance(inst, (Act, Pre)):
                total += inst.wait_ns
            elif isinstance(inst, Sleep):
                total += inst.duration_ns
            elif isinstance(inst, Hammer):
                total += inst.count * len(inst.rows) * self.timing.tRC
            elif isinstance(inst, Restore):
                total += inst.count * (inst.tras_ns + self.timing.tRP)
            elif isinstance(inst, SleepUntil):
                total = max(total, inst.target_ns)
        return total
