"""Textual assembly for test programs (SoftMC-style program dumps).

Real DRAM-Bender test programs are shipped and reviewed as readable
instruction listings.  This module serializes :class:`TestProgram` to and
from such a listing, so characterization programs can be archived, diffed,
and replayed exactly::

    ACT    bank=0 row=1000 wait=12.0
    PRE    bank=0 wait=15.0
    WRITE  bank=0 row=1000 pattern=RS
    HAMMER bank=0 rows=999,1001 count=100000
    SLEEPU target=64000000.0
    READ   bank=0 row=1000 key=victim
"""

from __future__ import annotations

from repro.bender.isa import (
    Act,
    Hammer,
    Instruction,
    Pre,
    ReadRow,
    Restore,
    Sleep,
    SleepUntil,
    WriteRow,
)
from repro.bender.program import TestProgram
from repro.dram.disturbance import DataPattern
from repro.errors import ProgramError

_PATTERNS_BY_NAME = {p.short_name: p for p in DataPattern}


def _emit(instruction: Instruction) -> str:
    if isinstance(instruction, Act):
        return f"ACT    bank={instruction.bank} row={instruction.row} " \
               f"wait={instruction.wait_ns}"
    if isinstance(instruction, Pre):
        return f"PRE    bank={instruction.bank} wait={instruction.wait_ns}"
    if isinstance(instruction, WriteRow):
        return f"WRITE  bank={instruction.bank} row={instruction.row} " \
               f"pattern={instruction.pattern.short_name}"
    if isinstance(instruction, ReadRow):
        return f"READ   bank={instruction.bank} row={instruction.row} " \
               f"key={instruction.key}"
    if isinstance(instruction, Sleep):
        return f"SLEEP  ns={instruction.duration_ns}"
    if isinstance(instruction, SleepUntil):
        return f"SLEEPU target={instruction.target_ns}"
    if isinstance(instruction, Hammer):
        rows = ",".join(str(r) for r in instruction.rows)
        return f"HAMMER bank={instruction.bank} rows={rows} " \
               f"count={instruction.count}"
    if isinstance(instruction, Restore):
        return f"RESTOR bank={instruction.bank} row={instruction.row} " \
               f"tras={instruction.tras_ns} count={instruction.count}"
    raise ProgramError(f"cannot serialize {instruction!r}")


def dumps(program: TestProgram) -> str:
    """Serialize a program to its assembly listing."""
    return "\n".join(_emit(instruction) for instruction in program) + "\n"


def _fields(parts: list[str]) -> dict[str, str]:
    out = {}
    for part in parts:
        if "=" not in part:
            raise ProgramError(f"malformed operand {part!r}")
        key, value = part.split("=", 1)
        out[key] = value
    return out


def _parse_line(line: str) -> Instruction:
    parts = line.split()
    mnemonic, fields = parts[0], _fields(parts[1:])
    try:
        if mnemonic == "ACT":
            return Act(int(fields["bank"]), int(fields["row"]),
                       float(fields["wait"]))
        if mnemonic == "PRE":
            return Pre(int(fields["bank"]), float(fields["wait"]))
        if mnemonic == "WRITE":
            pattern = _PATTERNS_BY_NAME[fields["pattern"]]
            return WriteRow(int(fields["bank"]), int(fields["row"]), pattern)
        if mnemonic == "READ":
            return ReadRow(int(fields["bank"]), int(fields["row"]),
                           fields["key"])
        if mnemonic == "SLEEP":
            return Sleep(float(fields["ns"]))
        if mnemonic == "SLEEPU":
            return SleepUntil(float(fields["target"]))
        if mnemonic == "HAMMER":
            rows = tuple(int(r) for r in fields["rows"].split(","))
            return Hammer(int(fields["bank"]), rows, int(fields["count"]))
        if mnemonic == "RESTOR":
            return Restore(int(fields["bank"]), int(fields["row"]),
                           float(fields["tras"]), int(fields["count"]))
    except KeyError as missing:
        raise ProgramError(
            f"{mnemonic}: missing operand {missing}") from None
    raise ProgramError(f"unknown mnemonic {mnemonic!r}")


def loads(text: str, program: TestProgram | None = None) -> TestProgram:
    """Parse an assembly listing back into a program.

    Blank lines and ``#`` comments are ignored.
    """
    program = program or TestProgram()
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            program.instructions.append(_parse_line(line))
        except ProgramError as error:
            raise ProgramError(f"line {number}: {error}") from None
    return program
