"""PID temperature controller (MaxWell FT200 stand-in).

The paper's platform presses heater pads against the chips and holds the
target temperature within +/- 0.5 C (§4.1, footnote 2).  This module models
that loop: a first-order thermal plant (heater power in, temperature out,
ambient losses) regulated by a discrete PID controller.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass
class ThermalPlant:
    """First-order thermal model of the DIMM + heater pads."""

    ambient_c: float = 25.0
    thermal_resistance: float = 0.9  #: C per watt at steady state
    time_constant_s: float = 18.0  #: thermal RC constant
    temperature_c: float = 25.0

    def step(self, heater_watts: float, dt_s: float) -> float:
        """Advance the plant by ``dt_s`` seconds with the given heater power."""
        if dt_s <= 0:
            raise ConfigError("time step must be positive")
        target = self.ambient_c + self.thermal_resistance * max(heater_watts, 0.0)
        alpha = 1.0 - pow(2.718281828459045, -dt_s / self.time_constant_s)
        self.temperature_c += alpha * (target - self.temperature_c)
        return self.temperature_c


class PIDTemperatureController:
    """Discrete PID loop holding the chips at a setpoint within +/- 0.5 C."""

    #: Regulation precision the paper's controller achieves.
    PRECISION_C = 0.5

    def __init__(self, setpoint_c: float = 80.0, *,
                 kp: float = 9.0, ki: float = 0.8, kd: float = 4.0,
                 max_power_w: float = 120.0,
                 plant: ThermalPlant | None = None) -> None:
        if setpoint_c <= 0:
            raise ConfigError("setpoint must be positive")
        self.setpoint_c = setpoint_c
        self.kp, self.ki, self.kd = kp, ki, kd
        self.max_power_w = max_power_w
        self.plant = plant or ThermalPlant()
        self._integral = 0.0
        self._previous_error: float | None = None

    @property
    def temperature_c(self) -> float:
        return self.plant.temperature_c

    def set_target(self, setpoint_c: float) -> None:
        """Change the setpoint (e.g. 50 -> 65 -> 80 C sweeps)."""
        if setpoint_c <= 0:
            raise ConfigError("setpoint must be positive")
        self.setpoint_c = setpoint_c

    def step(self, dt_s: float = 1.0) -> float:
        """One control period: measure, compute PID output, drive heater."""
        error = self.setpoint_c - self.plant.temperature_c
        self._integral += error * dt_s
        # Anti-windup: bound the integral so overshoot stays within spec.
        bound = self.max_power_w / max(self.ki, 1e-9)
        self._integral = max(-bound, min(self._integral, bound))
        derivative = 0.0
        if self._previous_error is not None:
            derivative = (error - self._previous_error) / dt_s
        self._previous_error = error
        power = (self.kp * error + self.ki * self._integral
                 + self.kd * derivative)
        power = max(0.0, min(power, self.max_power_w))
        return self.plant.step(power, dt_s)

    def settle(self, *, dt_s: float = 1.0, timeout_s: float = 1800.0) -> float:
        """Run the loop until the temperature is within spec of the setpoint.

        Returns the settled temperature; raises if regulation fails within
        ``timeout_s`` (a broken configuration, e.g. insufficient power).
        """
        elapsed = 0.0
        stable = 0.0
        while elapsed < timeout_s:
            self.step(dt_s)
            elapsed += dt_s
            if abs(self.plant.temperature_c - self.setpoint_c) <= self.PRECISION_C:
                stable += dt_s
                if stable >= 10.0:  # stay in band, not just cross it
                    return self.plant.temperature_c
            else:
                stable = 0.0
        raise ConfigError(
            f"temperature failed to settle at {self.setpoint_c} C within "
            f"{timeout_s}s (reached {self.plant.temperature_c:.2f} C)")
