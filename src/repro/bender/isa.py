"""Instruction set of the software DRAM Bender.

Programs are flat sequences of these instructions.  Waits are explicit and
attached to the command that owns them, exactly how SoftMC-style test
programs encode custom timings (e.g. an ``ACT`` with ``wait=tRAS(Red)``
performs a partial charge restoration, Algorithm 1 line 4).

A ``Hammer`` macro-instruction is provided for bulk interleaved activations:
a real program would express it as an unrolled ACT/PRE loop; the macro keeps
100K-activation tests fast without changing observable behavior.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.disturbance import DataPattern
from repro.errors import ProgramError


@dataclass(frozen=True)
class Act:
    """Activate ``row`` in ``bank`` and keep it open for ``wait_ns``."""

    bank: int
    row: int
    wait_ns: float

    def __post_init__(self) -> None:
        if self.wait_ns <= 0:
            raise ProgramError("ACT wait must be positive")


@dataclass(frozen=True)
class Pre:
    """Precharge ``bank``, waiting ``wait_ns`` (tRP) before the next command."""

    bank: int
    wait_ns: float

    def __post_init__(self) -> None:
        if self.wait_ns <= 0:
            raise ProgramError("PRE wait must be positive")


@dataclass(frozen=True)
class WriteRow:
    """Initialize a whole row with a data pattern (init_rows helper)."""

    bank: int
    row: int
    pattern: DataPattern


@dataclass(frozen=True)
class ReadRow:
    """Read a row back and record its bitflip count under ``key``."""

    bank: int
    row: int
    key: str


@dataclass(frozen=True)
class Sleep:
    """Idle for ``duration_ns`` (refresh stays disabled; charge leaks)."""

    duration_ns: float

    def __post_init__(self) -> None:
        if self.duration_ns < 0:
            raise ProgramError("sleep duration must be non-negative")


@dataclass(frozen=True)
class SleepUntil:
    """Idle until the program clock reaches ``target_ns`` (no-op if past).

    Algorithm 1's ``sleep_until_tREFW`` maps onto this instruction.
    """

    target_ns: float

    def __post_init__(self) -> None:
        if self.target_ns < 0:
            raise ProgramError("sleep target must be non-negative")


@dataclass(frozen=True)
class Hammer:
    """Bulk interleaved activations: each row in ``rows`` is activated
    ``count`` times with nominal full-speed timing, alternating between the
    rows (the double-sided hammering loop of Algorithm 1 line 9)."""

    bank: int
    rows: tuple[int, ...]
    count: int

    def __post_init__(self) -> None:
        if not self.rows:
            raise ProgramError("hammer needs at least one row")
        if self.count < 0:
            raise ProgramError("hammer count must be non-negative")


@dataclass(frozen=True)
class Restore:
    """Bulk partial-restoration macro: ``count`` consecutive ACT/PRE cycles
    on one row with a (possibly reduced) charge-restoration wait.

    Equivalent to ``count`` unrolled ACT(wait=tras_ns)/PRE pairs; provided so
    15K-restoration experiments (Fig. 12) do not build 30K-instruction
    programs.
    """

    bank: int
    row: int
    tras_ns: float
    count: int

    def __post_init__(self) -> None:
        if self.tras_ns <= 0:
            raise ProgramError("restore tRAS must be positive")
        if self.count < 0:
            raise ProgramError("restore count must be non-negative")


Instruction = Act | Pre | WriteRow | ReadRow | Sleep | SleepUntil | Hammer | Restore
