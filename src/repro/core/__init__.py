"""PaCRAM: Partial Charge Restoration for Aggressive Mitigation (§8).

The paper's contribution.  PaCRAM sits in the memory controller next to an
existing RowHammer mitigation mechanism and:

1. issues most preventive refreshes with a **reduced** charge-restoration
   latency (partial charge restoration), chosen from real-chip
   characterization data;
2. scales the mitigation's configured RowHammer threshold down by the
   measured ``N_RH`` reduction ratio, so security is unchanged (§8.2);
3. bounds consecutive partial restorations per row with the fully-restored
   bit vector (FR) and the full-charge-restoration interval ``t_FCRI``
   (§8.3), guaranteeing data retention.

The Appendix-B extension to periodic refreshes lives in
:mod:`repro.core.periodic`; the hardware-cost model in
:mod:`repro.core.area`; the §10 profiling-cost model in
:mod:`repro.core.profiling`.
"""

from repro.core.config import PaCRAMConfig, full_charge_restoration_interval_ns
from repro.core.fr_bitvector import FRBitVector
from repro.core.pacram import PaCRAM
from repro.core.periodic import PeriodicPaCRAM
from repro.core.area import (
    XEON_DIE_MM2,
    fr_access_latency_ns,
    fr_area_fraction_of_controller,
    fr_area_fraction_of_xeon,
    fr_area_mm2,
    fr_storage_bytes,
)
from repro.core.profiling import ProfilingCost, profiling_cost
from repro.core.ondie import ModeRegister, OnDiePaCRAM, SelfManagingDRAMPaCRAM
from repro.core.spd import SpdEntry, SpdRecord
from repro.core.online_profiling import OnlineProfiler, ProfilingBatch
from repro.core.security import (
    AttackOutcome,
    secure_configuration,
    worst_case_attack,
)

__all__ = [
    "PaCRAMConfig",
    "full_charge_restoration_interval_ns",
    "FRBitVector",
    "PaCRAM",
    "PeriodicPaCRAM",
    "XEON_DIE_MM2",
    "fr_area_mm2",
    "fr_area_fraction_of_xeon",
    "fr_area_fraction_of_controller",
    "fr_access_latency_ns",
    "fr_storage_bytes",
    "ProfilingCost",
    "profiling_cost",
    "ModeRegister",
    "OnDiePaCRAM",
    "SelfManagingDRAMPaCRAM",
    "SpdEntry",
    "SpdRecord",
    "OnlineProfiler",
    "ProfilingBatch",
    "AttackOutcome",
    "worst_case_attack",
    "secure_configuration",
]
