"""The fully-restored (FR) bit vector (§8.3).

One bit per DRAM row: set (F-state) means the row's next preventive refresh
must use *full* charge restoration; clear (P-state) means partial
restoration is safe.  All rows start in F, a full restoration moves a row to
P, and PaCRAM periodically pulls every row back to F — once per
``t_FCRI`` — so no row ever receives more than ``N_PCR`` consecutive
partial restorations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class FRBitVector:
    """Per-row F/P state for one DRAM module, as the SRAM array would hold it."""

    def __init__(self, banks: int, rows_per_bank: int) -> None:
        if banks <= 0 or rows_per_bank <= 0:
            raise ConfigError("banks and rows_per_bank must be positive")
        self.banks = banks
        self.rows_per_bank = rows_per_bank
        # True = F-state (needs full restoration).
        self._bits = np.ones((banks, rows_per_bank), dtype=bool)

    def needs_full_restoration(self, bank: int, row: int) -> bool:
        """Whether the row is in F-state."""
        self._check(bank, row)
        return bool(self._bits[bank, row])

    def mark_fully_restored(self, bank: int, row: int) -> None:
        """Full charge restoration performed: row moves to P-state."""
        self._check(bank, row)
        self._bits[bank, row] = False

    def reset_all(self) -> None:
        """Periodic t_FCRI reset: every row returns to F-state."""
        self._bits[:] = True

    def fraction_in_f_state(self) -> float:
        """Fraction of rows currently requiring full restoration."""
        return float(self._bits.mean())

    @property
    def storage_bits(self) -> int:
        """SRAM bits this vector occupies (one per row)."""
        return self.banks * self.rows_per_bank

    def _check(self, bank: int, row: int) -> None:
        if not (0 <= bank < self.banks and 0 <= row < self.rows_per_bank):
            raise ConfigError(f"(bank={bank}, row={row}) out of range")
