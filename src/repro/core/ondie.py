"""On-DRAM-die PaCRAM (§8.5).

When the RowHammer mitigation lives inside the DRAM chip (PRAC, and the
broader on-die TRR family), the memory controller cannot see which victim
rows a preventive refresh touches.  §8.5 describes two integration paths:

1. **Mode-register (MR) signaling** — PaCRAM, still in the controller,
   decides whether the *next* managed refresh may be partial and programs
   the latency into a mode register; the chip uses that latency when it
   services the RFM.
2. **Self-Managing DRAM** — the chip performs maintenance autonomously, so
   PaCRAM (FR vector and all) moves entirely on-die, with no interface or
   controller changes.

Both are modeled here as refresh-latency policies, so they drop into the
same simulator slot as the baseline controller-side PaCRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import PaCRAMConfig
from repro.core.fr_bitvector import FRBitVector
from repro.errors import ConfigError
from repro.sim.config import SystemConfig
from repro.sim.controller import RefreshLatencyPolicy


@dataclass
class ModeRegister:
    """The refresh-latency mode register of one DRAM rank (§8.5).

    Holds the charge-restoration latency the chip applies to the *next*
    managed (preventive) refresh.  Writing the MR costs a command-bus
    transaction, which the policy counts.
    """

    nominal_tras_ns: float
    current_tras_ns: float = field(init=False)
    writes: int = 0

    def __post_init__(self) -> None:
        if self.nominal_tras_ns <= 0:
            raise ConfigError("nominal tRAS must be positive")
        self.current_tras_ns = self.nominal_tras_ns

    def program(self, tras_ns: float) -> None:
        """Write the MR (no-op writes are filtered by the controller)."""
        if tras_ns <= 0 or tras_ns > self.nominal_tras_ns:
            raise ConfigError(f"MR latency {tras_ns} out of range")
        if tras_ns != self.current_tras_ns:
            self.current_tras_ns = tras_ns
            self.writes += 1


class OnDiePaCRAM(RefreshLatencyPolicy):
    """PaCRAM for in-DRAM mitigations via mode-register signaling (§8.5).

    The controller tracks F/P state at **bank** granularity (it cannot see
    rows the chip picks) and programs the rank's MR before each preventive
    refresh.  Semantically this matches the bank-granular fallback of the
    controller-side PaCRAM, but it also accounts the MR traffic.
    """

    def __init__(self, config: SystemConfig, pacram_config: PaCRAMConfig) -> None:
        super().__init__(config)
        self.pacram = pacram_config
        self.reduced_tras_ns = pacram_config.tras_factor * config.timing.tRAS
        self._mode_registers = [
            ModeRegister(config.timing.tRAS)
            for _ in range(config.channels * config.ranks)]
        self._bank_needs_full = set(range(config.total_banks))
        self._next_reset_ns = pacram_config.tfcri_ns
        self._always_partial = pacram_config.all_refreshes_partial(
            config.timing.tREFW)

    def preventive_tras_ns(self, flat_bank: int, row: int,
                           now_ns: float) -> tuple[float, bool]:
        self._maybe_reset(now_ns)
        register = self._register_of(flat_bank)
        if self._always_partial or flat_bank not in self._bank_needs_full:
            register.program(self.reduced_tras_ns)
            return self.reduced_tras_ns, False
        self._bank_needs_full.discard(flat_bank)
        register.program(self.config.timing.tRAS)
        return self.config.timing.tRAS, True

    def nrh_scale(self) -> float:
        return min(self.pacram.nrh_reduction_ratio, 1.0)

    def mode_register_writes(self) -> int:
        """Total MR transactions issued (the §8.5 interface cost)."""
        return sum(r.writes for r in self._mode_registers)

    def _register_of(self, flat_bank: int) -> ModeRegister:
        rank_index = flat_bank // self.config.banks_per_rank
        return self._mode_registers[rank_index]

    def _maybe_reset(self, now_ns: float) -> None:
        if now_ns < self._next_reset_ns:
            return
        self._bank_needs_full = set(range(self.config.total_banks))
        while self._next_reset_ns <= now_ns:
            self._next_reset_ns += self.pacram.tfcri_ns


class SelfManagingDRAMPaCRAM(RefreshLatencyPolicy):
    """PaCRAM inside a Self-Managing DRAM chip (§8.5).

    The chip holds the FR vector itself and needs *no* controller or
    interface support: full per-row granularity, zero MR traffic.  From the
    simulator's perspective it behaves like the controller-side PaCRAM but
    reports zero controller-side area.
    """

    def __init__(self, config: SystemConfig, pacram_config: PaCRAMConfig) -> None:
        super().__init__(config)
        self.pacram = pacram_config
        self.reduced_tras_ns = pacram_config.tras_factor * config.timing.tRAS
        self.fr = FRBitVector(config.total_banks, config.rows_per_bank)
        self._next_reset_ns = pacram_config.tfcri_ns
        self._always_partial = pacram_config.all_refreshes_partial(
            config.timing.tREFW)

    def preventive_tras_ns(self, flat_bank: int, row: int,
                           now_ns: float) -> tuple[float, bool]:
        self._maybe_reset(now_ns)
        if self._always_partial:
            return self.reduced_tras_ns, False
        # The chip always knows the victim row, even for RFM-internal
        # refreshes; model unknown-row requests (-1) against row 0's slot.
        tracked_row = row if row >= 0 else 0
        if self.fr.needs_full_restoration(flat_bank, tracked_row):
            self.fr.mark_fully_restored(flat_bank, tracked_row)
            return self.config.timing.tRAS, True
        return self.reduced_tras_ns, False

    def nrh_scale(self) -> float:
        return min(self.pacram.nrh_reduction_ratio, 1.0)

    @staticmethod
    def controller_area_mm2() -> float:
        """No controller-side state at all (the §8.5 selling point)."""
        return 0.0

    def _maybe_reset(self, now_ns: float) -> None:
        if now_ns < self._next_reset_ns:
            return
        self.fr.reset_all()
        while self._next_reset_ns <= now_ns:
            self._next_reset_ns += self.pacram.tfcri_ns
