"""SPD-embedded PaCRAM configuration (§10).

One of the paper's three profiling-deployment paths: the DRAM vendor
profiles modules at manufacturing time and embeds the PaCRAM parameters in
the module's Serial Presence Detect (SPD) EEPROM; at boot the memory
controller reads them back and configures PaCRAM with no online profiling.

This module defines that SPD record: a compact, checksummed binary blob
holding the per-latency operating points (reduced ``N_RH``, ``N_PCR``) for
one module, with encode/decode round-tripping.  The layout follows the SPD
convention of fixed-width little-endian fields plus a CRC-16 over the
payload (JESD 21-C Annex style).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.config import PaCRAMConfig, full_charge_restoration_interval_ns
from repro.dram.catalog import PACRAM_TRAS_FACTORS, module_spec
from repro.dram.timing import ddr4_timing
from repro.errors import ConfigError

_MAGIC = b"PaCR"
_VERSION = 1
_HEADER = struct.Struct("<4sBB10s")  # magic, version, entries, module id
_ENTRY = struct.Struct("<HII")  # tras factor (x1000), nrh, npcr


def crc16(payload: bytes) -> int:
    """CRC-16/XMODEM as used by SPD blocks."""
    crc = 0
    for byte in payload:
        crc ^= byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ 0x1021) if crc & 0x8000 else (crc << 1)
            crc &= 0xFFFF
    return crc


@dataclass(frozen=True)
class SpdEntry:
    """One (latency, N_RH, N_PCR) operating point stored in SPD."""

    tras_factor: float
    nrh: int
    npcr: int

    def __post_init__(self) -> None:
        if not 0.0 < self.tras_factor <= 1.0:
            raise ConfigError("tras factor out of range")
        if self.nrh <= 0 or self.npcr <= 0:
            raise ConfigError("N_RH and N_PCR must be positive")


@dataclass(frozen=True)
class SpdRecord:
    """The full PaCRAM SPD record for one module."""

    module_id: str
    entries: tuple[SpdEntry, ...]

    def __post_init__(self) -> None:
        if not self.module_id or len(self.module_id) > 10:
            raise ConfigError("module id must be 1..10 characters")
        if not self.entries:
            raise ConfigError("record needs at least one operating point")

    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        """Serialize to the checksummed SPD blob."""
        payload = _HEADER.pack(_MAGIC, _VERSION, len(self.entries),
                               self.module_id.encode("ascii").ljust(10, b"\0"))
        for entry in self.entries:
            payload += _ENTRY.pack(round(entry.tras_factor * 1000),
                                   entry.nrh, entry.npcr)
        return payload + struct.pack("<H", crc16(payload))

    @classmethod
    def decode(cls, blob: bytes) -> "SpdRecord":
        """Parse and verify an SPD blob."""
        if len(blob) < _HEADER.size + 2:
            raise ConfigError("SPD blob truncated")
        payload, checksum = blob[:-2], struct.unpack("<H", blob[-2:])[0]
        if crc16(payload) != checksum:
            raise ConfigError("SPD checksum mismatch (corrupted EEPROM?)")
        magic, version, count, raw_id = _HEADER.unpack_from(payload)
        if magic != _MAGIC:
            raise ConfigError("not a PaCRAM SPD record")
        if version != _VERSION:
            raise ConfigError(f"unsupported SPD record version {version}")
        module_id = raw_id.rstrip(b"\0").decode("ascii")
        entries = []
        offset = _HEADER.size
        for _ in range(count):
            factor_milli, nrh, npcr = _ENTRY.unpack_from(payload, offset)
            offset += _ENTRY.size
            entries.append(SpdEntry(factor_milli / 1000.0, nrh, npcr))
        return cls(module_id=module_id, entries=tuple(entries))

    # ------------------------------------------------------------------
    @classmethod
    def from_catalog(cls, module_id: str) -> "SpdRecord":
        """What the vendor would burn into SPD at manufacturing time."""
        spec = module_spec(module_id)
        entries = []
        for factor in PACRAM_TRAS_FACTORS:
            params = spec.pacram[factor]
            if params is not None:
                entries.append(SpdEntry(factor, params.nrh, params.npcr))
        if not entries:
            raise ConfigError(
                f"module {module_id} has no PaCRAM-applicable latency")
        return cls(module_id=spec.module_id, entries=tuple(entries))

    def to_pacram_config(self, tras_factor: float) -> PaCRAMConfig:
        """What the memory controller builds at boot from the SPD data."""
        spec = module_spec(self.module_id)
        nominal = spec.nominal_nrh
        if nominal is None:
            raise ConfigError(f"module {self.module_id} has no N_RH baseline")
        for entry in self.entries:
            if abs(entry.tras_factor - tras_factor) < 1e-9:
                timing = ddr4_timing()
                tfcri = full_charge_restoration_interval_ns(
                    entry.nrh, tras_factor * timing.tRAS, entry.npcr, timing)
                return PaCRAMConfig(
                    module_id=self.module_id, tras_factor=tras_factor,
                    nrh_reduction_ratio=entry.nrh / nominal,
                    nrh_reduced=entry.nrh, npcr=entry.npcr, tfcri_ns=tfcri)
        raise ConfigError(
            f"SPD record has no operating point at {tras_factor} x tRAS")
