"""Online profiling scheduler (§10).

The third deployment path: the running system profiles its own DRAM in the
background.  §10 shows profiling can proceed in 80-second batches that
block only 1270 rows (9.9 MiB) at a time; this module schedules those
batches across a bank — migrating the blocked rows' data aside, running the
batch, and restoring — and tracks progress, so a system can spread the
68.8-minute bank characterization across idle periods.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.profiling import CONCURRENT_ROWS, ProfilingCost, profiling_cost
from repro.errors import ConfigError


@dataclass(frozen=True)
class ProfilingBatch:
    """One 80-second profiling batch over a contiguous row range."""

    index: int
    first_row: int
    row_count: int
    duration_s: float

    @property
    def blocked_bytes(self) -> int:
        return self.row_count * 8192


@dataclass
class OnlineProfiler:
    """Schedules a bank's profiling campaign in blockable batches.

    Usage: call :meth:`next_batch` whenever the system has an idle window of
    at least one batch duration, run it, then :meth:`complete_batch`.  The
    profiler never blocks more than one batch's rows at a time.
    """

    rows_per_bank: int = 65_536
    rows_per_batch: int = CONCURRENT_ROWS
    cost: ProfilingCost = field(default_factory=profiling_cost)
    _next_row: int = 0
    _completed_batches: int = 0
    _in_flight: ProfilingBatch | None = None

    def __post_init__(self) -> None:
        if self.rows_per_bank <= 0 or self.rows_per_batch <= 0:
            raise ConfigError("row counts must be positive")

    # ------------------------------------------------------------------
    @property
    def total_batches(self) -> int:
        full, rem = divmod(self.rows_per_bank, self.rows_per_batch)
        return full + (1 if rem else 0)

    @property
    def progress(self) -> float:
        """Fraction of the bank profiled so far."""
        return self._completed_batches / self.total_batches

    @property
    def done(self) -> bool:
        return self._completed_batches >= self.total_batches

    def remaining_minutes(self) -> float:
        remaining = self.total_batches - self._completed_batches
        return remaining * self.cost.batch_seconds / 60.0

    # ------------------------------------------------------------------
    def next_batch(self) -> ProfilingBatch:
        """Claim the next batch (its rows must be migrated aside first)."""
        if self._in_flight is not None:
            raise ConfigError("a batch is already in flight")
        if self.done:
            raise ConfigError("bank fully profiled")
        rows = min(self.rows_per_batch, self.rows_per_bank - self._next_row)
        batch = ProfilingBatch(
            index=self._completed_batches,
            first_row=self._next_row,
            row_count=rows,
            duration_s=self.cost.batch_seconds,
        )
        self._in_flight = batch
        return batch

    def complete_batch(self, batch: ProfilingBatch) -> None:
        """Mark a claimed batch finished (its rows are unblocked again)."""
        if self._in_flight is None or batch.index != self._in_flight.index:
            raise ConfigError("completing a batch that is not in flight")
        self._next_row += batch.row_count
        self._completed_batches += 1
        self._in_flight = None

    def abort_batch(self) -> None:
        """Drop an in-flight batch (e.g. the idle window closed early);
        it will be re-issued by the next :meth:`next_batch` call."""
        self._in_flight = None
