"""Profiling-cost model (§10).

PaCRAM needs per-module characterization data.  §10 describes an optimized
profiling methodology: because every test ends with a ``tREFW`` (64 ms)
idle wait, many rows' tests overlap — 1270 rows are tested concurrently —
and quantifies its cost: 80 s per 1270-row batch, 127 KB/s of profiling
throughput, 68.8 minutes per 64K-row bank, blocking only 9.9 MB at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import MS

#: Rows whose tREFW waits are overlapped in one profiling batch.
CONCURRENT_ROWS = 1270
#: Bytes per DRAM row.
ROW_BYTES = 8192


@dataclass(frozen=True)
class ProfilingCost:
    """Cost summary of profiling one DRAM bank."""

    batch_seconds: float
    throughput_bytes_per_s: float
    bank_minutes: float
    blocked_bytes: int


def profiling_cost(*, tras_values: int = 5, npcr_values: int = 10,
                   hammer_counts: int = 5, iterations: int = 5,
                   rows_per_bank: int = 65_536,
                   trefw_ns: float = 64 * MS,
                   concurrent_rows: int = CONCURRENT_ROWS) -> ProfilingCost:
    """Compute §10's profiling cost for a given test-matrix size.

    With the defaults this reproduces the paper's numbers: an 80 s batch,
    127 KB/s throughput, and 68.8 minutes per bank.
    """
    for name, value in (("tras_values", tras_values),
                        ("npcr_values", npcr_values),
                        ("hammer_counts", hammer_counts),
                        ("iterations", iterations),
                        ("rows_per_bank", rows_per_bank),
                        ("concurrent_rows", concurrent_rows)):
        if value <= 0:
            raise ConfigError(f"{name} must be positive")
    tests_per_row = tras_values * npcr_values * hammer_counts * iterations
    batch_seconds = tests_per_row * trefw_ns / 1e9
    throughput = concurrent_rows * ROW_BYTES / batch_seconds
    batches = rows_per_bank / concurrent_rows
    bank_minutes = batches * batch_seconds / 60.0
    return ProfilingCost(
        batch_seconds=batch_seconds,
        throughput_bytes_per_s=throughput,
        bank_minutes=bank_minutes,
        blocked_bytes=concurrent_rows * ROW_BYTES,
    )
