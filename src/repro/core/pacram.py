"""The PaCRAM refresh-latency policy (§8.2, Fig. 15).

PaCRAM plugs into the memory controller next to an existing RowHammer
mitigation mechanism.  When the mechanism schedules a preventive refresh,
PaCRAM consults the FR bit vector: rows in F-state get a full-latency
refresh (and move to P-state); rows in P-state get the reduced latency.
Every ``t_FCRI`` the vector resets, pulling all rows back to F-state, which
bounds consecutive partial restorations at ``N_PCR`` (§8.3).

For preventive refreshes whose victim rows are resolved *inside* the DRAM
chip (RFM / PRAC back-off, §8.5) the controller cannot track per-row state;
PaCRAM then applies the same F/P discipline at bank granularity, mirroring
the mode-register mechanism the paper describes.
"""

from __future__ import annotations

from repro.core.config import PaCRAMConfig
from repro.core.fr_bitvector import FRBitVector
from repro.errors import ConfigError
from repro.sim.config import SystemConfig
from repro.sim.controller import RefreshLatencyPolicy


class PaCRAM(RefreshLatencyPolicy):
    """Partial Charge Restoration for Aggressive Mitigation."""

    def __init__(self, config: SystemConfig, pacram_config: PaCRAMConfig) -> None:
        super().__init__(config)
        self.pacram = pacram_config
        self.reduced_tras_ns = pacram_config.tras_factor * config.timing.tRAS
        if self.reduced_tras_ns <= 0:
            raise ConfigError("reduced tRAS must be positive")
        self.fr = FRBitVector(config.total_banks, config.rows_per_bank)
        self._next_reset_ns = pacram_config.tfcri_ns
        #: Banks that still owe a full-latency in-DRAM refresh this interval.
        self._bank_needs_full = set(range(config.total_banks))
        #: Footnote 6: t_FCRI beyond the refresh window means periodic
        #: refresh restores rows fully before N_PCR can accumulate.
        self._always_partial = pacram_config.all_refreshes_partial(
            config.timing.tREFW)
        self.full_refreshes = 0
        self.partial_refreshes = 0

    # ------------------------------------------------------------------
    # RefreshLatencyPolicy interface
    # ------------------------------------------------------------------
    def preventive_tras_ns(self, flat_bank: int, row: int,
                           now_ns: float) -> tuple[float, bool]:
        self._maybe_reset(now_ns)
        if self._always_partial:
            self.partial_refreshes += 1
            return self.reduced_tras_ns, False
        if row < 0:
            return self._bank_granular(flat_bank)
        if self.fr.needs_full_restoration(flat_bank, row):
            self.fr.mark_fully_restored(flat_bank, row)
            self.full_refreshes += 1
            return self.config.timing.tRAS, True
        self.partial_refreshes += 1
        return self.reduced_tras_ns, False

    def nrh_scale(self) -> float:
        """Security adjustment: mitigations run at a reduced N_RH (§8.2)."""
        return min(self.pacram.nrh_reduction_ratio, 1.0)

    def partial_restoration_limit(self) -> int | None:
        """PaCRAM's N_PCR bound on consecutive partial restorations (§8.3)."""
        return self.pacram.npcr

    # ------------------------------------------------------------------
    def _bank_granular(self, flat_bank: int) -> tuple[float, bool]:
        """F/P discipline for in-DRAM-resolved victims (RFM/PRAC, §8.5)."""
        if flat_bank in self._bank_needs_full:
            self._bank_needs_full.discard(flat_bank)
            self.full_refreshes += 1
            return self.config.timing.tRAS, True
        self.partial_refreshes += 1
        return self.reduced_tras_ns, False

    def _maybe_reset(self, now_ns: float) -> None:
        if now_ns < self._next_reset_ns:
            return
        self.fr.reset_all()
        self._bank_needs_full = set(range(self.config.total_banks))
        while self._next_reset_ns <= now_ns:
            self._next_reset_ns += self.pacram.tfcri_ns
