"""Security validation of PaCRAM-adjusted mitigations (§8.2).

The paper's security argument: a mitigation integrated with PaCRAM is
exactly as secure as the same mitigation configured for the *reduced*
``N_RH``, because PaCRAM (i) scales the configured threshold by the
measured reduction ratio and (ii) bounds consecutive partial restorations
via ``t_FCRI``.

This module closes the loop between the two halves of the library: it runs
a worst-case attacker — activating aggressor rows back-to-back at the
maximum rate the command timing allows — through a mitigation mechanism,
applies every preventive refresh the mechanism triggers to the *device
model's* victim row at the latency PaCRAM selects, and checks whether the
victim ever accumulates enough disturbance to flip.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PaCRAMConfig
from repro.dram.disturbance import DataPattern
from repro.dram.module import DRAMModule
from repro.errors import ConfigError
from repro.mitigations.base import (
    MetadataAccess,
    MitigationMechanism,
    PreventiveRefresh,
    RfmCommand,
)


@dataclass(frozen=True)
class AttackOutcome:
    """Result of one worst-case attack simulation."""

    activations_per_aggressor: int
    preventive_refreshes: int
    victim_bitflips: int
    max_unrefreshed_run: int  #: longest victim exposure, in aggressor acts

    @property
    def defended(self) -> bool:
        return self.victim_bitflips == 0


def worst_case_attack(module: DRAMModule, mitigation: MitigationMechanism,
                      *, victim: int = 1000, bank: int = 0,
                      duration_acts: int = 200_000,
                      pacram: PaCRAMConfig | None = None,
                      refresh_chunk: int = 64) -> AttackOutcome:
    """Double-sided hammering at maximum rate against a defended module.

    The attacker alternates activations of the victim's two physical
    neighbors; every activation is reported to ``mitigation``; triggered
    preventive refreshes restore the victim on the device model — at the
    reduced latency when ``pacram`` is given (with the first refresh of each
    ``t_FCRI`` interval at full latency, as the FR vector dictates).

    The mechanism must be configured for the PaCRAM-scaled threshold by the
    caller; this function validates the *outcome*: zero victim bitflips.
    """
    if duration_acts <= 0:
        raise ConfigError("attack duration must be positive")
    mapping = module.mapping
    aggressors = mapping.neighbors(victim, 1)
    if len(aggressors) != 2:
        raise ConfigError(f"victim {victim} lacks two neighbors")
    pattern = module.row_population(bank, victim).worst_case_pattern()
    module.write_row(bank, victim, pattern)
    for row in aggressors:
        module.write_row(bank, row, pattern)

    timing = module.timing
    reduced_tras = (pacram.tras_factor * timing.tRAS) if pacram else None
    needs_full = True  # FR vector: first preventive refresh is full
    acts_since_interval = 0.0
    interval_budget = pacram.tfcri_ns if pacram else float("inf")

    refreshes = 0
    unrefreshed = 0
    max_unrefreshed = 0
    done = 0
    while done < duration_acts:
        # The device accumulates disturbance in chunks for speed; the
        # mechanism observes every individual activation.
        chunk = min(refresh_chunk, duration_acts - done)
        module.hammer(bank, aggressors, chunk)
        done += chunk
        unrefreshed += chunk
        max_unrefreshed = max(max_unrefreshed, unrefreshed)
        triggers = 0
        for _ in range(chunk):
            for row in aggressors:
                for action in mitigation.on_activation(
                        bank, row, module.clock_ns):
                    if isinstance(action, (PreventiveRefresh, RfmCommand)):
                        triggers += 1
                    elif isinstance(action, MetadataAccess):
                        continue
        for _ in range(triggers):
            if pacram is not None:
                acts_since_interval += chunk * timing.tRC * 2
                if acts_since_interval >= interval_budget:
                    needs_full = True
                    acts_since_interval = 0.0
                tras = timing.tRAS if needs_full else reduced_tras
                needs_full = False
            else:
                tras = timing.tRAS
            module.activate(bank, victim, tras_ns=tras)
            refreshes += 1
            unrefreshed = 0
    population = module.row_population(bank, victim)
    state = module.row_state(bank, victim)
    bitflips = population.hammer_flips(
        state.dose, factor=state.restore_factor,
        n_pr=max(1, state.consecutive_partial),
        temperature_c=module.temperature_c, pattern=pattern)
    return AttackOutcome(
        activations_per_aggressor=duration_acts,
        preventive_refreshes=refreshes,
        victim_bitflips=bitflips,
        max_unrefreshed_run=max_unrefreshed)


def secure_configuration(module_id: str, configured_nrh: int,
                         pacram: PaCRAMConfig) -> int:
    """The threshold a mitigation must be configured with under PaCRAM.

    This is the §8.2 adjustment: ``N_RH' = N_RH x reduction_ratio``, so the
    mechanism triggers preventive refreshes before a partially-restored
    victim (whose threshold dropped by the same ratio) can flip.
    """
    if pacram.module_id != module_id:
        raise ConfigError(
            f"PaCRAM config is for {pacram.module_id}, not {module_id}")
    return pacram.scaled_nrh(configured_nrh)
