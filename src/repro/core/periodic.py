"""Appendix B: extending PaCRAM to periodic refreshes.

Periodic refresh restores every row once per refresh window, so PaCRAM can
use reduced charge restoration for ``N_PCR`` consecutive windows and then
one nominal-latency window to fully restore all cells.  A single counter of
refresh windows suffices (Appendix B's implementation).
"""

from __future__ import annotations

from repro.core.config import PaCRAMConfig
from repro.errors import ConfigError
from repro.sim.config import SystemConfig
from repro.sim.controller import RefreshLatencyPolicy


class PeriodicPaCRAM(RefreshLatencyPolicy):
    """Reduced-latency periodic refreshes with a window counter.

    ``latency_factor_rfc`` scales the periodic refresh latency (tRFC) — the
    knob swept in Fig. 19.  Every ``npcr`` reduced windows, one window runs
    at nominal latency.
    """

    def __init__(self, config: SystemConfig, *,
                 latency_factor_rfc: float,
                 npcr: int = 10,
                 pacram_config: PaCRAMConfig | None = None) -> None:
        super().__init__(config)
        if not 0.0 < latency_factor_rfc <= 1.0:
            raise ConfigError("latency_factor_rfc must be in (0, 1]")
        if npcr < 1:
            raise ConfigError("npcr must be >= 1")
        self.latency_factor_rfc = latency_factor_rfc
        self.npcr = npcr
        self.pacram = pacram_config
        self._windows_reduced = 0
        self._refreshes_seen = 0
        self._refreshes_per_window = round(config.timing.tREFW
                                           / config.timing.tREFI)

    def periodic_refresh_scale(self) -> float:
        """Latency scale for the next periodic refresh command."""
        self._refreshes_seen += 1
        if self._refreshes_seen >= self._refreshes_per_window:
            self._refreshes_seen = 0
            self._windows_reduced += 1
            if self._windows_reduced > self.npcr:
                self._windows_reduced = 0
        if self._windows_reduced >= self.npcr:
            return 1.0  # nominal window: full charge restoration
        return self.latency_factor_rfc

    def preventive_tras_ns(self, flat_bank: int, row: int,
                           now_ns: float) -> tuple[float, bool]:
        """Preventive refreshes stay nominal in the Appendix-B study (it
        evaluates a configuration with no RowHammer mitigation enabled)."""
        return self.config.timing.tRAS, True
