"""Hardware-cost model for PaCRAM's metadata (§8.4, CACTI-calibrated).

PaCRAM stores one bit per DRAM row (the FR vector) in memory-controller
SRAM.  The paper reports, via CACTI: 0.0069 mm^2 and 8 KB per 64K-row bank,
0.27 ns access latency, and 0.09 % of a high-end Intel Xeon processor for a
dual-rank, 16-banks-per-rank system.
"""

from __future__ import annotations

from repro.errors import ConfigError

#: Reference die area of the high-end Intel Xeon the paper compares against.
XEON_DIE_MM2 = 246.0
#: Memory-controller share of that die (the paper cites 1.35 % of the MC).
MEMORY_CONTROLLER_MM2 = 16.4
#: CACTI-derived SRAM area for one bank's FR slice (64K rows -> 8 KB).
_AREA_PER_64K_ROWS_MM2 = 0.0069
#: CACTI-derived access latency of the FR SRAM.
_FR_ACCESS_LATENCY_NS = 0.27
#: DRAM row-activation latency the access must hide under (tRCD-ish).
ROW_ACTIVATION_LATENCY_NS = 14.0


def fr_storage_bytes(rows_per_bank: int) -> int:
    """FR bits for one bank, in bytes (one bit per row)."""
    if rows_per_bank <= 0:
        raise ConfigError("rows_per_bank must be positive")
    return (rows_per_bank + 7) // 8


def fr_area_mm2(banks: int, rows_per_bank: int = 65_536) -> float:
    """FR-vector SRAM area for a system with ``banks`` banks."""
    if banks <= 0:
        raise ConfigError("banks must be positive")
    return banks * _AREA_PER_64K_ROWS_MM2 * rows_per_bank / 65_536


def fr_access_latency_ns() -> float:
    """FR SRAM access latency; hidden under the row activation (§8.4)."""
    return _FR_ACCESS_LATENCY_NS


def fr_area_fraction_of_xeon(banks: int, rows_per_bank: int = 65_536) -> float:
    """PaCRAM area as a fraction of the reference Xeon die (~0.09 %)."""
    return fr_area_mm2(banks, rows_per_bank) / XEON_DIE_MM2


def fr_area_fraction_of_controller(banks: int,
                                   rows_per_bank: int = 65_536) -> float:
    """PaCRAM area as a fraction of the memory-controller area (~1.35 %)."""
    return fr_area_mm2(banks, rows_per_bank) / MEMORY_CONTROLLER_MM2


def access_latency_hidden() -> bool:
    """The 0.27 ns lookup hides under the ~14 ns row activation (§8.4)."""
    return fr_access_latency_ns() < ROW_ACTIVATION_LATENCY_NS
