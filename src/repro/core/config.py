"""PaCRAM configuration from characterization data (§8.3, §9.1).

A :class:`PaCRAMConfig` binds one DRAM module to one reduced
charge-restoration latency: the latency factor, the measured ``N_RH``
reduction ratio at that latency (used to scale the mitigation's threshold),
the maximum number of consecutive partial restorations ``N_PCR``, and the
derived full-charge-restoration interval ``t_FCRI``.

Configs can be built two ways:

* :meth:`PaCRAMConfig.from_catalog` — straight from the paper's Table 4
  (how the paper configures PaCRAM-H / -M / -S);
* :meth:`PaCRAMConfig.from_characterization` — from a characterization run
  produced by this library's own Algorithm 1 pipeline (the §10 profiling
  flow).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.characterization.results import ModuleCharacterization
from repro.dram.catalog import module_spec
from repro.dram.timing import TimingParams, ddr4_timing
from repro.errors import CharacterizationError, ConfigError


def full_charge_restoration_interval_ns(nrh: int, tras_red_ns: float,
                                        npcr: int,
                                        timing: TimingParams | None = None) -> float:
    """t_FCRI = N_PCR x (N_RH x tRC + tRAS(Red) + tRP)  (§8.3).

    The smallest time window in which N_PCR preventive refreshes can occur
    under worst-case hammering (one preventive refresh per N_RH activations,
    each activation taking tRC).
    """
    if nrh <= 0 or npcr <= 0:
        raise ConfigError("N_RH and N_PCR must be positive")
    if tras_red_ns <= 0:
        raise ConfigError("tRAS(Red) must be positive")
    timing = timing or ddr4_timing()
    per_refresh_interval = nrh * timing.tRC + tras_red_ns + timing.tRP
    return npcr * per_refresh_interval


@dataclass(frozen=True)
class PaCRAMConfig:
    """One (module, reduced latency) operating point for PaCRAM."""

    module_id: str
    tras_factor: float  #: reduced latency as a fraction of nominal tRAS
    nrh_reduction_ratio: float  #: N_RH(reduced, N_PCR) / N_RH(nominal)
    nrh_reduced: int  #: lowest N_RH under this operating point
    npcr: int  #: max consecutive partial restorations
    tfcri_ns: float  #: full-charge-restoration interval

    def __post_init__(self) -> None:
        if not 0.0 < self.tras_factor <= 1.0:
            raise ConfigError("tras_factor must be in (0, 1]")
        if not 0.0 < self.nrh_reduction_ratio <= 1.5:
            raise ConfigError("nrh_reduction_ratio out of plausible range")
        if self.npcr < 1:
            raise ConfigError("N_PCR must be >= 1")
        if self.tfcri_ns <= 0:
            raise ConfigError("t_FCRI must be positive")

    def scaled_nrh(self, configured_nrh: int) -> int:
        """The mitigation's N_RH after PaCRAM's security adjustment (§8.2).

        E.g. module H5 at 0.27 tRAS loses 8 % of N_RH, so a mitigation
        configured for 1024 runs at 942.
        """
        if configured_nrh <= 0:
            raise ConfigError("configured N_RH must be positive")
        return max(1, int(configured_nrh * min(self.nrh_reduction_ratio, 1.0)))

    def all_refreshes_partial(self, trefw_ns: float) -> bool:
        """Footnote 6: if t_FCRI exceeds the refresh window, periodic refresh
        fully restores every row before N_PCR partial restorations can
        accumulate, so *every* preventive refresh may be partial."""
        return self.tfcri_ns > trefw_ns

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_catalog(cls, module_id: str, tras_factor: float,
                     timing: TimingParams | None = None) -> "PaCRAMConfig":
        """Build from the paper's Table 4 for one of the 30 tested modules.

        Raises :class:`ConfigError` for N/A cells (PaCRAM not applicable at
        that latency for that module).
        """
        spec = module_spec(module_id)
        nominal = spec.nominal_nrh
        if nominal is None:
            raise ConfigError(
                f"module {module_id} shows no bitflips; PaCRAM needs N_RH data")
        try:
            params = spec.pacram[tras_factor]
        except KeyError:
            raise ConfigError(
                f"{tras_factor} is not a tested reduced latency") from None
        if params is None:
            raise ConfigError(
                f"PaCRAM is not applicable to {module_id} at "
                f"{tras_factor} x tRAS (Table 4 N/A cell)")
        timing = timing or ddr4_timing()
        tfcri = full_charge_restoration_interval_ns(
            params.nrh, tras_factor * timing.tRAS, params.npcr, timing)
        return cls(
            module_id=module_id, tras_factor=tras_factor,
            nrh_reduction_ratio=params.nrh / nominal,
            nrh_reduced=params.nrh, npcr=params.npcr, tfcri_ns=tfcri)

    @classmethod
    def from_characterization(cls, characterization: ModuleCharacterization,
                              tras_factor: float, *,
                              npcr: int,
                              timing: TimingParams | None = None,
                              ) -> "PaCRAMConfig":
        """Build from a characterization run of this library's pipeline."""
        try:
            nominal = characterization.lowest_nrh(1.00, n_pr=1)
        except CharacterizationError:
            nominal = None
        if not nominal:
            raise ConfigError("characterization lacks a nominal N_RH baseline")
        # Table-4 semantics: prefer the measurement taken after N_PCR
        # consecutive partial restorations; fall back to single-restoration.
        try:
            reduced = characterization.lowest_nrh(tras_factor, n_pr=npcr)
        except CharacterizationError:
            reduced = characterization.lowest_nrh(tras_factor, n_pr=1)
        if not reduced:
            raise ConfigError(
                f"module is not safely operable at {tras_factor} x tRAS "
                f"(retention failures or no data)")
        timing = timing or ddr4_timing()
        tfcri = full_charge_restoration_interval_ns(
            reduced, tras_factor * timing.tRAS, npcr, timing)
        return cls(
            module_id=characterization.module_id, tras_factor=tras_factor,
            nrh_reduction_ratio=reduced / nominal,
            nrh_reduced=reduced, npcr=npcr, tfcri_ns=tfcri)
