"""Deterministic fault-injection scenarios for the validation harness.

Each :class:`FaultScenario` injects one concrete fault into a real
simulation or persistence path — a controller that drops or delays
preventive refreshes, a mitigation that skips victims, flipped bits in
stored results, corrupted SPD/config records, silently edited vendor
calibration — and asserts that the corresponding defense layer *detects*
it (:class:`~repro.validation.checker.ProtocolChecker` rule, digest check,
checksum, or schema error), or that PaCRAM's published margins *provably
absorb* it.  All scenarios derive their randomness from the campaign seed
via :func:`repro.rng.derive_seed`, so a matrix run is bit-reproducible.

Faults are injected through public seams only: instance-attribute method
patching on one :class:`~repro.sim.controller.MemoryController` (the
simulator equivalent of a fault-injection probe on one device under test),
mechanism/policy subclassing, and byte-level edits of persisted artifacts.
Nothing global is mutated except the vendor-profile drift scenario, which
restores the profile table in a ``finally`` block.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.sweeprunner import SweepRow, load_row, row_digest
from repro.core.config import PaCRAMConfig
from repro.core.pacram import PaCRAM
from repro.core.spd import SpdRecord
from repro.dram import vendor
from repro.dram.catalog import module_spec
from repro.dram.charge import ChargeModel
from repro.errors import CharacterizationError, ConfigError, SimulationError
from repro.mitigations import make_mitigation
from repro.mitigations.base import PreventiveRefresh
from repro.mitigations.graphene import Graphene
from repro.rng import derive_seed
from repro.sim.config import SystemConfig
from repro.sim.controller import MemoryController, RefreshLatencyPolicy
from repro.sim.system import MemorySystem
from repro.validation.checker import ProtocolChecker
from repro.workloads.attack import double_sided_trace

#: A fault the harness must flag (checker violation, digest/checksum/schema
#: error) — anything else is a coverage hole.
DETECTED = "detected"
#: A fault the system is *designed* to tolerate (inside PaCRAM's N_PCR /
#: t_FCRI margins); the scenario proves the margin holds.
ABSORBED = "absorbed"
#: The fault went unnoticed — the matrix fails.
MISSED = "missed"


@dataclass(frozen=True)
class FaultResult:
    """Outcome of one injected fault."""

    fault: str
    expected: str  #: DETECTED or ABSORBED
    status: str  #: DETECTED, ABSORBED, or MISSED
    evidence: str

    @property
    def ok(self) -> bool:
        return self.status == self.expected

    def to_json(self) -> dict:
        return {"fault": self.fault, "expected": self.expected,
                "status": self.status, "ok": self.ok,
                "evidence": self.evidence}


class FaultScenario:
    """One injectable fault plus the assertion about its coverage."""

    name: str = "abstract"
    expected: str = DETECTED
    description: str = ""

    def run(self, workdir: Path, seed: int) -> FaultResult:
        raise NotImplementedError

    def _result(self, status: str, evidence: str) -> FaultResult:
        return FaultResult(self.name, self.expected, status, evidence)

    def _checked(self, condition: bool, evidence: str) -> FaultResult:
        """DETECTED iff ``condition``; the common case."""
        return self._result(DETECTED if condition else MISSED, evidence)


def _attack_checker(*, mitigation, policy=None, hammers=1_500,
                    patch=None) -> ProtocolChecker:
    """Run a double-sided hammer attack under a tolerant checker.

    ``patch`` receives the live :class:`MemoryController` before the run —
    the fault-injection probe point.
    """
    config = SystemConfig(num_cores=1)
    trace = double_sided_trace(config, hammers=hammers)
    limit = policy.partial_restoration_limit() if policy is not None else None
    checker = ProtocolChecker(config, mode="tolerant",
                              partial_limit=limit, mitigation=mitigation)
    system = MemorySystem(config, [trace], mitigation=mitigation,
                          policy=policy, observer=checker)
    if patch is not None:
        patch(system.controller)
    system.run()
    return checker


def _rule_evidence(checker: ProtocolChecker, rule: str) -> str:
    count = checker.by_rule().get(rule, 0)
    return f"{count}x {rule} among {checker.violation_count} violation(s)"


# ----------------------------------------------------------------------
# Mitigation-path faults (caught by the protocol checker)
# ----------------------------------------------------------------------
class DroppedPreventiveRefresh(FaultScenario):
    name = "dropped-preventive-refresh"
    description = ("controller silently discards every preventive refresh "
                   "the mitigation requests")

    def run(self, workdir: Path, seed: int) -> FaultResult:
        def patch(controller: MemoryController) -> None:
            controller._do_preventive_refresh = lambda action: None

        checker = _attack_checker(
            mitigation=make_mitigation("Graphene", nrh=128), patch=patch)
        return self._checked(
            checker.by_rule().get("mitigation.dropped-refresh", 0) > 0,
            _rule_evidence(checker, "mitigation.dropped-refresh"))


class LatePreventiveRefresh(FaultScenario):
    name = "late-preventive-refresh"
    description = ("preventive refreshes execute 5 us after they were "
                   "requested (a stalled refresh queue)")

    def run(self, workdir: Path, seed: int) -> FaultResult:
        def patch(controller: MemoryController) -> None:
            original = controller._do_preventive_refresh

            def late(action: PreventiveRefresh) -> None:
                bank = controller.banks[action.flat_bank]
                bank.block_until(
                    max(bank.ready_ns, controller.now_ns) + 5_000.0)
                original(action)

            controller._do_preventive_refresh = late

        checker = _attack_checker(
            mitigation=make_mitigation("Graphene", nrh=128), patch=patch)
        return self._checked(
            checker.by_rule().get("mitigation.late-refresh", 0) > 0,
            _rule_evidence(checker, "mitigation.late-refresh"))


class _VictimSkippingGraphene(Graphene):
    """Graphene whose refreshes only ever cover the +2 neighbor."""

    def on_activation(self, flat_bank: int, row: int, now_ns: float):
        actions = super().on_activation(flat_bank, row, now_ns)
        return [PreventiveRefresh(a.flat_bank, a.aggressor_row,
                                  victim_offsets=(2,))
                if isinstance(a, PreventiveRefresh) else a
                for a in actions]


class VictimSkippingMitigation(FaultScenario):
    name = "victim-skipping-mitigation"
    description = ("a deterministic-coverage mitigation refreshes the wrong "
                   "neighbors, leaving the +/-1 victims unprotected")

    def run(self, workdir: Path, seed: int) -> FaultResult:
        checker = _attack_checker(mitigation=_VictimSkippingGraphene(nrh=64))
        return self._checked(
            checker.by_rule().get("mitigation.unprotected-victim", 0) > 0,
            _rule_evidence(checker, "mitigation.unprotected-victim"))


class DroppedPeriodicRefresh(FaultScenario):
    name = "dropped-periodic-refresh"
    description = "every 4th all-bank REF command is silently skipped"

    def run(self, workdir: Path, seed: int) -> FaultResult:
        def patch(controller: MemoryController) -> None:
            original = controller._apply_one_refresh
            state = {"n": 0}

            def flaky(rank_index, rank, start):
                state["n"] += 1
                if state["n"] % 4 == 0:
                    return  # the REF is lost; next_refresh_ns still advances
                original(rank_index, rank, start)

            controller._apply_one_refresh = flaky

        checker = _attack_checker(
            mitigation=make_mitigation("None", nrh=1024), patch=patch)
        return self._checked(
            checker.by_rule().get("ref.cadence", 0) > 0,
            _rule_evidence(checker, "ref.cadence"))


class LatePeriodicRefresh(FaultScenario):
    name = "late-periodic-refresh"
    description = "every 8th all-bank REF arrives 0.75 tREFI late"

    def run(self, workdir: Path, seed: int) -> FaultResult:
        def patch(controller: MemoryController) -> None:
            original = controller._apply_one_refresh
            shift = 0.75 * controller.timing.tREFI
            state = {"n": 0}

            def tardy(rank_index, rank, start):
                state["n"] += 1
                original(rank_index, rank,
                         start + shift if state["n"] % 8 == 0 else start)

            controller._apply_one_refresh = tardy

        checker = _attack_checker(
            mitigation=make_mitigation("None", nrh=1024), patch=patch)
        return self._checked(
            checker.by_rule().get("ref.cadence", 0) > 0,
            _rule_evidence(checker, "ref.cadence"))


class UnexpectedPartialRestoration(FaultScenario):
    name = "unexpected-partial-restoration"
    description = ("a nominal-latency policy starts issuing partial "
                   "restorations without PaCRAM being configured")

    class _RoguePolicy(RefreshLatencyPolicy):
        def preventive_tras_ns(self, flat_bank, row, now_ns):
            return 0.5 * self.config.timing.tRAS, False

    def run(self, workdir: Path, seed: int) -> FaultResult:
        config = SystemConfig(num_cores=1)
        checker = _attack_checker(
            mitigation=make_mitigation("Graphene", nrh=128),
            policy=self._RoguePolicy(config))
        return self._checked(
            checker.by_rule().get("refresh.unexpected-partial", 0) > 0,
            _rule_evidence(checker, "refresh.unexpected-partial"))


class PartialRestorationBurst(FaultScenario):
    """The one deliberately *absorbed* fault: a hammer-driven burst of
    partial restorations stays inside PaCRAM's N_PCR / t_FCRI envelope, so
    a correct checker must stay silent (§8.3's safety argument)."""

    name = "partial-restoration-burst"
    expected = ABSORBED
    description = ("sustained double-sided hammering under PaCRAM produces "
                   "partial-restoration streaks bounded by N_PCR")

    def run(self, workdir: Path, seed: int) -> FaultResult:
        config = SystemConfig(num_cores=1)
        pacram = PaCRAMConfig(module_id="H5", tras_factor=0.45,
                              nrh_reduction_ratio=1.0, nrh_reduced=64,
                              npcr=200, tfcri_ns=50_000.0)
        policy = PaCRAM(config, pacram)
        checker = _attack_checker(
            mitigation=make_mitigation("Graphene", nrh=64), policy=policy)
        evidence = (f"max partial streak {checker.max_partial_streak} <= "
                    f"N_PCR {pacram.npcr}; "
                    f"{checker.violation_count} violation(s)")
        return self._result(
            ABSORBED if checker.violation_count == 0 else MISSED, evidence)


# ----------------------------------------------------------------------
# Persistence / calibration faults (caught by checksums and digests)
# ----------------------------------------------------------------------
class CorruptSpdRecord(FaultScenario):
    name = "corrupt-spd-record"
    description = "one flipped bit in a persisted SPD EEPROM image"

    def run(self, workdir: Path, seed: int) -> FaultResult:
        blob = bytearray(SpdRecord.from_catalog("H5").encode())
        index = derive_seed(seed, "spd-byte") % len(blob)
        blob[index] ^= 0x40
        try:
            SpdRecord.decode(bytes(blob))
        except ConfigError as error:
            return self._result(
                DETECTED, f"byte {index} flip rejected: {error}")
        return self._result(MISSED, f"byte {index} flip decoded cleanly")


class TypoedConfigKey(FaultScenario):
    name = "typoed-config-key"
    description = "an evaluation config with a misspelled knob name"

    def run(self, workdir: Path, seed: int) -> FaultResult:
        path = workdir / "eval.json"
        from repro.sim.configloader import EvaluationConfig
        EvaluationConfig().save(path)
        payload = json.loads(path.read_text())
        payload["nrh_valeus"] = payload.pop("nrh_values")
        path.write_text(json.dumps(payload))
        try:
            EvaluationConfig.load(path)
        except ConfigError as error:
            suggested = "did you mean" in str(error)
            return self._checked(
                suggested, f"rejected with suggestion: {error}")
        return self._result(MISSED, "typo'd key silently ignored")


class SweepRowBitflip(FaultScenario):
    name = "sweep-row-bitflip"
    description = ("a flipped digit inside a persisted sweep row that still "
                   "parses as valid JSON")

    def run(self, workdir: Path, seed: int) -> FaultResult:
        row = SweepRow(
            key="probe", mitigation="Graphene", nrh=64, pacram_vendor=None,
            workloads=("spec06.mcf",), mean_ipc=1.234567, energy_nj=10.0,
            preventive_busy_fraction=0.01, preventive_refresh_rows=42)
        payload = dataclasses.asdict(row)
        payload["digest"] = row_digest(payload)
        text = json.dumps(payload, indent=1)
        mutated = text.replace("1.234567", "1.237567", 1)
        if mutated == text:
            return self._result(MISSED, "mutation target not found")
        path = workdir / "probe.json"
        path.write_text(mutated)
        try:
            load_row(path)
        except SimulationError as error:
            return self._result(DETECTED, f"digest check: {error}")
        return self._result(MISSED, "bit-flipped statistic loaded cleanly")


class VendorProfileDrift(FaultScenario):
    name = "vendor-profile-drift"
    description = ("vendor calibration changes between a campaign run and "
                   "its resume")

    def run(self, workdir: Path, seed: int) -> FaultResult:
        from repro.characterization.campaign import _load_checked
        from repro.characterization.sweeps import characterize_module
        result = characterize_module(
            "H5", rows=(500,), tras_factors=(0.45,),
            seed=derive_seed(seed, "drift-campaign") % (2 ** 31))
        path = workdir / "H5.json"
        result.save(path)
        manufacturer = vendor.Manufacturer.H
        original = vendor._PROFILES[manufacturer]
        vendor._PROFILES[manufacturer] = dataclasses.replace(
            original, temperature_nrh_sensitivity=(
                original.temperature_nrh_sensitivity * 1.5))
        try:
            _load_checked(path)
        except CharacterizationError as error:
            return self._result(DETECTED, f"model digest: {error}")
        finally:
            vendor._PROFILES[manufacturer] = original
        return self._result(MISSED, "drifted profile loaded cleanly")


class ChargeAnchorCorruption(FaultScenario):
    name = "charge-anchor-corruption"
    description = ("an out-of-range restoration-margin anchor edited into "
                   "the charge model")

    def run(self, workdir: Path, seed: int) -> FaultResult:
        model = ChargeModel(module_spec("H5"))
        # Copy before poisoning: the original dict is the shared
        # module-level calibration table.
        model._margin_anchors = {**model._margin_anchors, 0.45: 1.3}
        problems = model.check_invariants()
        return self._checked(
            len(problems) > 0,
            f"{len(problems)} invariant problem(s); "
            f"first: {problems[0] if problems else 'none'}")


#: Every scenario the matrix runs, in a stable order.
ALL_FAULTS: tuple[FaultScenario, ...] = (
    DroppedPreventiveRefresh(),
    LatePreventiveRefresh(),
    VictimSkippingMitigation(),
    DroppedPeriodicRefresh(),
    LatePeriodicRefresh(),
    UnexpectedPartialRestoration(),
    PartialRestorationBurst(),
    CorruptSpdRecord(),
    TypoedConfigKey(),
    SweepRowBitflip(),
    VendorProfileDrift(),
    ChargeAnchorCorruption(),
)
