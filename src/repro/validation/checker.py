"""Runtime DDR protocol checker for the simulated memory controller.

:class:`ProtocolChecker` is a :class:`repro.sim.commands.CommandObserver`
that re-validates the controller's command stream against an *independent*
model of the DDR state machine: JEDEC timing constraints (tRCD, tRAS, tRP,
tRC, tRRD, tFAW, tCCD), ACT-to-open-row consistency, bank occupancy,
periodic-refresh cadence and the tREFW row-refresh deadline, and PaCRAM's
partial-restoration safety envelope (any partial restoration under a
nominal policy, and more than ``N_PCR`` consecutive partials under PaCRAM,
are violations — §8.3).  It also cross-checks mitigation *requests* against
the *executed* preventive-refresh stream, so a controller that silently
drops or delays a requested refresh is caught, and — for mechanisms with a
deterministic coverage guarantee (Graphene) — tracks per-victim hammer
pressure so a mitigation that skips victims is caught.

Two operating modes:

* ``strict`` — the first violation raises :class:`ProtocolViolation`;
* ``tolerant`` — violations accumulate in :attr:`violations` and can be
  written to a ``violations.jsonl`` ledger via :meth:`write_ledger`.

``off`` is represented by *not attaching* a checker (see
:func:`make_checker`): the controller's instrumentation then costs one
pointer check per command site.

The checker mirrors the controller's *lumped* service model: a preventive
refresh triggered by an activation may close the row between the ACT and
its CAS, so a CAS to the last-activated row of a refresh-closed bank is
legal.  All recorded times are simulation nanoseconds — the ledger is fully
deterministic for a given seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigError, ProtocolViolation
from repro.mitigations.base import MitigationMechanism
from repro.sim.commands import (
    ActCommand,
    CasCommand,
    Command,
    MetadataCmd,
    MitigationRequest,
    PreCommand,
    PreventiveRefreshCmd,
    RefCommand,
)
from repro.sim.config import SystemConfig

#: Tolerance for float round-off in timing comparisons (matches
#: :data:`repro.sim.bankmodel.OCCUPY_EPSILON_NS`).
EPSILON_NS = 1e-6

#: Valid values of every ``--check-protocol`` knob.
CHECK_MODES = ("off", "tolerant", "strict")


def requires_scalar_oracle(mode: str) -> bool:
    """Whether ``mode`` demands the scalar oracle kernels.

    The checker observes per-request command streams and instruction-level
    program execution, which only the scalar/stepping kernels drive; the
    decision of *which* kernel to substitute lives in
    :class:`repro.exec.ExecutionPolicy` — this is the one statement of the
    requirement itself.
    """
    return mode != "off"


@dataclass(frozen=True)
class Violation:
    """One protocol/physics violation observed during a run."""

    rule: str
    time_ns: float
    message: str

    def to_json(self) -> dict:
        return {"rule": self.rule, "time_ns": self.time_ns,
                "message": self.message}


class _BankView:
    """The checker's independent view of one bank's state."""

    __slots__ = ("open_row", "last_act_ns", "last_act_row", "last_pre_ns",
                 "busy_until_ns", "closed_by")

    def __init__(self) -> None:
        self.open_row: int | None = None
        self.last_act_ns = float("-inf")
        self.last_act_row = -1
        self.last_pre_ns = float("-inf")
        self.busy_until_ns = 0.0
        self.closed_by = "none"  # "none" | "pre" | "refresh"


class _RankView:
    """Per-rank ACT history and refresh schedule tracking."""

    __slots__ = ("last_act_ns", "recent_acts", "last_ref_ns", "ref_count",
                 "ref_ring")

    def __init__(self, refs_per_window: int) -> None:
        self.last_act_ns = float("-inf")
        self.recent_acts: list[float] = []
        self.last_ref_ns = 0.0
        self.ref_count = 0
        self.ref_ring = [float("nan")] * refs_per_window


class _ChannelView:
    __slots__ = ("last_cas_ns", "last_cas_group")

    def __init__(self) -> None:
        self.last_cas_ns = float("-inf")
        self.last_cas_group = -1


class _PendingRequest:
    """A mitigation request awaiting its executed preventive refreshes."""

    __slots__ = ("time_ns", "kind", "victims", "remaining")

    def __init__(self, time_ns: float, kind: str,
                 victims: set[int], remaining: int) -> None:
        self.time_ns = time_ns
        self.kind = kind
        self.victims = victims
        self.remaining = remaining


class ProtocolChecker:
    """Validates the controller's command stream at runtime."""

    def __init__(self, config: SystemConfig, *, mode: str = "tolerant",
                 partial_limit: int | None = None,
                 mitigation: MitigationMechanism | None = None,
                 epsilon_ns: float = EPSILON_NS,
                 max_violations: int = 10_000) -> None:
        if mode not in ("tolerant", "strict"):
            raise ConfigError(
                f"checker mode must be 'tolerant' or 'strict', got {mode!r}"
                " ('off' means: attach no checker)")
        self.mode = mode
        self.config = config
        self.timing = config.timing
        self.eps = epsilon_ns
        self.max_violations = max_violations
        #: PaCRAM's N_PCR bound; ``None`` = partials are never legal.
        self.partial_limit = partial_limit
        #: Victim hammer-pressure bound, only for mechanisms that guarantee
        #: deterministic coverage.  Two refresh windows of four aggressors
        #: each staying under Graphene's 0.25 x N_RH trigger threshold give
        #: at most 2 x N_RH activations on a victim between its resets; the
        #: +16 absorbs the trigger-granularity slop.
        self._pressure_threshold: int | None = None
        if mitigation is not None and mitigation.deterministic_coverage:
            self._pressure_threshold = 2 * mitigation.nrh + 16
        #: Grace period for a requested refresh to execute before it counts
        #: as dropped/late (one refresh interval).
        self.grace_ns = self.timing.tREFI
        self.refs_per_window = max(
            1, round(self.timing.tREFW / self.timing.tREFI))
        self.rows_per_ref = max(
            1, round(config.rows_per_bank / self.refs_per_window))
        self._banks = [_BankView() for _ in range(config.total_banks)]
        self._ranks = [_RankView(self.refs_per_window)
                       for _ in range(config.channels * config.ranks)]
        self._channels = [_ChannelView() for _ in range(config.channels)]
        #: Consecutive-partial-restoration streaks, keyed (flat_bank, row).
        self._partial_streaks: dict[tuple[int, int], int] = {}
        self.max_partial_streak = 0
        #: Victim hammer pressure since last restoration, (flat_bank, row).
        self._pressure: dict[tuple[int, int], int] = {}
        #: Outstanding mitigation requests per flat bank.
        self._pending: dict[int, list[_PendingRequest]] = {}
        self.violations: list[Violation] = []
        self.overflowed_violations = 0
        self.commands_seen = 0
        self.finalized = False

    # ------------------------------------------------------------------
    # CommandObserver interface
    # ------------------------------------------------------------------
    def on_command(self, command: Command) -> None:
        self.commands_seen += 1
        if isinstance(command, CasCommand):
            self._on_cas(command)
        elif isinstance(command, ActCommand):
            self._on_act(command)
        elif isinstance(command, PreCommand):
            self._on_pre(command)
        elif isinstance(command, PreventiveRefreshCmd):
            self._on_preventive(command)
        elif isinstance(command, RefCommand):
            self._on_ref(command)
        elif isinstance(command, MitigationRequest):
            self._on_request(command)
        elif isinstance(command, MetadataCmd):
            self._on_metadata(command)

    def finalize(self, end_ns: float) -> None:
        """End-of-run checks: any still-unmatched mitigation request means
        the controller never executed it."""
        self.finalized = True
        for bank, pending in sorted(self._pending.items()):
            for req in pending:
                self._violation(
                    "mitigation.dropped-refresh", req.time_ns,
                    f"bank {bank}: {req.kind} request at {req.time_ns:.1f} ns "
                    f"never fully executed ({req.remaining} victims missing "
                    f"at end of run, {end_ns:.1f} ns)")
            pending.clear()

    # ------------------------------------------------------------------
    # per-command rules
    # ------------------------------------------------------------------
    def _on_act(self, cmd: ActCommand) -> None:
        timing = self.timing
        bank = self._banks[cmd.flat_bank]
        t = cmd.time_ns
        eps = self.eps
        if bank.open_row is not None:
            self._violation(
                "act.bank-occupied", t,
                f"bank {cmd.flat_bank}: ACT row {cmd.row} while row "
                f"{bank.open_row} is open")
        if t < bank.busy_until_ns - eps:
            self._violation(
                "act.busy-bank", t,
                f"bank {cmd.flat_bank}: ACT at {t:.3f} ns while busy until "
                f"{bank.busy_until_ns:.3f} ns")
        if t < bank.last_pre_ns + timing.tRP - eps:
            self._violation(
                "act.trp", t,
                f"bank {cmd.flat_bank}: ACT {t - bank.last_pre_ns:.3f} ns "
                f"after PRE violates tRP={timing.tRP} ns")
        if bank.closed_by == "pre" and t < bank.last_act_ns + timing.tRC - eps:
            self._violation(
                "act.trc", t,
                f"bank {cmd.flat_bank}: ACT {t - bank.last_act_ns:.3f} ns "
                f"after previous ACT violates tRC={timing.tRC} ns")
        rank = self._ranks[cmd.rank]
        if t < rank.last_act_ns + timing.tRRD - eps:
            self._violation(
                "act.trrd", t,
                f"rank {cmd.rank}: ACT {t - rank.last_act_ns:.3f} ns after "
                f"previous same-rank ACT violates tRRD={timing.tRRD} ns")
        window_start = t - timing.tFAW + eps
        recent = [x for x in rank.recent_acts if x > window_start]
        if len(recent) >= 4:
            self._violation(
                "act.tfaw", t,
                f"rank {cmd.rank}: fifth ACT within tFAW={timing.tFAW} ns "
                f"window ending at {t:.3f} ns")
        recent.append(t)
        rank.recent_acts = recent[-8:]
        rank.last_act_ns = t
        bank.open_row = cmd.row
        bank.last_act_ns = t
        bank.last_act_row = cmd.row
        bank.closed_by = "none"
        if self._pressure_threshold is not None:
            self._bump_pressure(cmd.flat_bank, cmd.row, t)

    def _bump_pressure(self, flat_bank: int, row: int, t: float) -> None:
        threshold = self._pressure_threshold
        rows = self.config.rows_per_bank
        for offset in (-2, -1, 1, 2):
            victim = row + offset
            if not 0 <= victim < rows:
                continue
            key = (flat_bank, victim)
            count = self._pressure.get(key, 0) + 1
            if count > threshold:
                self._violation(
                    "mitigation.unprotected-victim", t,
                    f"bank {flat_bank} row {victim}: {count} aggressor "
                    f"activations without a restoration exceeds the "
                    f"deterministic-coverage bound {threshold}")
                count = 0  # reset so one starved victim cannot flood
            self._pressure[key] = count

    def _on_pre(self, cmd: PreCommand) -> None:
        bank = self._banks[cmd.flat_bank]
        t = cmd.time_ns
        if bank.open_row is None:
            self._violation(
                "pre.closed-bank", t,
                f"bank {cmd.flat_bank}: PRE with no open row")
        if t < bank.last_act_ns + self.timing.tRAS - self.eps:
            self._violation(
                "pre.tras", t,
                f"bank {cmd.flat_bank}: PRE {t - bank.last_act_ns:.3f} ns "
                f"after ACT violates tRAS={self.timing.tRAS} ns")
        bank.open_row = None
        bank.closed_by = "pre"
        bank.last_pre_ns = t

    def _on_cas(self, cmd: CasCommand) -> None:
        timing = self.timing
        bank = self._banks[cmd.flat_bank]
        t = cmd.time_ns
        eps = self.eps
        # The controller's lumped service model may close the row with a
        # preventive/periodic refresh between an ACT and its CAS; the CAS is
        # then still legal against the last-activated row.
        on_target = (bank.open_row == cmd.row
                     or (bank.closed_by == "refresh"
                         and bank.last_act_row == cmd.row))
        if not on_target:
            if bank.open_row is None:
                self._violation(
                    "cas.closed-row", t,
                    f"bank {cmd.flat_bank}: CAS row {cmd.row} on a closed "
                    "bank with no matching activation")
            else:
                self._violation(
                    "cas.wrong-row", t,
                    f"bank {cmd.flat_bank}: CAS row {cmd.row} while row "
                    f"{bank.open_row} is open")
        elif t < bank.last_act_ns + timing.tRCD - eps:
            self._violation(
                "cas.trcd", t,
                f"bank {cmd.flat_bank}: CAS {t - bank.last_act_ns:.3f} ns "
                f"after ACT violates tRCD={timing.tRCD} ns")
        channel = self._channels[cmd.channel]
        spacing = (timing.tCCD_L if cmd.bank_group == channel.last_cas_group
                   else timing.tCCD)
        if t < channel.last_cas_ns + spacing - eps:
            self._violation(
                "cas.tccd", t,
                f"channel {cmd.channel}: CAS {t - channel.last_cas_ns:.3f} "
                f"ns after previous CAS violates tCCD={spacing} ns")
        channel.last_cas_ns = t
        channel.last_cas_group = cmd.bank_group
        if t + timing.tCCD > bank.busy_until_ns:
            bank.busy_until_ns = t + timing.tCCD

    def _on_ref(self, cmd: RefCommand) -> None:
        timing = self.timing
        rank = self._ranks[cmd.rank]
        t = cmd.time_ns
        if cmd.trfc_ns <= 0:
            self._violation(
                "refresh.nonpositive-latency", t,
                f"rank {cmd.rank}: REF with tRFC={cmd.trfc_ns} ns")
        gap = t - rank.last_ref_ns
        if gap > 1.5 * timing.tREFI + self.eps:
            self._violation(
                "ref.cadence", t,
                f"rank {cmd.rank}: {gap:.1f} ns since the previous REF "
                f"(expected every tREFI={timing.tREFI} ns)")
        index = rank.ref_count % self.refs_per_window
        if rank.ref_count >= self.refs_per_window:
            previous = rank.ref_ring[index]
            deadline = timing.tREFW + 0.5 * timing.tREFI
            if t - previous > deadline:
                self._violation(
                    "ref.deadline", t,
                    f"rank {cmd.rank}: rows last refreshed at "
                    f"{previous:.1f} ns not refreshed again within "
                    f"tREFW={timing.tREFW} ns")
        rank.ref_ring[index] = t
        rank.ref_count += 1
        rank.last_ref_ns = t
        per_rank = self.config.banks_per_rank
        lo = cmd.rank * per_rank
        for flat in range(lo, lo + per_rank):
            bank = self._banks[flat]
            bank.open_row = None
            bank.closed_by = "refresh"
            # Mirrors the controller: busy_from = max(ready, start) + tRFC.
            bank.busy_until_ns = max(bank.busy_until_ns, t) + cmd.trfc_ns
        self._reset_refreshed_rows(lo, lo + per_rank, index, rank.ref_count)
        self._expire_pending(t)

    def _reset_refreshed_rows(self, bank_lo: int, bank_hi: int,
                              sweep_index: int, ref_count: int) -> None:
        """A REF restores one slice of rows per bank: clear their partial
        streaks and hammer pressure (full sweep clears everything, including
        the bank-granular ``row == -1`` streaks)."""
        full_sweep = ref_count % self.refs_per_window == 0
        row_lo = sweep_index * self.rows_per_ref
        row_hi = row_lo + self.rows_per_ref
        for tracker in (self._partial_streaks, self._pressure):
            if not tracker:
                continue
            stale = [key for key in tracker
                     if bank_lo <= key[0] < bank_hi
                     and (full_sweep or row_lo <= key[1] < row_hi)]
            for key in stale:
                del tracker[key]

    def _expire_pending(self, now_ns: float) -> None:
        """Flag mitigation requests that outlived their execution grace."""
        if not self._pending:
            return
        cutoff = now_ns - self.grace_ns
        for flat_bank, pending in self._pending.items():
            while pending and pending[0].time_ns < cutoff:
                req = pending.pop(0)
                self._violation(
                    "mitigation.dropped-refresh", req.time_ns,
                    f"bank {flat_bank}: {req.kind} request at "
                    f"{req.time_ns:.1f} ns not executed within "
                    f"{self.grace_ns:.0f} ns ({req.remaining} victims "
                    "missing)")

    def _on_request(self, cmd: MitigationRequest) -> None:
        if cmd.victim_count <= 0 and not cmd.victims:
            # Nothing to execute (e.g. PARA aiming past the edge of the
            # bank), but the controller still closes the row buffer.
            bank = self._banks[cmd.flat_bank]
            bank.open_row = None
            bank.closed_by = "refresh"
            return
        pending = self._pending.setdefault(cmd.flat_bank, [])
        pending.append(_PendingRequest(
            cmd.time_ns, cmd.kind, set(cmd.victims), cmd.victim_count))

    def _on_preventive(self, cmd: PreventiveRefreshCmd) -> None:
        timing = self.timing
        t = cmd.time_ns
        if cmd.tras_ns <= 0:
            self._violation(
                "refresh.nonpositive-latency", t,
                f"bank {cmd.flat_bank}: preventive refresh with "
                f"tRAS={cmd.tras_ns} ns")
        key = (cmd.flat_bank, cmd.row)
        if cmd.full:
            self._partial_streaks.pop(key, None)
        else:
            limit = self.partial_limit
            if limit is None:
                self._violation(
                    "refresh.unexpected-partial", t,
                    f"bank {cmd.flat_bank} row {cmd.row}: partial "
                    f"restoration ({cmd.tras_ns:.2f} ns) under a policy "
                    "that never reduces restoration latency")
            else:
                streak = self._partial_streaks.get(key, 0) + 1
                if streak > self.max_partial_streak:
                    self.max_partial_streak = streak
                if streak > limit:
                    self._violation(
                        "pacram.npcr-exceeded", t,
                        f"bank {cmd.flat_bank} row {cmd.row}: {streak} "
                        f"consecutive partial restorations exceed "
                        f"N_PCR={limit}")
                    streak = 0  # one overrun row cannot flood the ledger
                self._partial_streaks[key] = streak
        self._match_execution(cmd)
        if self._pressure_threshold is not None and cmd.row >= 0:
            self._pressure.pop(key, None)
        bank = self._banks[cmd.flat_bank]
        bank.open_row = None
        bank.closed_by = "refresh"
        end = t + cmd.tras_ns + timing.tRP
        if end > bank.busy_until_ns:
            bank.busy_until_ns = end

    def _match_execution(self, cmd: PreventiveRefreshCmd) -> None:
        pending = self._pending.get(cmd.flat_bank)
        if not pending:
            return  # unsolicited restorations are harmless
        for i, req in enumerate(pending):
            if req.kind == "rfm":
                matched = cmd.row == -1
            else:
                matched = cmd.row in req.victims
                if matched:
                    req.victims.discard(cmd.row)
            if not matched:
                continue
            req.remaining -= 1
            if req.remaining <= 0:
                latency = cmd.time_ns - req.time_ns
                if latency > self.grace_ns:
                    self._violation(
                        "mitigation.late-refresh", cmd.time_ns,
                        f"bank {cmd.flat_bank}: {req.kind} request at "
                        f"{req.time_ns:.1f} ns completed {latency:.1f} ns "
                        f"later (grace {self.grace_ns:.0f} ns)")
                del pending[i]
            return

    def _on_metadata(self, cmd: MetadataCmd) -> None:
        if cmd.duration_ns < 0:
            self._violation(
                "refresh.nonpositive-latency", cmd.time_ns,
                f"bank {cmd.flat_bank}: metadata access with negative "
                f"duration {cmd.duration_ns} ns")
        bank = self._banks[cmd.flat_bank]
        bank.open_row = None
        bank.closed_by = "refresh"
        end = cmd.time_ns + cmd.duration_ns
        if end > bank.busy_until_ns:
            bank.busy_until_ns = end

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _violation(self, rule: str, time_ns: float, message: str) -> None:
        if self.mode == "strict":
            raise ProtocolViolation(message, rule=rule, time_ns=time_ns)
        if len(self.violations) < self.max_violations:
            self.violations.append(Violation(rule, time_ns, message))
        else:
            self.overflowed_violations += 1

    @property
    def violation_count(self) -> int:
        return len(self.violations) + self.overflowed_violations

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return counts

    def summary(self) -> dict:
        return {
            "mode": self.mode,
            "commands": self.commands_seen,
            "violations": self.violation_count,
            "by_rule": self.by_rule(),
        }

    def write_ledger(self, path: str | Path) -> int:
        """Append violations to a JSONL ledger; returns the count written.

        Records carry simulation time only, so ledgers from two runs with
        the same seed are byte-identical.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as handle:
            for violation in self.violations:
                handle.write(json.dumps(violation.to_json(),
                                        sort_keys=True) + "\n")
        return len(self.violations)


def make_checker(config: SystemConfig, *, mode: str = "off",
                 partial_limit: int | None = None,
                 mitigation: MitigationMechanism | None = None,
                 max_violations: int = 10_000) -> ProtocolChecker | None:
    """Build a checker for ``mode``; ``off`` returns ``None`` (no observer,
    zero overhead)."""
    if mode not in CHECK_MODES:
        raise ConfigError(
            f"check-protocol mode must be one of {CHECK_MODES}, got {mode!r}")
    if mode == "off":
        return None
    return ProtocolChecker(config, mode=mode, partial_limit=partial_limit,
                           mitigation=mitigation,
                           max_violations=max_violations)
