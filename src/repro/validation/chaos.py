"""Deterministic *runtime* chaos scenarios for the execution engine.

:mod:`repro.validation.faults` injects faults into the simulated
*hardware* (dropped refreshes, corrupted calibration); this module does
the same to the *machinery that runs the experiments*.  Each scenario
breaks the runtime in one concrete way — a worker SIGKILLed mid-task, a
worker that hangs past its deadline, a result torn mid-write, a full
disk, a bit-flipped cache entry, a fast kernel raising on one grid point
— and asserts the hardened :class:`~repro.runtime.TaskPool` ends in a
*classified* outcome:

* the run completes, and every completed result is **byte-identical** to
  a fault-free run (the fault was ``absorbed``); or
* the run fails with an :class:`~repro.errors.ExecutionError` naming
  exactly the genuinely poisoned points, everything else byte-identical
  (the fault was ``detected`` and contained).

All randomness (which grid point gets poisoned) derives from the chaos
seed via :func:`repro.rng.derive_seed`, so a chaos run is
bit-reproducible; fault *state* ("already failed once") lives in marker
files on disk, because the failing code runs in worker processes that
share nothing with the parent but the filesystem.

The scenarios reuse the fault-matrix vocabulary
(:class:`~repro.validation.faults.FaultScenario`,
``DETECTED``/``ABSORBED``/``MISSED``) and the same report type, so
``repro-experiments chaos`` reads like ``validate``: every scenario must
land on its expected status or the matrix fails.
"""

from __future__ import annotations

import errno
import json
import os
import signal
import time
from dataclasses import replace
from pathlib import Path

from repro.errors import ConfigError, ExecutionError
from repro.exec import fallback_kernel
from repro.rng import derive_seed
from repro.runtime import (
    CORRUPT_SUFFIX,
    LEDGER_NAME,
    REPORT_NAME,
    Task,
    TaskPool,
    make_scheduler,
    write_atomic,
)
from repro.runtime.cache import DigestCache
from repro.validation.faults import (
    ABSORBED,
    MISSED,
    FaultResult,
    FaultScenario,
)
from repro.validation.matrix import MatrixReport

__all__ = ["ALL_CHAOS", "run_chaos_matrix"]


# ----------------------------------------------------------------------
# worker functions (module-level: they cross the process-pool boundary)
# ----------------------------------------------------------------------
def _compute_point(n: int, path: str) -> None:
    """The healthy worker every scenario's grid runs."""
    write_atomic(path, json.dumps({"n": n, "value": n * n + 1},
                                  sort_keys=True) + "\n")


def _load_point(path: str | Path) -> int:
    payload = json.loads(Path(path).read_text())
    if set(payload) != {"n", "value"}:
        raise ValueError(f"malformed point at {path}")
    return payload["value"]


def _first_time(marker: str) -> bool:
    """Atomically claim first-failure state via a marker file.

    ``O_EXCL`` keeps the claim race-free across worker processes: exactly
    one attempt observes ``True`` no matter how execution interleaves.
    """
    try:
        os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        return True
    except FileExistsError:
        return False


def _sigkill_once(marker: str, n: int, path: str) -> None:
    """First attempt dies like the OOM killer struck; retries succeed."""
    if _first_time(marker):
        os.kill(os.getpid(), signal.SIGKILL)
    _compute_point(n, path)


def _sigkill_always(n: int, path: str) -> None:
    """A poison task: every attempt takes its worker process down."""
    os.kill(os.getpid(), signal.SIGKILL)


def _hang_once(marker: str, n: int, path: str) -> None:
    """First attempt wedges far past any deadline; retries succeed."""
    if _first_time(marker):
        time.sleep(60.0)
    _compute_point(n, path)


def _truncate_once(marker: str, n: int, path: str) -> None:
    """First attempt tears its write (a crashed non-atomic writer)."""
    if _first_time(marker):
        Path(path).write_text('{"n": %d, "val' % n)  # torn mid-write
        return
    _compute_point(n, path)


def _enospc_once(marker: str, n: int, path: str) -> None:
    """First attempt hits a full disk; the condition then clears."""
    if _first_time(marker):
        raise OSError(errno.ENOSPC, "No space left on device", path)
    _compute_point(n, path)


def _config_error(n: int, path: str) -> None:
    """A deterministic library error: retrying cannot help."""
    raise ConfigError(f"point {n}: invalid configuration (injected)")


def _write_then_die(marker: str, n: int, path: str) -> None:
    """First attempt computes its result, then dies before reporting it.

    Under the fleet scheduler the result lands in the worker's private
    scratch dir and dies with the worker — the coordinator must requeue
    the lease, and the recomputed result must be byte-identical.
    """
    _compute_point(n, path)
    if _first_time(marker):
        os.kill(os.getpid(), signal.SIGKILL)


def _slow_once(marker: str, n: int, path: str) -> None:
    """First attempt overruns any reasonable lease deadline; retries are
    fast.  The sleep is far above the scenario's 1s deadline but bounded,
    so even a broken revocation path cannot hang the suite."""
    if _first_time(marker):
        time.sleep(8.0)
    _compute_point(n, path)


def _faulty_characterize(module_id: str, config, path: str, kernel: str,
                         cache_dir: str | None) -> None:
    """Characterization worker whose fast kernel is broken.

    Raises for any kernel that has a safer fallback (i.e. any non-oracle
    kernel) and delegates to the real worker for the oracle itself — the
    injected equivalent of a numpy edge case in the array tier.
    """
    from repro.characterization.campaign import _characterize_to

    if fallback_kernel("device", kernel) is not None:
        raise RuntimeError(f"injected {kernel}-kernel fault for {module_id}")
    _characterize_to(module_id, config, path, kernel, cache_dir)


# ----------------------------------------------------------------------
# scenario scaffolding
# ----------------------------------------------------------------------
_NPOINTS = 4


def _grid_tasks(directory: Path) -> list[Task]:
    return [Task(key=f"p{n}", path=directory / f"p{n}.json",
                 fn=_compute_point, args=(n, str(directory / f"p{n}.json")))
            for n in range(_NPOINTS)]


def _pool(directory: Path, **overrides) -> TaskPool:
    options = dict(jobs=1, max_attempts=3, backoff_s=0.01,
                   ledger_path=directory / LEDGER_NAME)
    options.update(overrides)
    return TaskPool(**options)


def _fleet_pool(directory: Path, **overrides) -> TaskPool:
    """A loopback fleet scheduler with the same chaos-friendly knobs."""
    options = dict(workers=2, max_attempts=3, backoff_s=0.01,
                   ledger_path=directory / LEDGER_NAME,
                   report_path=directory / REPORT_NAME)
    options.update(overrides)
    return make_scheduler("fleet", **options)


def _result_bytes(directory: Path) -> dict[str, bytes]:
    """Result rows only — runtime telemetry is not part of byte-identity."""
    return {p.name: p.read_bytes()
            for p in sorted(directory.glob("*.json"))
            if p.name != REPORT_NAME}


def _ledger_actions(directory: Path) -> list[dict]:
    path = directory / LEDGER_NAME
    if not path.exists():
        return []
    return [json.loads(line) for line in path.read_text().splitlines()]


class _ChaosScenario(FaultScenario):
    """A runtime chaos scenario over a small reference grid."""

    def poison_index(self, seed: int) -> int:
        """Which grid point the fault lands on (seed-derived)."""
        return derive_seed(seed, self.name) % _NPOINTS

    def reference(self, workdir: Path) -> dict[str, bytes]:
        """Fault-free run of the same grid, for byte-comparison."""
        ref_dir = workdir / "reference"
        pool = _pool(ref_dir)
        pool.run(_grid_tasks(ref_dir), loader=_load_point)
        return _result_bytes(ref_dir)

    def faulted_tasks(self, directory: Path, poison: int) -> list[Task]:
        """The grid with the fault injected at index ``poison``."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
class WorkerSigkillRecovered(_ChaosScenario):
    name = "worker-sigkill-recovered"
    expected = ABSORBED
    description = ("one worker is SIGKILLed mid-task (OOM-killer style); "
                   "the pool is rebuilt and every point still completes")

    def run(self, workdir: Path, seed: int) -> FaultResult:
        poison = self.poison_index(seed)
        run_dir = workdir / "faulted"
        tasks = _grid_tasks(run_dir)
        marker = str(run_dir / "killed.marker")
        run_dir.mkdir(parents=True, exist_ok=True)
        tasks[poison] = replace(
            tasks[poison], fn=_sigkill_once,
            args=(marker,) + tasks[poison].args)
        pool = _pool(run_dir, jobs=2)
        results = pool.run(tasks, loader=_load_point)
        report = pool.last_report
        identical = _result_bytes(run_dir) == self.reference(workdir)
        evidence = (f"{len(results)}/{_NPOINTS} completed, "
                    f"{report.pool_rebuilds} pool rebuild(s), "
                    f"byte-identical={identical}")
        ok = (len(results) == _NPOINTS and report.pool_rebuilds >= 1
              and identical)
        return self._result(ABSORBED if ok else MISSED, evidence)


class WorkerSigkillPoison(_ChaosScenario):
    name = "worker-sigkill-poison"
    description = ("one task SIGKILLs its worker on every attempt; the "
                   "engine isolates it, fails only that point, and every "
                   "other point survives")

    def run(self, workdir: Path, seed: int) -> FaultResult:
        poison = self.poison_index(seed)
        run_dir = workdir / "faulted"
        tasks = _grid_tasks(run_dir)
        poison_key = tasks[poison].key
        tasks[poison] = replace(tasks[poison], fn=_sigkill_always,
                                args=tasks[poison].args)
        pool = _pool(run_dir, jobs=2, max_attempts=2, max_pool_rebuilds=2)
        try:
            pool.run(tasks, loader=_load_point)
        except ExecutionError as error:
            report = pool.last_report
            survivors = _result_bytes(run_dir)
            expected_survivors = {name: blob for name, blob
                                  in self.reference(workdir).items()
                                  if name != f"{poison_key}.json"}
            named_only_poison = (set(report.failed) == {poison_key})
            classified = (report.failure_classes.get(poison_key)
                          == "infrastructure")
            identical = survivors == expected_survivors
            evidence = (f"failed={sorted(report.failed)} "
                        f"class={report.failure_classes.get(poison_key)} "
                        f"mode={report.final_mode} "
                        f"survivors-identical={identical}: {error}")
            return self._checked(
                named_only_poison and classified and identical, evidence)
        return self._result(MISSED,
                            "poison task did not fail the run at all")


class HungWorkerDeadline(_ChaosScenario):
    name = "hung-worker-deadline"
    expected = ABSORBED
    description = ("one worker wedges for 60s; the 1s watchdog kills it "
                   "and the retried point completes without stalling the "
                   "grid")

    def run(self, workdir: Path, seed: int) -> FaultResult:
        poison = self.poison_index(seed)
        run_dir = workdir / "faulted"
        tasks = _grid_tasks(run_dir)
        marker = str(run_dir / "hung.marker")
        run_dir.mkdir(parents=True, exist_ok=True)
        tasks[poison] = replace(
            tasks[poison], fn=_hang_once,
            args=(marker,) + tasks[poison].args)
        pool = _pool(run_dir, jobs=2, timeout_s=1.0)
        started = time.monotonic()
        results = pool.run(tasks, loader=_load_point)
        elapsed = time.monotonic() - started
        report = pool.last_report
        timed_out = [record for record in _ledger_actions(run_dir)
                     if record["action"] == "timeout"]
        identical = _result_bytes(run_dir) == self.reference(workdir)
        ok = (len(results) == _NPOINTS and report.watchdog_kills >= 1
              and timed_out and elapsed < 30.0 and identical)
        evidence = (f"completed in {elapsed:.1f}s (hang was 60s), "
                    f"{report.watchdog_kills} watchdog kill(s), "
                    f"{len(timed_out)} timeout record(s), "
                    f"byte-identical={identical}")
        return self._result(ABSORBED if ok else MISSED, evidence)


class TruncatedResultWrite(_ChaosScenario):
    name = "truncated-result-write"
    description = ("a worker tears its result file mid-write; the loader "
                   "rejects it, the engine quarantines and recomputes")

    def run(self, workdir: Path, seed: int) -> FaultResult:
        poison = self.poison_index(seed)
        run_dir = workdir / "faulted"
        tasks = _grid_tasks(run_dir)
        marker = str(run_dir / "torn.marker")
        run_dir.mkdir(parents=True, exist_ok=True)
        tasks[poison] = replace(
            tasks[poison], fn=_truncate_once,
            args=(marker,) + tasks[poison].args)
        pool = _pool(run_dir)
        results = pool.run(tasks, loader=_load_point)
        quarantined = list(run_dir.glob(f"*{CORRUPT_SUFFIX}*"))
        identical = _result_bytes(run_dir) == self.reference(workdir)
        evidence = (f"{len(results)}/{_NPOINTS} completed, "
                    f"{len(quarantined)} quarantined file(s), "
                    f"byte-identical={identical}")
        return self._checked(
            len(results) == _NPOINTS and len(quarantined) == 1 and identical,
            evidence)


class EnospcDuringWrite(_ChaosScenario):
    name = "enospc-during-write"
    description = ("a worker hits a full disk (ENOSPC); the engine "
                   "classifies it as infrastructure, pauses, probes, and "
                   "finishes without charging the point an attempt")

    def run(self, workdir: Path, seed: int) -> FaultResult:
        poison = self.poison_index(seed)
        run_dir = workdir / "faulted"
        tasks = _grid_tasks(run_dir)
        marker = str(run_dir / "enospc.marker")
        run_dir.mkdir(parents=True, exist_ok=True)
        tasks[poison] = replace(
            tasks[poison], fn=_enospc_once,
            args=(marker,) + tasks[poison].args)
        pool = _pool(run_dir, infra_pause_s=0.05)
        results = pool.run(tasks, loader=_load_point)
        report = pool.last_report
        pauses = [record for record in _ledger_actions(run_dir)
                  if record["action"] == "infra-pause"
                  and record.get("class") == "infrastructure"]
        identical = _result_bytes(run_dir) == self.reference(workdir)
        evidence = (f"{len(results)}/{_NPOINTS} completed, "
                    f"{report.infra_pauses} infra pause(s), "
                    f"{len(pauses)} classified ledger record(s), "
                    f"byte-identical={identical}")
        return self._checked(
            len(results) == _NPOINTS and report.infra_pauses >= 1
            and pauses and identical, evidence)


class PermanentConfigFault(_ChaosScenario):
    name = "permanent-config-fault"
    description = ("one point raises a deterministic ConfigError; it fails "
                   "in exactly one attempt (no futile retries) and every "
                   "other point survives")

    def run(self, workdir: Path, seed: int) -> FaultResult:
        poison = self.poison_index(seed)
        run_dir = workdir / "faulted"
        tasks = _grid_tasks(run_dir)
        poison_key = tasks[poison].key
        tasks[poison] = replace(tasks[poison], fn=_config_error,
                                args=tasks[poison].args)
        pool = _pool(run_dir, max_attempts=3)
        try:
            pool.run(tasks, loader=_load_point)
        except ExecutionError:
            report = pool.last_report
            attempts = [record for record in _ledger_actions(run_dir)
                        if record["action"] == "attempt"
                        and record["key"] == poison_key]
            classified = (report.failure_classes.get(poison_key)
                          == "permanent")
            survivors = _result_bytes(run_dir)
            expected_survivors = {name: blob for name, blob
                                  in self.reference(workdir).items()
                                  if name != f"{poison_key}.json"}
            identical = survivors == expected_survivors
            evidence = (f"{len(attempts)} attempt record(s) (want exactly "
                        f"1), class={report.failure_classes.get(poison_key)},"
                        f" survivors-identical={identical}")
            return self._checked(
                len(attempts) == 1 and classified and identical, evidence)
        return self._result(MISSED, "permanent fault did not fail the run")


class CacheEntryBitflip(_ChaosScenario):
    name = "cache-entry-bitflip"
    description = ("a persisted cache entry's payload is silently mutated "
                   "on disk; the checksum rejects it and the cache "
                   "recomputes instead of serving the corrupt value")

    def run(self, workdir: Path, seed: int) -> FaultResult:
        cache_dir = workdir / "cache"
        writer = DigestCache(maxsize=4, disk_dir=cache_dir)
        writer.ensure("digest-a")
        writer.put({"point": 1}, {"value": 41})
        writer.put({"point": 2}, {"value": 97})
        # Flip the stored value of entry 1 without touching digest, key,
        # or checksum — valid JSON, valid schema, wrong science.
        path = writer._path({"point": 1})
        payload = json.loads(path.read_text())
        payload["result"]["value"] = 14
        path.write_text(json.dumps(payload, sort_keys=True))
        reader = DigestCache(maxsize=4, disk_dir=cache_dir)
        reader.ensure("digest-a")
        flipped = reader.get({"point": 1})
        intact = reader.get({"point": 2})
        evidence = (f"mutated entry -> {flipped!r} (want miss), intact "
                    f"entry -> {intact!r}, corrupt_entries="
                    f"{reader.corrupt_entries}")
        return self._checked(
            flipped is None and reader.corrupt_entries == 1
            and intact == {"value": 97}, evidence)


class DegradedKernelCampaign(_ChaosScenario):
    name = "degraded-kernel-campaign"
    expected = ABSORBED
    description = ("the array device kernel raises on one module; the "
                   "campaign completes on the scalar-oracle fallback with "
                   "byte-identical measurements")

    def run(self, workdir: Path, seed: int) -> FaultResult:
        from repro.characterization.campaign import (
            CampaignConfig,
            CharacterizationCampaign,
            _load_checked,
        )

        config = CampaignConfig(module_ids=("S6",), tras_factors=(1.0, 0.36),
                                per_region=2, kernel="array")
        faulted = CharacterizationCampaign(workdir / "faulted", config)
        task = replace(faulted._task("S6"), fn=_faulty_characterize)
        pool = faulted.execution.scheduler(jobs=1, progress=None)
        results = pool.run([task], loader=_load_checked)
        report = pool.last_report
        # Reference: the same campaign on the oracle kernel throughout
        # (obtained via the degradation hook, the one source of truth).
        oracle = fallback_kernel("device", "array")
        ref_config = replace(config, kernel=oracle)
        reference = CharacterizationCampaign(workdir / "reference",
                                             ref_config)
        reference.run(jobs=1)
        identical = (faulted.result_path("S6").read_bytes()
                     == reference.result_path("S6").read_bytes())
        run_report = json.loads(faulted.report_path().read_text())
        degraded_recorded = run_report["degraded_keys"] == ["S6"]
        ok = ("S6" in results and report.degraded == ["S6"]
              and degraded_recorded and identical)
        evidence = (f"degraded={report.degraded}, run_report degraded_keys="
                    f"{run_report['degraded_keys']}, "
                    f"byte-identical-to-oracle-run={identical}")
        return self._result(ABSORBED if ok else MISSED, evidence)


class FleetWorkerSigkill(_ChaosScenario):
    name = "fleet-worker-sigkill"
    expected = ABSORBED
    description = ("a fleet worker is SIGKILLed mid-task; the coordinator "
                   "requeues its leases uncharged (infrastructure) and the "
                   "surviving worker completes the grid byte-identically")

    def run(self, workdir: Path, seed: int) -> FaultResult:
        poison = self.poison_index(seed)
        run_dir = workdir / "faulted"
        tasks = _grid_tasks(run_dir)
        marker = str(run_dir / "killed.marker")
        run_dir.mkdir(parents=True, exist_ok=True)
        tasks[poison] = replace(
            tasks[poison], fn=_sigkill_once,
            args=(marker,) + tasks[poison].args)
        pool = _fleet_pool(run_dir)
        results = pool.run(tasks, loader=_load_point)
        lost = [record for record in _ledger_actions(run_dir)
                if record["action"] == "worker-lost"
                and record.get("class") == "infrastructure"]
        disconnects = sum(stats["disconnects"]
                          for stats in pool.last_report.workers.values())
        identical = _result_bytes(run_dir) == self.reference(workdir)
        ok = (len(results) == _NPOINTS and lost and disconnects >= 1
              and identical)
        evidence = (f"{len(results)}/{_NPOINTS} completed, "
                    f"{len(lost)} worker-lost record(s), "
                    f"{disconnects} disconnect(s) in the run report, "
                    f"byte-identical={identical}")
        return self._result(ABSORBED if ok else MISSED, evidence)


class FleetWorkerVanishedResult(_ChaosScenario):
    name = "fleet-worker-vanished-result"
    expected = ABSORBED
    description = ("a fleet worker computes a result but dies before "
                   "reporting it; the result dies with the worker's "
                   "scratch dir and the recomputation is byte-identical")

    def run(self, workdir: Path, seed: int) -> FaultResult:
        poison = self.poison_index(seed)
        run_dir = workdir / "faulted"
        tasks = _grid_tasks(run_dir)
        poison_key = tasks[poison].key
        marker = str(run_dir / "vanished.marker")
        run_dir.mkdir(parents=True, exist_ok=True)
        tasks[poison] = replace(
            tasks[poison], fn=_write_then_die,
            args=(marker,) + tasks[poison].args)
        pool = _fleet_pool(run_dir)
        results = pool.run(tasks, loader=_load_point)
        lost = [record for record in _ledger_actions(run_dir)
                if record["action"] == "worker-lost"]
        identical = _result_bytes(run_dir) == self.reference(workdir)
        ok = (len(results) == _NPOINTS and lost and identical
              and poison_key in results)
        evidence = (f"{len(results)}/{_NPOINTS} completed, "
                    f"{len(lost)} worker-lost record(s), "
                    f"byte-identical={identical}")
        return self._result(ABSORBED if ok else MISSED, evidence)


class FleetSlowWorkerLease(_ChaosScenario):
    name = "fleet-slow-worker-lease"
    expected = ABSORBED
    description = ("a fleet worker overruns its 1s lease deadline by 8s; "
                   "the coordinator revokes the lease, drops the late "
                   "result as stale, and the reassigned point completes "
                   "byte-identically without stalling the grid")

    def run(self, workdir: Path, seed: int) -> FaultResult:
        poison = self.poison_index(seed)
        run_dir = workdir / "faulted"
        tasks = _grid_tasks(run_dir)
        marker = str(run_dir / "slow.marker")
        run_dir.mkdir(parents=True, exist_ok=True)
        tasks[poison] = replace(
            tasks[poison], fn=_slow_once,
            args=(marker,) + tasks[poison].args)
        pool = _fleet_pool(run_dir, timeout_s=1.0)
        started = time.monotonic()
        results = pool.run(tasks, loader=_load_point)
        elapsed = time.monotonic() - started
        report = pool.last_report
        run_report = json.loads((run_dir / REPORT_NAME).read_text())
        timed_out = [record for record in _ledger_actions(run_dir)
                     if record["action"] == "timeout"]
        identical = _result_bytes(run_dir) == self.reference(workdir)
        ok = (len(results) == _NPOINTS and report.lease_revocations >= 1
              and run_report["leases"]["revoked"] >= 1 and timed_out
              and elapsed < 30.0 and identical)
        evidence = (f"completed in {elapsed:.1f}s (overrun was 8s), "
                    f"{report.lease_revocations} lease revocation(s), "
                    f"{len(timed_out)} timeout record(s), "
                    f"byte-identical={identical}")
        return self._result(ABSORBED if ok else MISSED, evidence)


class ServiceJobCrashResume(_ChaosScenario):
    name = "service-job-crash-resume"
    expected = ABSORBED
    description = ("a service runner crashes mid-job, leaving the record "
                   "orphaned in `running` with half its rows on disk; the "
                   "next run resumes it, recomputes only what is missing, "
                   "and finishes byte-identical to an uninterrupted job")

    def run(self, workdir: Path, seed: int) -> FaultResult:
        from repro.analysis.sweeprunner import SweepGrid, SweepRunner
        from repro.service import DONE, RUNNING, JobManager, JobSpec

        grid = SweepGrid(mitigations=("PARA",), nrh_values=(64,),
                         pacram_vendors=(None, "H"),
                         workload_sets=(("spec06.mcf",),), requests=200)
        points = grid.points()
        reference = SweepRunner(workdir / "reference", grid)
        reference.run(jobs=1)
        expected = {
            path.name: path.read_bytes()
            for path in sorted((workdir / "reference").glob("*.json"))
            if path.name != REPORT_NAME}

        manager = JobManager(workdir / "jobs")
        record, _ = manager.submit(JobSpec("sweep", grid))
        # The crash: one point's row made it to disk, then the runner
        # died — the record stays claimed in ``running`` forever.
        survivor = points[self.poison_index(seed) % len(points)]
        partial = SweepRunner(manager.store.results_dir(record.job_id),
                              grid)
        partial.run_point(survivor)
        manager.store.transition(record.job_id, RUNNING)
        stamp = partial.row_path(survivor).stat().st_mtime_ns

        final = manager.run(record.job_id)
        reused = partial.row_path(survivor).stat().st_mtime_ns == stamp
        identical = manager.result_files(record.job_id) == expected
        ok = final.state == DONE and reused and identical
        evidence = (f"resumed to state={final.state}, "
                    f"survivor-row-reused={reused}, "
                    f"byte-identical={identical}")
        return self._result(ABSORBED if ok else MISSED, evidence)


#: Every chaos scenario, in a stable order.
ALL_CHAOS: tuple[FaultScenario, ...] = (
    WorkerSigkillRecovered(),
    WorkerSigkillPoison(),
    HungWorkerDeadline(),
    TruncatedResultWrite(),
    EnospcDuringWrite(),
    PermanentConfigFault(),
    CacheEntryBitflip(),
    DegradedKernelCampaign(),
    FleetWorkerSigkill(),
    FleetWorkerVanishedResult(),
    FleetSlowWorkerLease(),
    ServiceJobCrashResume(),
)


def run_chaos_matrix(workdir: str | Path, *, seed: int = 2025,
                     only: str | None = None) -> MatrixReport:
    """Run every chaos scenario; never raises for a failing scenario.

    ``only`` keeps just the scenarios whose name contains the substring
    (e.g. ``"fleet"`` for the distributed-recovery trio in CI).
    """
    workdir = Path(workdir)
    scenarios = [s for s in ALL_CHAOS if only is None or only in s.name]
    if not scenarios:
        raise ConfigError(f"no chaos scenario matches {only!r}")
    results = []
    for scenario in scenarios:
        scenario_dir = workdir / scenario.name
        scenario_dir.mkdir(parents=True, exist_ok=True)
        try:
            results.append(scenario.run(scenario_dir, seed))
        except Exception as error:  # a broken probe proves no coverage
            results.append(FaultResult(
                scenario.name, scenario.expected, MISSED,
                f"scenario crashed: {type(error).__name__}: {error}"))
    return MatrixReport(seed=seed, results=tuple(results))
