"""Runtime validation: protocol checking, physics guards, fault injection.

Three pillars (see ``README.md`` — "Validating a run"):

* :class:`ProtocolChecker` — an observer on the memory controller's command
  stream that re-validates JEDEC timings, refresh deadlines, and PaCRAM's
  N_PCR envelope while a simulation runs (:mod:`repro.validation.checker`);
* physics guards and model-drift digests for the device model
  (:mod:`repro.validation.physics`);
* a deterministic fault injector with a mutation-testing matrix proving
  every fault class is detected or absorbed
  (:mod:`repro.validation.faults`, :mod:`repro.validation.matrix`).

The process-wide default check mode lets the CLI turn checking on for every
simulation a command starts without threading a flag through each call
site; library callers normally pass ``check_protocol=`` explicitly.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.validation.checker import (
    CHECK_MODES,
    EPSILON_NS,
    ProtocolChecker,
    Violation,
    make_checker,
    requires_scalar_oracle,
)
from repro.validation.physics import (
    MODEL_VERSION,
    check_physics,
    model_digest,
    physics_problems,
)

__all__ = [
    "CHECK_MODES",
    "EPSILON_NS",
    "MODEL_VERSION",
    "ProtocolChecker",
    "Violation",
    "check_physics",
    "default_check_mode",
    "make_checker",
    "model_digest",
    "physics_problems",
    "requires_scalar_oracle",
    "set_default_check_mode",
]

_default_mode = "off"


def set_default_check_mode(mode: str) -> None:
    """Set the process-wide default ``--check-protocol`` mode."""
    if mode not in CHECK_MODES:
        raise ConfigError(
            f"check-protocol mode must be one of {CHECK_MODES}, got {mode!r}")
    global _default_mode
    _default_mode = mode


def default_check_mode() -> str:
    """The mode simulations use when ``check_protocol`` is not passed."""
    return _default_mode
