"""Mutation-testing matrix over the fault-injection scenarios.

:func:`run_matrix` executes every scenario in
:data:`repro.validation.faults.ALL_FAULTS` under one workdir and seed and
reduces them to a :class:`MatrixReport`.  The report's claim is the one the
validation subsystem exists to make: every modeled fault class is either
*detected* by a defense layer or *provably absorbed* by PaCRAM's published
margins — nothing falls through silently.  A scenario that raises an
unexpected exception is recorded as missed (a broken probe proves no
coverage), so the matrix is total and a CI gate can key off
:attr:`MatrixReport.all_covered`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.validation.faults import ALL_FAULTS, MISSED, FaultResult

#: Pseudo-evidence prefix for scenarios that crashed instead of concluding.
_CRASH = "scenario crashed"


@dataclass(frozen=True)
class MatrixReport:
    """All scenario outcomes of one matrix run."""

    seed: int
    results: tuple[FaultResult, ...]

    @property
    def all_covered(self) -> bool:
        return all(result.ok for result in self.results)

    def failures(self) -> tuple[FaultResult, ...]:
        return tuple(result for result in self.results if not result.ok)

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "all_covered": self.all_covered,
            "results": [result.to_json() for result in self.results],
        }

    def summary(self) -> str:
        width = max(len(result.fault) for result in self.results)
        lines = [f"fault matrix (seed {self.seed}): "
                 f"{'all covered' if self.all_covered else 'COVERAGE HOLES'}"]
        for result in self.results:
            mark = "ok " if result.ok else "FAIL"
            lines.append(f"  {mark} {result.fault:<{width}}  "
                         f"{result.status:<8}  {result.evidence}")
        return "\n".join(lines)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_json(), indent=1) + "\n")


def run_matrix(workdir: str | Path, *, seed: int = 2025) -> MatrixReport:
    """Run every fault scenario; never raises for a failing scenario."""
    workdir = Path(workdir)
    results = []
    for scenario in ALL_FAULTS:
        scenario_dir = workdir / scenario.name
        scenario_dir.mkdir(parents=True, exist_ok=True)
        try:
            results.append(scenario.run(scenario_dir, seed))
        except Exception as error:  # a broken probe is a coverage hole
            results.append(FaultResult(
                scenario.name, scenario.expected, MISSED,
                f"{_CRASH}: {type(error).__name__}: {error}"))
    return MatrixReport(seed=seed, results=tuple(results))
