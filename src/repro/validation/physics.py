"""Device-physics invariant guards and model-drift digests.

Two complementary defenses for the device model:

* :func:`check_physics` runs :meth:`repro.dram.charge.ChargeModel.
  check_invariants` for a module — charge proxies in [0, 1], monotone
  restoration-margin and N_PCR curves, non-negative leakage — raising
  :class:`ProtocolViolation` in strict mode.
* :func:`model_digest` fingerprints everything that determines a module's
  simulated physics: the catalog's published measurements, the *live*
  vendor profile, the calibrated interpolation anchors, the retention
  parameters, and the campaign seed.  Characterization results carry this
  digest (``ModuleCharacterization.model_digest``), so a campaign resumed
  after the model or its calibration changed detects the drift instead of
  silently mixing results from two different models.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

from repro.dram.catalog import module_spec
from repro.dram.charge import _RETENTION, ChargeModel
from repro.dram.vendor import vendor_profile
from repro.errors import ProtocolViolation

#: Bump when the physics equations change shape (not just calibration) so
#: old characterization results are flagged as drifted.
MODEL_VERSION = 1


def physics_problems(module_id: str) -> list[str]:
    """All physics-invariant problems for one module (empty = clean)."""
    spec = module_spec(module_id)
    return ChargeModel(spec).check_invariants()


def check_physics(module_id: str, *, mode: str = "strict") -> list[str]:
    """Validate one module's device physics.

    Returns the problem list in ``tolerant`` mode; raises
    :class:`ProtocolViolation` on the first problem in ``strict`` mode.
    """
    problems = physics_problems(module_id)
    if problems and mode == "strict":
        raise ProtocolViolation(
            f"{module_id}: {len(problems)} physics invariant problem(s); "
            f"first: {problems[0]}", rule="physics.invariant")
    return problems


def _canon(value: Any) -> Any:
    """Convert calibration structures to a JSON-stable canonical form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _canon(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return [[_canon(k), _canon(v)] for k, v in sorted(value.items())]
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    return value


def model_digest(module_id: str, seed: int | None = None) -> str:
    """Deterministic fingerprint of one module's simulated physics.

    Covers the published catalog numbers, the live vendor profile (so a
    monkeypatched or edited profile changes the digest), the calibrated
    anchor curves, the retention parameters, and the model version.  A
    campaign ``seed`` may be folded in so results from different seed trees
    never mix.
    """
    spec = module_spec(module_id)
    model = ChargeModel(spec)
    payload = {
        "model_version": MODEL_VERSION,
        "module": _canon(spec),
        "vendor_profile": _canon(vendor_profile(spec.manufacturer)),
        "single_ratio_anchors": _canon(model._single_ratio_anchors),
        "repeated_ratio_anchors": _canon(model._repeated_ratio_anchors),
        "npcr_anchors": _canon(model._npcr_anchors),
        "margin_anchors": _canon(model._margin_anchors),
        "retention": _canon(_RETENTION[spec.manufacturer]),
        "seed": seed,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
