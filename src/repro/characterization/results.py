"""Result containers for characterization runs, with JSON round-tripping."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.errors import CharacterizationError
from repro.runtime.persist import write_atomic


@dataclass(frozen=True)
class RowMeasurement:
    """One row's measured RowHammer characteristics at one test point.

    ``nrh`` semantics follow the paper: ``0`` means the row exhibited
    bitflips without hammering (retention failure); ``None`` means no
    bitflips were observed up to the search bound (the row — or whole module,
    e.g. H0 — is not vulnerable at this test point).
    """

    bank: int
    row: int
    tras_factor: float
    n_pr: int
    temperature_c: float
    wcdp: str  #: short name of the worst-case data pattern
    nrh: int | None
    ber: float

    def vulnerable(self) -> bool:
        return self.nrh is not None and self.nrh > 0

    def retention_failed(self) -> bool:
        return self.nrh == 0


@dataclass
class ModuleCharacterization:
    """All measurements taken on one module in one campaign."""

    module_id: str
    seed: int
    measurements: list[RowMeasurement] = field(default_factory=list)
    #: Fingerprint of the device-model calibration that produced these
    #: measurements (:func:`repro.validation.model_digest`); ``None`` for
    #: results persisted before digests existed.  Campaign resumes compare
    #: it against the live model to detect silent model drift.
    model_digest: str | None = None

    def add(self, measurement: RowMeasurement) -> None:
        self.measurements.append(measurement)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def at(self, *, tras_factor: float | None = None, n_pr: int | None = None,
           temperature_c: float | None = None) -> list[RowMeasurement]:
        """Measurements matching the given test point (None = any)."""
        out = []
        for m in self.measurements:
            if tras_factor is not None and abs(m.tras_factor - tras_factor) > 1e-9:
                continue
            if n_pr is not None and m.n_pr != n_pr:
                continue
            if temperature_c is not None and abs(m.temperature_c - temperature_c) > 0.75:
                continue
            out.append(m)
        return out

    def lowest_nrh(self, tras_factor: float, n_pr: int = 1) -> int | None:
        """Lowest measured N_RH across rows at a test point (Table 3 cell).

        Returns 0 if any row shows retention bitflips, None if no row shows
        any bitflips at all.
        """
        rows = self.at(tras_factor=tras_factor, n_pr=n_pr)
        if not rows:
            raise CharacterizationError(
                f"no measurements at factor={tras_factor}, n_pr={n_pr}")
        if any(m.retention_failed() for m in rows):
            return 0
        values = [m.nrh for m in rows if m.nrh is not None]
        if not values:
            return None
        return min(values)

    def normalized_nrh(self, tras_factor: float, n_pr: int = 1) -> list[float]:
        """Per-row N_RH at a test point normalized to the same row's N_RH at
        nominal latency with a single restoration (Fig. 6 data points)."""
        baseline = {(m.bank, m.row): m.nrh
                    for m in self.at(tras_factor=1.00, n_pr=1)
                    if m.vulnerable()}
        out = []
        for m in self.at(tras_factor=tras_factor, n_pr=n_pr):
            base = baseline.get((m.bank, m.row))
            if base:
                out.append((m.nrh or 0) / base)
        return out

    def wcdp_histogram(self, tras_factor: float = 1.00,
                       n_pr: int = 1) -> dict[str, int]:
        """How often each data pattern was the worst case (§4.3).

        The paper identifies the worst-case data pattern per row before
        measuring it; this histogram summarizes which patterns dominate.
        """
        histogram: dict[str, int] = {}
        for m in self.at(tras_factor=tras_factor, n_pr=n_pr):
            histogram[m.wcdp] = histogram.get(m.wcdp, 0) + 1
        return histogram

    def normalized_ber(self, tras_factor: float, n_pr: int = 1) -> list[float]:
        """Per-row BER normalized to nominal latency (Fig. 9 data points)."""
        baseline = {(m.bank, m.row): m.ber
                    for m in self.at(tras_factor=1.00, n_pr=1) if m.ber > 0}
        out = []
        for m in self.at(tras_factor=tras_factor, n_pr=n_pr):
            base = baseline.get((m.bank, m.row))
            if base:
                out.append(m.ber / base)
        return out

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "module_id": self.module_id,
            "seed": self.seed,
            "model_digest": self.model_digest,
            "measurements": [asdict(m) for m in self.measurements],
        }
        return json.dumps(payload, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "ModuleCharacterization":
        """Parse and validate a persisted characterization.

        Truncated or schema-invalid payloads (e.g. a file cut short by a
        crash mid-write before saves were atomic) raise
        :class:`~repro.errors.CharacterizationError` so callers can
        quarantine and re-run instead of dying on a raw ``KeyError`` /
        ``JSONDecodeError``.
        """
        try:
            payload = json.loads(text)
            result = cls(module_id=payload["module_id"], seed=payload["seed"],
                         model_digest=payload.get("model_digest"))
            for raw in payload["measurements"]:
                result.add(RowMeasurement(**raw))
        except (ValueError, KeyError, TypeError) as error:
            raise CharacterizationError(
                f"invalid characterization payload: {error}") from error
        if not isinstance(result.module_id, str):
            raise CharacterizationError(
                f"invalid module_id: {result.module_id!r}")
        return result

    def save(self, path: str | Path, *, durable: bool = False) -> None:
        """Persist atomically; ``durable`` fsyncs through to stable storage.

        Campaign workers save durably — a module characterization is the
        most expensive artifact in the repo, and a power loss must not
        resurface an empty file that existence-based resume then trusts.
        """
        write_atomic(path, self.to_json(), durable=durable)

    @classmethod
    def load(cls, path: str | Path) -> "ModuleCharacterization":
        return cls.from_json(Path(path).read_text())
