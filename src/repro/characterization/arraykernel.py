"""Array-native form of Algorithm 1 (the characterization ``array`` tier).

:func:`measure_rows_array` produces :class:`RowMeasurement` values
bit-identical to the vectorized fast path (and therefore to the scalar
oracle — the parity suite asserts both), but replaces the per-probe
evaluation loop with whole-batch array operations built on two facts:

* a probe's dose is an analytic function of its hammer count, folded for a
  whole vector of counts at once by
  :func:`repro.bender.compile.fold_probe_states` (the array form of the
  compiled dose fold);
* whether a probe observes *any* bitflip is a pure comparison — the hammer
  component fires iff the row's effective N_RH is finite and the dose
  reaches it, the retention component iff the row's retention capability
  is below the probe's idle wait (:meth:`BankTraits.retention_fails`) —
  and both components are monotone in the hammer count.  Algorithm 1's
  bisection only consumes this flips-vs-none predicate, so the entire
  search runs as a handful of vector compares per iteration with **zero**
  per-row model evaluations.

Flip *values* (which need the scalar-parity ``log``/``erf`` loops of
:meth:`BankTraits.hammer_flips`) are only ever needed at ``hc_high`` — the
worst-case-pattern comparison and the BER readout — so the transcendental
work drops from every bisection probe to one probe per pattern.
"""

from __future__ import annotations

import numpy as np

from repro.bender.compile import fold_probe_states
from repro.bender.host import DRAMBenderHost
from repro.characterization.algorithm1 import (
    CharacterizationConfig,
    aggressors_of,
)
from repro.characterization.results import RowMeasurement
from repro.dram.kernels import EvalCounters
from repro.errors import CharacterizationError


def measure_rows_array(host: DRAMBenderHost, bank: int, victims, *,
                       tras_red_ns: float | None = None, n_pr: int = 1,
                       config: CharacterizationConfig | None = None,
                       counters: EvalCounters | None = None,
                       ) -> list[RowMeasurement]:
    """Measure a batch of victim rows at one test point (Alg. 1, array tier).

    Bit-identical to :func:`repro.characterization.vectorized.measure_rows`
    — same validation errors, same worst-case-pattern tie-breaks, same
    bisection trajectory — with the search driven by the analytic
    flips-vs-none predicate instead of per-probe model evaluations.
    ``counters.model_evals`` counts only the ``hc_high`` value
    evaluations that remain.
    """
    config = config or CharacterizationConfig()
    counters = counters if counters is not None else EvalCounters()
    module = host.module
    nominal = module.timing.tRAS
    if tras_red_ns is None:
        tras_red_ns = nominal
    if not 0 < tras_red_ns <= nominal:
        raise CharacterizationError(
            f"tras_red_ns must be in (0, {nominal}], got {tras_red_ns}")
    if n_pr < 1:
        raise CharacterizationError("n_pr must be >= 1")
    victims = tuple(victims)
    if not victims:
        return []
    for victim in victims:
        aggressors_of(host, victim)  # same error, same order as scalar path

    batch = module.bank_traits(bank, victims)
    timing = module.timing
    columns = module.geometry.columns_per_row
    temperature = module.temperature_c
    # Restoration streak state of the victim at read time (matching the
    # device model: a full-latency ACT resets the partial streak).
    factor = min(tras_red_ns / timing.tRAS, 1.0)
    factor = 1.0 if factor >= 1.0 else factor
    n_pr_eff = 1 if factor >= 1.0 else max(1, n_pr)
    n = len(victims)
    all_idx = np.arange(n, dtype=np.intp)
    patterns = config.patterns

    def probe(hc: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return fold_probe_states(timing, columns, tras_red_ns, n_pr, hc)

    # Per-pattern effective thresholds, one vector each.  Elementwise, so
    # the values equal what hammer_flips computes internally per probe.
    nrh_by_pattern = np.stack([
        batch.effective_nrh(factor, n_pr_eff, temperature, pattern, all_idx)
        for pattern in patterns])

    # --- hc_high: the one probe whose flip values matter ----------------
    wait_high, eq_high = probe(np.full(n, config.hc_high, dtype=np.int64))
    retained_high = batch.retention_flips(
        factor=factor, n_pr=n_pr_eff, wait_ns=wait_high,
        temperature_c=temperature, idx=all_idx)
    best_flips = np.full(n, -1, dtype=np.int64)
    wcdp_idx = np.zeros(n, dtype=np.intp)
    for pattern_i, pattern in enumerate(patterns):
        hammered = batch.hammer_flips(
            eq_high, factor=factor, n_pr=n_pr_eff,
            temperature_c=temperature, pattern=pattern, idx=all_idx)
        # Retention flips are pattern-independent, so adding them shifts
        # every pattern's count equally and the strict-max scan (Alg. 1
        # lines 16-19, first strict maximum wins) is unchanged.
        flips = hammered + retained_high
        improved = flips > best_flips
        wcdp_idx[improved] = pattern_i
        best_flips = np.where(improved, flips, best_flips)
    counters.model_evals += (len(patterns) + 1) * n
    counters.probe_batches += len(patterns) + 1

    # BER at hc_high (line 20): the winning pattern's count is best_flips.
    cells = module.spec.row_bits()
    ber_out = [int(best_flips[i]) / cells for i in range(n)]

    # Retention pre-check at zero hammers (lines 21-24): the hammer
    # component cannot fire at dose zero (thresholds are positive), so the
    # flips>0 predicate reduces to the retention predicate.
    wait_zero, _ = probe(np.zeros(n, dtype=np.int64))
    fails_zero = batch.retention_fails(
        factor=factor, n_pr=n_pr_eff, wait_ns=wait_zero,
        temperature_c=temperature, idx=all_idx)

    nrh_out: list[int | None] = [None] * n
    for i in np.nonzero(fails_zero)[0]:
        nrh_out[i] = 0

    # Bisection (lines 25-32) over rows whose hc_high probe flipped; the
    # per-row trajectory is independent, so running every pattern group in
    # one lockstep pass reproduces the scalar per-group loops exactly.
    rows_idx = np.nonzero(~fails_zero & (best_flips > 0))[0]
    if len(rows_idx):
        threshold = nrh_by_pattern[wcdp_idx[rows_idx], rows_idx]
        finite = np.isfinite(threshold)
        low = np.full(len(rows_idx), config.hc_low, dtype=np.int64)
        high = np.full(len(rows_idx), config.hc_high, dtype=np.int64)
        nrh = np.full(len(rows_idx), config.hc_high, dtype=np.int64)
        active = (high - low) > config.hc_step
        while active.any():
            current = (high + low) // 2
            wait, equivalent = probe(current)
            flipped = (finite & (equivalent >= threshold)) \
                | batch.retention_fails(
                    factor=factor, n_pr=n_pr_eff, wait_ns=wait,
                    temperature_c=temperature, idx=rows_idx)
            up = active & ~flipped
            down = active & flipped
            low = np.where(up, current, low)
            high = np.where(down, current, high)
            nrh = np.where(down, current, nrh)
            active = (high - low) > config.hc_step
        for j, i in enumerate(rows_idx):
            nrh_out[i] = int(nrh[j])

    return [
        RowMeasurement(
            bank=bank, row=victim,
            tras_factor=tras_red_ns / nominal, n_pr=n_pr,
            temperature_c=module.temperature_c,
            wcdp=patterns[wcdp_idx[i]].short_name,
            nrh=nrh_out[i], ber=ber_out[i])
        for i, victim in enumerate(victims)
    ]
