"""Characterization campaigns: the sweeps behind Figs. 6-12.

Every sweep runs exactly the paper's Algorithm 1 at many test points,
through one of three device kernels:

* ``vectorized`` (default) — :func:`~repro.characterization.vectorized.
  measure_rows` measures the whole row batch per test point through the
  bank-level kernels;
* ``array`` — :func:`~repro.characterization.arraykernel.measure_rows_array`
  drives the same batch through the analytic flips-vs-none predicate, with
  no per-probe model evaluations inside the bisection;
* ``scalar`` — a thin loop over :func:`~repro.characterization.algorithm1.
  measure_row` with a shared :class:`ProbeCache`, the parity oracle for the
  fast paths.

All kernels produce bit-identical results (the parity suite asserts it).
The full-scale paper campaign (3K rows x 7 latencies x many restoration
counts x 3 temperatures x 30 modules) is supported but slow; callers pick
the scale through ``per_region`` and the swept values.
"""

from __future__ import annotations

from repro.bender.host import DRAMBenderHost
from repro.characterization.algorithm1 import CharacterizationConfig, measure_row
from repro.characterization.arraykernel import measure_rows_array
from repro.characterization.probecache import ProbeCache
from repro.characterization.results import ModuleCharacterization
from repro.characterization.rows import select_test_bank, select_test_rows
from repro.characterization.vectorized import measure_rows
from repro.dram.kernels import EvalCounters
from repro.dram.timing import TESTED_TRAS_FACTORS
from repro.errors import CharacterizationError
from repro.exec import STAGE_KERNELS, resolve_kernel
from repro.validation.physics import model_digest

#: Default config for sweeps: a single iteration, because the device model
#: is deterministic (the paper's five iterations guard against run-to-run
#: noise on real hardware).
_SWEEP_CONFIG = CharacterizationConfig(iterations=1)

#: Device kernels for characterization sweeps (the ``device`` stage of
#: :data:`repro.exec.STAGE_KERNELS`).
CHARACTERIZATION_KERNELS = STAGE_KERNELS["device"]


def characterize_module(module_id: str, *,
                        tras_factors: tuple[float, ...] = TESTED_TRAS_FACTORS,
                        n_prs: tuple[int, ...] = (1,),
                        temperatures_c: tuple[float, ...] = (80.0,),
                        per_region: int = 342,
                        rows: tuple[int, ...] | None = None,
                        seed: int = 2025,
                        config: CharacterizationConfig | None = None,
                        kernel: str | None = None,
                        counters: EvalCounters | None = None,
                        cache_dir: str | None = None,
                        ) -> ModuleCharacterization:
    """Run the main test loop on one module across all requested test points.

    ``per_region`` scales the §4.2 row sampling (the paper uses 1024 per
    region; the default here keeps a laptop-scale run while spanning the
    same three bank regions).  The nominal-latency, single-restoration
    baseline is always measured so results can be normalized.

    ``kernel`` selects the device kernel (see module docstring; ``None``
    resolves through the default :class:`repro.exec.ExecutionPolicy`);
    results are bit-identical either way, including measurement order.
    Pass an :class:`EvalCounters` to observe the vectorized kernel's model
    work.  ``cache_dir`` persists the scalar kernel's probe cache there
    (the campaign's ``probe_cache/`` tier).
    """
    if not tras_factors:
        raise CharacterizationError("need at least one tRAS factor")
    kernel = resolve_kernel("device", kernel)
    config = config or _SWEEP_CONFIG
    host = DRAMBenderHost(module_id, temperature_c=temperatures_c[0], seed=seed)
    module = host.module
    bank = select_test_bank(module_id, module.geometry.total_banks, seed)
    if rows is None:
        rows = select_test_rows(module.geometry.rows_per_bank, per_region)
    # Only rows with two physical neighbors can be double-sided hammered
    # (the mapping may place a logical row at the physical bank edge).
    rows = tuple(r for r in rows
                 if len(module.mapping.neighbors(r, 1)) == 2)
    factors = tuple(dict.fromkeys((1.00,) + tuple(tras_factors)))
    n_pr_values = tuple(dict.fromkeys((1,) + tuple(n_prs)))
    result = ModuleCharacterization(module_id=module_id, seed=seed,
                                    model_digest=model_digest(module_id, seed))
    nominal = module.timing.tRAS
    cache = ProbeCache(disk_dir=cache_dir) if kernel == "scalar" else None
    for temperature in temperatures_c:
        host.set_temperature(temperature)
        if kernel in ("vectorized", "array"):
            # Measure all rows per test point in one batch, then emit the
            # measurements in the same order the scalar loop would.
            batch_measure = (measure_rows_array if kernel == "array"
                             else measure_rows)
            by_point: dict[tuple[float, int], list] = {}
            for factor in factors:
                for n_pr in n_pr_values:
                    by_point[(factor, n_pr)] = batch_measure(
                        host, bank, rows,
                        tras_red_ns=factor * nominal,
                        n_pr=n_pr, config=config, counters=counters)
            for i, victim in enumerate(rows):
                for factor in factors:
                    for n_pr in n_pr_values:
                        result.add(by_point[(factor, n_pr)][i])
            continue
        for victim in rows:
            for factor in factors:
                for n_pr in n_pr_values:
                    measurement = measure_row(
                        host, bank, victim,
                        tras_red_ns=factor * nominal,
                        n_pr=n_pr, config=config, cache=cache)
                    result.add(measurement)
    return result


def sweep_tras(module_ids: tuple[str, ...], *,
               tras_factors: tuple[float, ...] = TESTED_TRAS_FACTORS,
               per_region: int = 342, seed: int = 2025,
               ) -> dict[str, ModuleCharacterization]:
    """Fig. 6/7/8/9 campaign: N_RH and BER vs charge-restoration latency."""
    return {module_id: characterize_module(
        module_id, tras_factors=tras_factors,
        per_region=per_region, seed=seed)
        for module_id in module_ids}


def sweep_npr(module_ids: tuple[str, ...], *,
              tras_factors: tuple[float, ...] = (0.64, 0.45, 0.36, 0.27),
              n_prs: tuple[int, ...] = (1, 2, 4, 8),
              per_region: int = 128, seed: int = 2025,
              ) -> dict[str, ModuleCharacterization]:
    """Fig. 11/12 campaign: N_RH vs repeated partial charge restoration."""
    return {module_id: characterize_module(
        module_id, tras_factors=tras_factors, n_prs=n_prs,
        per_region=per_region, seed=seed)
        for module_id in module_ids}


def sweep_temperature(module_ids: tuple[str, ...], *,
                      temperatures_c: tuple[float, ...] = (50.0, 65.0, 80.0),
                      tras_factors: tuple[float, ...] = TESTED_TRAS_FACTORS,
                      per_region: int = 128, seed: int = 2025,
                      ) -> dict[str, ModuleCharacterization]:
    """Fig. 10 campaign: combined temperature x latency effects."""
    return {module_id: characterize_module(
        module_id, tras_factors=tras_factors,
        temperatures_c=temperatures_c,
        per_region=per_region, seed=seed)
        for module_id in module_ids}
