"""Half-Double access pattern characterization (§6, Fig. 13).

The Half-Double pattern hammers a *far* aggressor (physical distance 2 from
the victim) many times, then the *near* aggressor (distance 1) a much
smaller number of times.  The test below modifies Algorithm 1's hammering
function accordingly and reports the percentage of rows that exhibit
Half-Double bitflips.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bender.host import DRAMBenderHost
from repro.characterization.rows import select_test_bank, select_test_rows
from repro.dram.disturbance import DataPattern
from repro.errors import CharacterizationError

#: Default Half-Double dose: many far activations, few near activations.
FAR_HAMMERS = 60_000
NEAR_HAMMERS = 300


@dataclass(frozen=True)
class HalfDoubleResult:
    """Outcome of a Half-Double campaign on one module."""

    module_id: str
    tras_factor: float
    n_pr: int
    rows_tested: int
    rows_with_bitflips: int

    @property
    def fraction(self) -> float:
        if self.rows_tested == 0:
            raise CharacterizationError("no rows tested")
        return self.rows_with_bitflips / self.rows_tested


def perform_halfdouble(host: DRAMBenderHost, bank: int, victim: int, *,
                       tras_red_ns: float, n_pr: int,
                       far_hammers: int = FAR_HAMMERS,
                       near_hammers: int = NEAR_HAMMERS,
                       pattern: DataPattern = DataPattern.ROW_STRIPE) -> int:
    """One Half-Double test on one victim row; returns the bitflip count."""
    module = host.module
    mapping = module.mapping
    physical = mapping.logical_to_physical(victim)
    if physical + 2 >= mapping.rows_per_bank:
        raise CharacterizationError(
            f"victim {victim} too close to the bank edge for Half-Double")
    near = mapping.physical_to_logical(physical + 1)
    far = mapping.physical_to_logical(physical + 2)
    program = host.new_program()
    program.init_rows(bank, victim, (near, far), pattern)
    program.partial_restoration(bank, victim, tras_red_ns, n_pr)
    program.hammer_doublesided(bank, (far,), far_hammers)
    program.hammer_doublesided(bank, (near,), near_hammers)
    program.sleep_until(module.timing.tREFW)
    program.check_bitflips(bank, victim, key="victim")
    return host.run(program).flips("victim")


def halfdouble_row_fraction(module_id: str, *, tras_factor: float = 1.0,
                            n_pr: int = 1, per_region: int = 128,
                            seed: int = 2025,
                            far_hammers: int = FAR_HAMMERS,
                            near_hammers: int = NEAR_HAMMERS,
                            ) -> HalfDoubleResult:
    """Percentage of rows with Half-Double bitflips on one module."""
    host = DRAMBenderHost(module_id, seed=seed)
    module = host.module
    bank = select_test_bank(module_id, module.geometry.total_banks, seed)
    rows = select_test_rows(module.geometry.rows_per_bank, per_region)
    tras_red_ns = tras_factor * module.timing.tRAS
    flipped = 0
    tested = 0
    for victim in rows:
        physical = module.mapping.logical_to_physical(victim)
        if physical + 2 >= module.mapping.rows_per_bank:
            continue
        tested += 1
        flips = perform_halfdouble(
            host, bank, victim, tras_red_ns=tras_red_ns, n_pr=n_pr,
            far_hammers=far_hammers, near_hammers=near_hammers)
        if flips > 0:
            flipped += 1
    return HalfDoubleResult(
        module_id=module_id, tras_factor=tras_factor, n_pr=n_pr,
        rows_tested=tested, rows_with_bitflips=flipped)
