"""Deterministic probe cache for Algorithm 1 RowHammer tests.

The device model is deterministic: a ``perform_rh`` probe is a pure
function of the calibrated charge model plus the probe coordinates
``(bank, victim, pattern, hammer_count, tras_red_ns, n_pr, temperature)``.
Algorithm 1 re-runs identical probes constantly — five iterations per test
point, the worst-case-pattern search repeating the ``hc_high`` probe, and
bisection revisiting hammer counts across iterations — so memoizing them
is free speedup with zero behavior change.

The cache is a thin instantiation of
:class:`repro.runtime.cache.DigestCache` (one shared implementation with
the sweep :class:`~repro.analysis.baselines.BaselineCache`), bound to a
*model digest* (:func:`repro.validation.physics.model_digest`) that hashes
the module's calibrated spec, vendor charge profile, anchor curves, and
retention parameters.  :meth:`~DigestCache.ensure` compares the current
digest against the bound one and drops every entry when they differ, so
recalibration (or any drift in the physics tables) can never serve stale
flip counts.  Passing ``disk_dir`` adds the standard persistent tier
(``probe_cache/`` under a campaign directory; registered with the unified
``--force`` clearing).
"""

from __future__ import annotations

from pathlib import Path

from repro.runtime.cache import DigestCache

#: Probe key: (bank, victim, pattern, hammer_count, tras_red_ns, n_pr,
#: temperature_c).  Everything a probe's outcome depends on besides the
#: calibrated model itself (which the digest covers).
ProbeKey = tuple

#: Default entry bound.  A full-bank sweep probes ~15 points per row per
#: test point; 2^18 entries hold several banks' worth of sweeps.
DEFAULT_MAXSIZE = 1 << 18


class ProbeCache(DigestCache):
    """Bounded LRU memo of ``perform_rh`` outcomes, keyed by probe
    coordinates and bound to a calibrated-model digest."""

    name = "probe"
    tier_subdir = "probe_cache"
    file_prefix = "probe"

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE,
                 disk_dir: str | Path | None = None) -> None:
        super().__init__(maxsize, disk_dir)

    def key_text(self, key: ProbeKey) -> str:
        # Pattern enums stringify through their name; everything else in a
        # probe key is a primitive with a stable repr.
        return repr(tuple(getattr(part, "name", part) for part in key))

    def encode(self, value: int) -> int:
        return int(value)
