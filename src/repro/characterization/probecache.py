"""Deterministic probe cache for Algorithm 1 RowHammer tests.

The device model is deterministic: a ``perform_rh`` probe is a pure
function of the calibrated charge model plus the probe coordinates
``(bank, victim, pattern, hammer_count, tras_red_ns, n_pr, temperature)``.
Algorithm 1 re-runs identical probes constantly — five iterations per test
point, the worst-case-pattern search repeating the ``hc_high`` probe, and
bisection revisiting hammer counts across iterations — so memoizing them
is free speedup with zero behavior change.

The cache is bound to a *model digest* (:func:`repro.validation.physics.
model_digest`), which hashes the module's calibrated spec, vendor charge
profile, anchor curves, and retention parameters.  :meth:`ensure` compares
the current digest against the bound one and drops every entry when they
differ, so recalibration (or any drift in the physics tables) can never
serve stale flip counts.
"""

from __future__ import annotations

from collections import OrderedDict

#: Probe key: (bank, victim, pattern, hammer_count, tras_red_ns, n_pr,
#: temperature_c).  Everything a probe's outcome depends on besides the
#: calibrated model itself (which the digest covers).
ProbeKey = tuple

#: Default entry bound.  A full-bank sweep probes ~15 points per row per
#: test point; 2^18 entries hold several banks' worth of sweeps.
DEFAULT_MAXSIZE = 1 << 18


class ProbeCache:
    """Bounded LRU memo of ``perform_rh`` outcomes, keyed by probe
    coordinates and bound to a calibrated-model digest."""

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.digest: str | None = None
        self._entries: OrderedDict[ProbeKey, int] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def ensure(self, digest: str) -> None:
        """Bind the cache to ``digest``, clearing it on calibration drift."""
        if self.digest == digest:
            return
        if self.digest is not None:
            self.invalidations += 1
        self._entries.clear()
        self.digest = digest

    def get(self, key: ProbeKey) -> int | None:
        """Cached flip count for ``key``, or ``None`` on a miss."""
        entries = self._entries
        try:
            value = entries[key]
        except KeyError:
            self.misses += 1
            return None
        entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: ProbeKey, flips: int) -> None:
        entries = self._entries
        entries[key] = flips
        entries.move_to_end(key)
        if len(entries) > self.maxsize:
            entries.popitem(last=False)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate(),
        }
