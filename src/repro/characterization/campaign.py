"""Characterization campaigns with persistent results (artifact workflow).

The paper's artifact ships raw DRAM-Bender results and scripts that parse
and plot them (``plot_db_figures.sh``).  This module is that workflow for
the simulated platform: run a multi-module campaign once, persist every
module's measurements as JSON under a results directory, and reload them
for analysis without re-running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.characterization.results import ModuleCharacterization
from repro.characterization.sweeps import characterize_module
from repro.dram.catalog import all_module_ids
from repro.dram.timing import TESTED_TRAS_FACTORS
from repro.errors import CharacterizationError


@dataclass
class CampaignConfig:
    """What a campaign covers."""

    module_ids: tuple[str, ...] = field(default_factory=all_module_ids)
    tras_factors: tuple[float, ...] = TESTED_TRAS_FACTORS
    n_prs: tuple[int, ...] = (1,)
    temperatures_c: tuple[float, ...] = (80.0,)
    per_region: int = 64
    seed: int = 2025

    def __post_init__(self) -> None:
        if not self.module_ids:
            raise CharacterizationError("campaign needs at least one module")
        if self.per_region <= 0:
            raise CharacterizationError("per_region must be positive")


class CharacterizationCampaign:
    """Runs, persists, and reloads multi-module characterization results."""

    def __init__(self, results_dir: str | Path,
                 config: CampaignConfig | None = None) -> None:
        self.results_dir = Path(results_dir)
        self.config = config or CampaignConfig()

    # ------------------------------------------------------------------
    def result_path(self, module_id: str) -> Path:
        return self.results_dir / f"{module_id}.json"

    def is_done(self, module_id: str) -> bool:
        return self.result_path(module_id).exists()

    def pending_modules(self) -> tuple[str, ...]:
        return tuple(m for m in self.config.module_ids if not self.is_done(m))

    # ------------------------------------------------------------------
    def run_module(self, module_id: str, *,
                   force: bool = False) -> ModuleCharacterization:
        """Characterize one module, persisting (or reusing) its results."""
        if module_id not in self.config.module_ids:
            raise CharacterizationError(
                f"{module_id} is not part of this campaign")
        path = self.result_path(module_id)
        if path.exists() and not force:
            return ModuleCharacterization.load(path)
        config = self.config
        result = characterize_module(
            module_id, tras_factors=config.tras_factors,
            n_prs=config.n_prs, temperatures_c=config.temperatures_c,
            per_region=config.per_region, seed=config.seed)
        self.results_dir.mkdir(parents=True, exist_ok=True)
        result.save(path)
        return result

    def run(self, *, force: bool = False) -> dict[str, ModuleCharacterization]:
        """Run (or resume) the whole campaign; returns all results."""
        return {module_id: self.run_module(module_id, force=force)
                for module_id in self.config.module_ids}

    def load(self) -> dict[str, ModuleCharacterization]:
        """Load a completed campaign's results without running anything."""
        missing = self.pending_modules()
        if missing:
            raise CharacterizationError(
                f"campaign incomplete; missing modules: {missing}")
        return {module_id: ModuleCharacterization.load(
            self.result_path(module_id))
            for module_id in self.config.module_ids}

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Progress summary (the artifact's check_*_status.py analogue)."""
        done = [m for m in self.config.module_ids if self.is_done(m)]
        lines = [f"campaign at {self.results_dir}: "
                 f"{len(done)}/{len(self.config.module_ids)} modules done"]
        pending = self.pending_modules()
        if pending:
            lines.append("pending: " + ", ".join(pending))
        return "\n".join(lines)
