"""Characterization campaigns with persistent results (artifact workflow).

The paper's artifact ships raw DRAM-Bender results and scripts that parse
and plot them (``plot_db_figures.sh``).  This module is that workflow for
the simulated platform: run a multi-module campaign once, persist every
module's measurements as JSON under a results directory, and reload them
for analysis without re-running.

Execution and persistence go through the shared job layer
(:class:`repro.service.execution.JobExecution`): modules run as
independent worker tasks (``jobs=N`` in parallel; ``jobs=1`` is the same
code run serially), results are written atomically, corrupt files found
on resume are quarantined and re-run, and transient failures are retried
and ledgered instead of killing the campaign.  Because each module's
measurements derive only from the campaign seed, parallel runs are
bit-identical to serial ones.

This class is deliberately a *thin adapter*: everything about running —
result paths, resume, the ledger/report, scheduler fan-out, the
``force`` contract — lives in :class:`JobExecution` (one copy, shared
with :class:`~repro.analysis.sweeprunner.SweepRunner`), and a lint-style
test keeps the execution plumbing from leaking back in here.  Only the
domain stays: how to build one module's task and load it back checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.characterization.results import ModuleCharacterization
from repro.characterization.sweeps import characterize_module
from repro.dram.catalog import all_module_ids
from repro.dram.timing import TESTED_TRAS_FACTORS
from repro.errors import CharacterizationError
from repro.exec import (
    checked_kernel,
    default_policy,
    fallback_kernel,
    validate_stage_kernel,
)
from repro.runtime import ProgressReporter, Task
from repro.service.execution import JobExecution
from repro.validation.physics import model_digest


@dataclass
class CampaignConfig:
    """What a campaign covers."""

    module_ids: tuple[str, ...] = field(default_factory=all_module_ids)
    tras_factors: tuple[float, ...] = TESTED_TRAS_FACTORS
    n_prs: tuple[int, ...] = (1,)
    temperatures_c: tuple[float, ...] = (80.0,)
    per_region: int = 64
    seed: int = 2025
    #: Device kernel; ``None`` resolves through the default
    #: :class:`repro.exec.ExecutionPolicy` when tasks are built, so worker
    #: processes receive a concrete name and never resolve on their own.
    #: Both kernels produce bit-identical measurements.
    kernel: str | None = None

    def __post_init__(self) -> None:
        if not self.module_ids:
            raise CharacterizationError("campaign needs at least one module")
        if self.per_region <= 0:
            raise CharacterizationError("per_region must be positive")
        if self.kernel is not None:
            validate_stage_kernel("device", self.kernel)


def _characterize_to(module_id: str, config: CampaignConfig, path: str,
                     kernel: str, cache_dir: str | None) -> None:
    """Worker task: characterize one module, persist it atomically.

    Module-level so it pickles across the process-pool boundary; the result
    travels back through the filesystem, not the pipe.  ``kernel`` arrives
    pre-resolved from the parent's execution policy.
    """
    result = characterize_module(
        module_id, tras_factors=config.tras_factors,
        n_prs=config.n_prs, temperatures_c=config.temperatures_c,
        per_region=config.per_region, seed=config.seed,
        kernel=kernel, cache_dir=cache_dir)
    result.save(path, durable=True)


def _load_checked(path: str | Path) -> ModuleCharacterization:
    """Load a persisted result and verify its model digest.

    A mismatch means the device model (or its calibration) changed since
    the result was produced; raising lets the runtime scheduler
    quarantine the stale file and re-run the module, so a resumed campaign
    can never silently mix measurements from two different models.  Results
    persisted before digests existed (``model_digest is None``) pass.
    """
    result = ModuleCharacterization.load(path)
    if result.model_digest is not None:
        expected = model_digest(result.module_id, result.seed)
        if result.model_digest != expected:
            raise CharacterizationError(
                f"{result.module_id}: persisted measurements came from a "
                f"different device model (stored digest "
                f"{result.model_digest[:12]}.., live {expected[:12]}..)")
    return result


class CharacterizationCampaign:
    """Runs, persists, and reloads multi-module characterization results."""

    def __init__(self, results_dir: str | Path,
                 config: CampaignConfig | None = None) -> None:
        self.config = config or CampaignConfig()
        #: The shared job-layer plumbing: result paths, resume, the
        #: ledger/report, scheduler fan-out, the ``force`` contract.
        self.execution = JobExecution(results_dir, seed=self.config.seed)
        self.results_dir = self.execution.results_dir

    # ------------------------------------------------------------------
    def result_path(self, module_id: str) -> Path:
        return self.execution.result_path(f"{module_id}.json")

    def is_done(self, module_id: str) -> bool:
        return self.execution.is_done(f"{module_id}.json")

    def pending_modules(self) -> tuple[str, ...]:
        return tuple(m for m in self.config.module_ids if not self.is_done(m))

    def ledger_path(self) -> Path:
        """Where the engine records failed attempts for this campaign."""
        return self.execution.ledger_path()

    def report_path(self) -> Path:
        """Where the engine persists its end-of-run ``run_report.json``."""
        return self.execution.report_path()

    def cache_dir(self) -> Path:
        """Where the scalar kernel's probe cache persists its entries."""
        return self.results_dir / "probe_cache"

    def _task(self, module_id: str) -> Task:
        path = self.result_path(module_id)
        # Resolve the device kernel once, here in the parent process (the
        # checking-forces-the-oracle rule included), so pickled workers
        # receive a concrete name and never resolve on their own.
        kernel = checked_kernel("device", self.config.kernel)
        persist = kernel == "scalar" and default_policy().persistent_caches()
        cache_dir = str(self.cache_dir()) if persist else None
        # Graceful degradation: a fast kernel that raises in a worker gets
        # one re-run on the stage's scalar oracle before retry accounting
        # resumes (no fallback when the oracle is already selected).
        fallback = fallback_kernel("device", kernel)
        fallback_args = None
        if fallback is not None:
            fallback_args = (module_id, self.config, str(path), fallback,
                             None)
        return Task(key=module_id, path=path, fn=_characterize_to,
                    args=(module_id, self.config, str(path), kernel,
                          cache_dir),
                    fallback_args=fallback_args)

    # ------------------------------------------------------------------
    def run_module(self, module_id: str, *,
                   force: bool = False) -> ModuleCharacterization:
        """Characterize one module, persisting (or reusing) its results."""
        if module_id not in self.config.module_ids:
            raise CharacterizationError(
                f"{module_id} is not part of this campaign")
        results = self.execution.run([self._task(module_id)],
                                     loader=_load_checked, force=force)
        return results[module_id]

    def run(self, *, force: bool = False, jobs: int | None = 1,
            progress: ProgressReporter | None = None,
            task_timeout_s: float | None = None,
            scheduler: str = "local", workers: int | None = None,
            serve: str | tuple[str, int] | None = None,
            lease_batch: int | None = None,
            ) -> dict[str, ModuleCharacterization]:
        """Run (or resume) the whole campaign; returns all results.

        ``jobs`` controls the worker-process count (``None`` = all cores);
        valid on-disk results are reused, corrupt ones quarantined and
        re-run.  The returned measurements are identical for any ``jobs``.
        ``force`` discards persisted results *and* every registered cache
        tier under the results directory before re-running.
        ``task_timeout_s`` arms the engine's watchdog: a module whose
        worker produces no result within the deadline is killed and
        retried (deadlines require worker processes, i.e. ``jobs > 1``).
        ``scheduler`` selects the execution backend
        (:mod:`repro.runtime.scheduler`): ``local`` drains on this host,
        ``fleet`` leases modules to ``workers`` spawned loopback workers
        and/or external ``repro-experiments worker`` clients connecting to
        ``serve`` — results are byte-identical either way.
        """
        tasks = [self._task(module_id)
                 for module_id in self.config.module_ids]
        return self.execution.run(tasks, loader=_load_checked, force=force,
                                  jobs=jobs, progress=progress,
                                  task_timeout_s=task_timeout_s,
                                  scheduler=scheduler, workers=workers,
                                  serve=serve, lease_batch=lease_batch)

    def load(self) -> dict[str, ModuleCharacterization]:
        """Load a completed campaign's results without running anything."""
        missing = self.pending_modules()
        if missing:
            raise CharacterizationError(
                f"campaign incomplete; missing modules: {missing}")
        return {module_id: _load_checked(self.result_path(module_id))
                for module_id in self.config.module_ids}

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Progress summary (the artifact's check_*_status.py analogue)."""
        done = [m for m in self.config.module_ids if self.is_done(m)]
        lines = [f"campaign at {self.results_dir}: "
                 f"{len(done)}/{len(self.config.module_ids)} modules done"]
        pending = self.pending_modules()
        if pending:
            lines.append("pending: " + ", ".join(pending))
        described = self.execution.describe_report()
        if described is not None:
            lines.append(described)
        lines.append(self.execution.describe_caches())
        return "\n".join(lines)
