"""Bi-section search for the RowHammer threshold (Alg. 1 lines 25-32)."""

from __future__ import annotations

from typing import Callable

from repro.errors import CharacterizationError


def bisect_threshold(flips_at: Callable[[int], int], *,
                     hc_high: int = 100_000, hc_low: int = 0,
                     hc_step: int = 1_000) -> int | None:
    """Find the minimum hammer count that induces at least one bitflip.

    ``flips_at(hc)`` runs a hammering test at ``hc`` activations per
    aggressor row and returns the observed bitflip count.  Mirrors the
    paper's search exactly: the interval ``(hc_low, hc_high]`` is narrowed
    until it is no wider than ``hc_step``, and the smallest hammer count
    observed to flip is returned.

    Returns ``None`` when even ``hc_high`` activations flip nothing (the row
    is not vulnerable within the search bound).
    """
    if hc_high <= hc_low:
        raise CharacterizationError("hc_high must exceed hc_low")
    if hc_step <= 0:
        raise CharacterizationError("hc_step must be positive")
    if flips_at(hc_high) == 0:
        return None
    nrh = hc_high
    low, high = hc_low, hc_high
    while high - low > hc_step:
        current = (high + low) // 2
        flips = flips_at(current)
        if flips == 0:
            low = current
        else:
            high = current
            nrh = current
    return nrh
