"""Selection of the rows a characterization run tests.

To keep experiment time reasonable the paper tests 3K rows per module: 1K
from the beginning, 1K from the middle, and 1K from the end of a randomly
selected bank (§4.2).  ``select_test_rows`` reproduces that sampling at any
scale.
"""

from __future__ import annotations

from repro.errors import CharacterizationError
from repro.rng import SeedTree


def select_test_rows(rows_per_bank: int, per_region: int = 1024) -> tuple[int, ...]:
    """Rows from the beginning, middle, and end of a bank.

    Returns up to ``3 * per_region`` distinct row addresses.  Rows at the
    very edge of each region are skipped so every victim has two physical
    neighbors for double-sided hammering.
    """
    if per_region <= 0:
        raise CharacterizationError("per_region must be positive")
    if rows_per_bank < 6 * per_region:
        raise CharacterizationError(
            f"bank of {rows_per_bank} rows too small for 3x{per_region} regions")
    middle_start = (rows_per_bank - per_region) // 2
    regions = (
        range(2, 2 + per_region),
        range(middle_start, middle_start + per_region),
        range(rows_per_bank - per_region - 2, rows_per_bank - 2),
    )
    selected: list[int] = []
    seen: set[int] = set()
    for region in regions:
        for row in region:
            if row not in seen:
                seen.add(row)
                selected.append(row)
    return tuple(selected)


def select_test_bank(module_id: str, total_banks: int, seed: int = 2025) -> int:
    """The 'randomly selected bank' of §4.2, deterministic per module."""
    if total_banks <= 0:
        raise CharacterizationError("total_banks must be positive")
    draw = SeedTree(seed).uniform("test-bank", module_id)
    return int(draw * total_banks) % total_banks
