"""Algorithm 1: profiling the effect of reduced tRAS on RowHammer.

This file is a line-for-line functional port of the paper's Algorithm 1:

* ``partial_restoration`` — N_PR consecutive ACT/PRE cycles with reduced
  tRAS on the victim row (built via the program builder);
* ``perform_rh`` — initialize rows, partially restore the victim, hammer
  double-sided, wait out the refresh window, count bitflips;
* ``measure_row`` — find the worst-case data pattern, measure BER at 100K
  hammers, pre-check for retention bitflips (N_RH = 0), then bi-section
  search for N_RH.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bender.host import DRAMBenderHost
from repro.characterization.bisect import bisect_threshold
from repro.characterization.probecache import ProbeCache
from repro.characterization.results import RowMeasurement
from repro.dram.disturbance import ALL_PATTERNS, DataPattern
from repro.errors import CharacterizationError
from repro.validation.physics import model_digest


@dataclass(frozen=True)
class CharacterizationConfig:
    """Test-loop parameters (§4.3 defaults)."""

    hc_high: int = 100_000
    hc_low: int = 0
    hc_step: int = 1_000
    iterations: int = 5  #: the paper repeats tests five times
    patterns: tuple[DataPattern, ...] = ALL_PATTERNS

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise CharacterizationError("iterations must be >= 1")
        if not self.patterns:
            raise CharacterizationError("need at least one data pattern")


def aggressors_of(host: DRAMBenderHost, victim: int) -> tuple[int, ...]:
    """The two physically adjacent rows of a victim (reverse-engineered
    through the module's internal mapping, §4.3)."""
    rows = host.module.mapping.neighbors(victim, distance=1)
    if len(rows) != 2:
        raise CharacterizationError(
            f"victim {victim} lacks two physical neighbors (got {rows})")
    return rows


def perform_rh(host: DRAMBenderHost, bank: int, victim: int,
               pattern: DataPattern, hammer_count: int,
               tras_red_ns: float, n_pr: int,
               cache: ProbeCache | None = None) -> int:
    """One RowHammer test on one victim row; returns the bitflip count.

    Follows Algorithm 1's ``perform_RH`` (lines 6-11): init rows, partial
    restoration with ``tras_red_ns`` repeated ``n_pr`` times, double-sided
    hammering at maximum rate, idle until the end of the refresh window
    (to expose retention failures caused by weak restoration), then read.

    The device model is deterministic, so a probe's outcome is fully
    determined by its coordinates; when a :class:`ProbeCache` is supplied,
    repeated probes are served from it instead of re-running the program.
    """
    module = host.module
    if cache is not None:
        key = (bank, victim, pattern, hammer_count, tras_red_ns, n_pr,
               module.temperature_c)
        flips = cache.get(key)
        if flips is not None:
            return flips
    aggressors = aggressors_of(host, victim)
    program = host.new_program()
    program.init_rows(bank, victim, aggressors, pattern)
    program.partial_restoration(bank, victim, tras_red_ns, n_pr)
    program.hammer_doublesided(bank, aggressors, hammer_count)
    program.sleep_until(module.timing.tREFW)
    program.check_bitflips(bank, victim, key="victim")
    flips = host.run(program).flips("victim")
    if cache is not None:
        cache.put(key, flips)
    return flips


def find_wcdp(host: DRAMBenderHost, bank: int, victim: int,
              tras_red_ns: float, n_pr: int,
              config: CharacterizationConfig,
              cache: ProbeCache | None = None) -> DataPattern:
    """The data pattern causing the most bitflips at ``hc_high`` hammers
    (Alg. 1 lines 16-19).  Ties resolve to the first pattern tested."""
    best_pattern = config.patterns[0]
    best_flips = -1
    for pattern in config.patterns:
        flips = perform_rh(host, bank, victim, pattern,
                           config.hc_high, tras_red_ns, n_pr, cache)
        if flips > best_flips:
            best_pattern, best_flips = pattern, flips
    return best_pattern


def measure_row(host: DRAMBenderHost, bank: int, victim: int, *,
                tras_red_ns: float | None = None, n_pr: int = 1,
                config: CharacterizationConfig | None = None,
                cache: ProbeCache | None = None) -> RowMeasurement:
    """Measure one row's N_RH and BER at one test point (Alg. 1 main loop).

    The paper runs five iterations and keeps the lowest N_RH / highest BER;
    the device model is deterministic, so iterations reproduce identical
    values, but the min/max discipline is preserved.  A :class:`ProbeCache`
    (created locally when none is passed) memoizes repeated probes; it is
    re-bound to the module's current calibrated-model digest on every call,
    so calibration drift empties it rather than serving stale counts.
    """
    config = config or CharacterizationConfig()
    module = host.module
    nominal = module.timing.tRAS
    if tras_red_ns is None:
        tras_red_ns = nominal
    if not 0 < tras_red_ns <= nominal:
        raise CharacterizationError(
            f"tras_red_ns must be in (0, {nominal}], got {tras_red_ns}")
    if n_pr < 1:
        raise CharacterizationError("n_pr must be >= 1")
    if cache is None:
        cache = ProbeCache()
    cache.ensure(model_digest(module.spec.module_id, module.seed))

    wcdp = find_wcdp(host, bank, victim, tras_red_ns, n_pr, config, cache)
    cells = module.spec.row_bits()
    best_nrh: int | None = None
    best_ber = 0.0
    for _ in range(config.iterations):
        # BER at the maximum hammer count (Alg. 1 line 20).
        flips = perform_rh(host, bank, victim, wcdp,
                           config.hc_high, tras_red_ns, n_pr, cache)
        best_ber = max(best_ber, flips / cells)
        # Retention pre-check: bitflips with zero hammers => N_RH = 0
        # (Alg. 1 lines 21-24).
        retention_flips = perform_rh(host, bank, victim, wcdp,
                                     0, tras_red_ns, n_pr, cache)
        if retention_flips > 0:
            best_nrh = 0
            continue
        # Bi-section search (Alg. 1 lines 25-32).
        nrh = bisect_threshold(
            lambda hc: perform_rh(host, bank, victim, wcdp,
                                  hc, tras_red_ns, n_pr, cache),
            hc_high=config.hc_high, hc_low=config.hc_low,
            hc_step=config.hc_step)
        if nrh is not None and (best_nrh is None or nrh < best_nrh):
            best_nrh = nrh
    return RowMeasurement(
        bank=bank, row=victim,
        tras_factor=tras_red_ns / nominal, n_pr=n_pr,
        temperature_c=host.module.temperature_c,
        wcdp=wcdp.short_name, nrh=best_nrh, ber=best_ber)
