"""Data-retention characterization under partial restoration (§7, Fig. 14).

Two granularities are provided:

* :func:`sample_retention_failures` — the literal test: write a solid data
  pattern, partially restore the row ``n`` times, idle for the target
  retention time, read back.  Exercises the full program/executor path on a
  sample of rows.
* :func:`retention_failure_fractions` — the bank-scale analytic fraction
  from the device physics, used to regenerate Fig. 14's small fractions
  (1e-6 .. 1e-2) that row sampling could not resolve without testing every
  row of every bank.
"""

from __future__ import annotations

from repro.bender.host import DRAMBenderHost
from repro.characterization.rows import select_test_bank, select_test_rows
from repro.dram.catalog import module_spec
from repro.dram.charge import ChargeModel
from repro.dram.disturbance import DataPattern
from repro.errors import CharacterizationError
from repro.units import MS

#: The retention times the paper tests (§7).
RETENTION_TIMES_NS: tuple[float, ...] = (
    64 * MS, 96 * MS, 128 * MS, 256 * MS, 512 * MS, 1024 * MS)


def sample_retention_failures(module_id: str, *, tras_factor: float,
                              n_pr: int, retention_time_ns: float,
                              per_region: int = 64, seed: int = 2025,
                              temperature_c: float = 80.0,
                              pattern: DataPattern = DataPattern.SOLID_ONES,
                              ) -> tuple[int, int]:
    """(rows with retention bitflips, rows tested) via real test programs."""
    if retention_time_ns <= 0:
        raise CharacterizationError("retention time must be positive")
    host = DRAMBenderHost(module_id, temperature_c=temperature_c, seed=seed)
    module = host.module
    bank = select_test_bank(module_id, module.geometry.total_banks, seed)
    rows = select_test_rows(module.geometry.rows_per_bank, per_region)
    tras_red_ns = tras_factor * module.timing.tRAS
    failed = 0
    for row in rows:
        program = host.new_program()
        program.init_rows(bank, row, (), pattern)
        program.partial_restoration(bank, row, tras_red_ns, n_pr)
        program.sleep(retention_time_ns)
        program.check_bitflips(bank, row, key="row")
        if host.run(program).flips("row") > 0:
            failed += 1
    return failed, len(rows)


def retention_failure_fractions(module_id: str, *,
                                tras_factors: tuple[float, ...],
                                n_restorations: tuple[int, ...] = (1, 10),
                                retention_times_ns: tuple[float, ...] = RETENTION_TIMES_NS,
                                temperature_c: float = 80.0,
                                ) -> dict[tuple[float, int, float], float]:
    """Bank-scale fraction of rows with retention failures (Fig. 14).

    Keys are ``(tras_factor, n_pr, retention_time_ns)``.
    """
    charge = ChargeModel(module_spec(module_id))
    out: dict[tuple[float, int, float], float] = {}
    for factor in tras_factors:
        for n_pr in n_restorations:
            for wait_ns in retention_times_ns:
                out[(factor, n_pr, wait_ns)] = charge.retention_fail_fraction(
                    factor, n_pr, wait_ns, temperature_c=temperature_c)
    return out
