"""Characterization methodology (§4) and experiments (§5-§7).

Implements the paper's Algorithm 1 — worst-case data pattern selection,
retention pre-check, bi-section ``N_RH`` search, and BER measurement — plus
the sweeps that produce every characterization figure: charge-restoration
latency (Figs. 6-9), temperature (Fig. 10), repeated partial restoration
(Figs. 11-12), Half-Double (Fig. 13), and data retention (Fig. 14).
"""

from repro.characterization.results import (
    ModuleCharacterization,
    RowMeasurement,
)
from repro.characterization.algorithm1 import (
    CharacterizationConfig,
    measure_row,
    perform_rh,
)
from repro.characterization.probecache import ProbeCache
from repro.characterization.rows import select_test_rows
from repro.characterization.sweeps import (
    CHARACTERIZATION_KERNELS,
    characterize_module,
    sweep_npr,
    sweep_temperature,
    sweep_tras,
)
from repro.characterization.vectorized import measure_rows
from repro.characterization.halfdouble import halfdouble_row_fraction
from repro.characterization.retention import retention_failure_fractions

__all__ = [
    "ModuleCharacterization",
    "RowMeasurement",
    "CharacterizationConfig",
    "measure_row",
    "measure_rows",
    "perform_rh",
    "ProbeCache",
    "select_test_rows",
    "CHARACTERIZATION_KERNELS",
    "characterize_module",
    "sweep_tras",
    "sweep_npr",
    "sweep_temperature",
    "halfdouble_row_fraction",
    "retention_failure_fractions",
]
