"""Bank-level vectorized form of Algorithm 1 (the characterization fast path).

:func:`measure_rows` measures a whole batch of victim rows at one test
point, producing :class:`RowMeasurement` values *bit-identical* to calling
:func:`repro.characterization.algorithm1.measure_row` per row (the scalar
path is the parity oracle — see ``tests/test_characterization_vectorized.py``).

It exploits two structural facts about Algorithm 1's probes:

* a ``perform_rh`` probe program has a fixed shape (init three rows,
  restore the victim, hammer double-sided, sleep out the refresh window,
  read the victim), so its end state — program clock, victim dose, idle
  wait — is an analytic function of ``(hammer_count, tras_red_ns, n_pr)``
  that can be computed once per probe instead of stepping instructions.
  The arithmetic replicates the stepping executor op-for-op (including the
  distinct clock accumulation of the unrolled vs. macro restoration forms);
* the device model is deterministic, so each unique
  ``(row, pattern, hammer_count)`` probe is evaluated once per batch and
  memoized — exactly the value a :class:`ProbeCache`-backed scalar run
  would produce — while the worst-case-pattern search, BER probe, and
  bi-section all index into the shared memo.

The per-row physics are evaluated through
:class:`repro.dram.kernels.BankTraits` over index vectors, with
:class:`~repro.dram.kernels.EvalCounters` recording how many per-row model
evaluations were actually performed (the CI smoke test bounds this).
"""

from __future__ import annotations

import numpy as np

from repro.bender.host import DRAMBenderHost
from repro.bender.program import TestProgram
from repro.characterization.algorithm1 import (
    CharacterizationConfig,
    aggressors_of,
)
from repro.characterization.results import RowMeasurement
from repro.dram.disturbance import BLAST_RADIUS_WEIGHTS, DataPattern
from repro.dram.kernels import BankTraits, EvalCounters
from repro.dram.timing import TimingParams
from repro.errors import CharacterizationError


def _probe_state(timing: TimingParams, columns_per_row: int,
                 tras_red_ns: float, n_pr: int,
                 hammer_count: int) -> tuple[float, float]:
    """Analytic end state of one ``perform_rh`` program.

    Returns ``(wait_ns, equivalent)``: the victim's idle time since its
    last restoration at the moment of the read, and its per-aggressor
    double-sided dose.  Every float operation replicates the stepping
    executor's expression order exactly (see module docstring), which is
    what makes the fast path bit-identical rather than merely close.
    """
    write_ns = (timing.tRCD + columns_per_row * timing.tCCD
                + timing.tWR + timing.tRP)
    clock = 0.0
    clock += write_ns  # WriteRow victim (last_restore := 0.0)
    clock += write_ns  # WriteRow aggressor 1
    clock += write_ns  # WriteRow aggressor 2
    last_restore = 0.0
    if n_pr > TestProgram.UNROLL_LIMIT:
        # Bulk Restore macro: one clock advance for the whole loop.
        last_restore = clock
        clock += n_pr * (tras_red_ns + timing.tRP)
    else:
        # Unrolled ACT/PRE pairs accumulate the clock incrementally, which
        # is not bit-identical to the single multiply above — replicate it.
        for _ in range(n_pr):
            last_restore = clock
            clock += tras_red_ns + timing.tRP
    near = 0.0
    if hammer_count > 0:
        # Each aggressor's hammer deposits its count on the victim in turn.
        near = (near + hammer_count) + hammer_count
        clock += hammer_count * 2 * timing.tRC
    if clock < timing.tREFW:
        clock += timing.tREFW - clock
    wait_ns = max(0.0, clock - last_restore)
    # dose.effective() with far == 0.0 (the victim is never a distance-2
    # neighbor of its own aggressors), per aggressor.
    equivalent = (near + BLAST_RADIUS_WEIGHTS[2] * 0.0) / 2.0
    return wait_ns, equivalent


class _BatchProber:
    """Evaluates probes over row batches, memoizing each unique probe."""

    def __init__(self, batch: BankTraits, timing: TimingParams,
                 columns_per_row: int, tras_red_ns: float, n_pr: int,
                 temperature_c: float, counters: EvalCounters) -> None:
        self.batch = batch
        self.timing = timing
        self.columns_per_row = columns_per_row
        self.tras_red_ns = tras_red_ns
        self.n_pr = n_pr
        self.temperature_c = temperature_c
        self.counters = counters
        factor = min(tras_red_ns / timing.tRAS, 1.0)
        # Restoration streak state of the victim at read time (matching the
        # device model: a full-latency ACT resets the partial streak).
        self.factor = 1.0 if factor >= 1.0 else factor
        self.n_pr_eff = 1 if factor >= 1.0 else max(1, n_pr)
        self._states: dict[int, tuple[float, float]] = {}
        self._flips: dict[tuple[DataPattern, int], dict[int, int]] = {}

    def _state(self, hammer_count: int) -> tuple[float, float]:
        state = self._states.get(hammer_count)
        if state is None:
            state = _probe_state(self.timing, self.columns_per_row,
                                 self.tras_red_ns, self.n_pr, hammer_count)
            self._states[hammer_count] = state
        return state

    def flips(self, pattern: DataPattern, hammer_count: int,
              idx: np.ndarray) -> np.ndarray:
        """Bitflip counts of probe ``(pattern, hammer_count)`` over ``idx``,
        evaluating only rows not already in the memo."""
        store = self._flips.setdefault((pattern, hammer_count), {})
        missing = [int(i) for i in idx if int(i) not in store]
        if missing:
            wait_ns, equivalent = self._state(hammer_count)
            midx = np.asarray(missing, dtype=np.intp)
            eq = np.full(len(midx), equivalent, dtype=np.float64)
            wait = np.full(len(midx), wait_ns, dtype=np.float64)
            hammered = self.batch.hammer_flips(
                eq, factor=self.factor, n_pr=self.n_pr_eff,
                temperature_c=self.temperature_c, pattern=pattern, idx=midx)
            retained = self.batch.retention_flips(
                factor=self.factor, n_pr=self.n_pr_eff, wait_ns=wait,
                temperature_c=self.temperature_c, idx=midx)
            # Half-Double never fires in Algorithm 1 probes (far dose is
            # zero), matching DRAMModule._halfdouble_flips returning 0.
            total = hammered + retained
            for i, flip_count in zip(missing, total):
                store[i] = int(flip_count)
            self.counters.model_evals += len(missing)
            self.counters.probe_batches += 1
        self.counters.cache_hits += len(idx) - len(missing)
        return np.array([store[int(i)] for i in idx], dtype=np.int64)


def measure_rows(host: DRAMBenderHost, bank: int, victims, *,
                 tras_red_ns: float | None = None, n_pr: int = 1,
                 config: CharacterizationConfig | None = None,
                 counters: EvalCounters | None = None) -> list[RowMeasurement]:
    """Measure a batch of victim rows at one test point (Alg. 1, fast path).

    Bit-identical to ``[measure_row(host, bank, v, ...) for v in victims]``
    — same validation errors, same worst-case-pattern tie-breaks, same
    bi-section trajectory — evaluated through the bank-level kernels with
    one pass per unique probe.  Pass an :class:`EvalCounters` to observe
    how much model work was actually done.
    """
    config = config or CharacterizationConfig()
    counters = counters if counters is not None else EvalCounters()
    module = host.module
    nominal = module.timing.tRAS
    if tras_red_ns is None:
        tras_red_ns = nominal
    if not 0 < tras_red_ns <= nominal:
        raise CharacterizationError(
            f"tras_red_ns must be in (0, {nominal}], got {tras_red_ns}")
    if n_pr < 1:
        raise CharacterizationError("n_pr must be >= 1")
    victims = tuple(victims)
    if not victims:
        return []
    for victim in victims:
        aggressors_of(host, victim)  # same error, same order as scalar path

    batch = module.bank_traits(bank, victims)
    prober = _BatchProber(batch, module.timing,
                          module.geometry.columns_per_row, tras_red_ns, n_pr,
                          module.temperature_c, counters)
    n = len(victims)
    all_idx = np.arange(n, dtype=np.intp)

    # Worst-case data pattern per row (Alg. 1 lines 16-19): first strict
    # maximum over the configured pattern order.
    best_flips = np.full(n, -1, dtype=np.int64)
    wcdp_idx = np.zeros(n, dtype=np.intp)
    for pattern_i, pattern in enumerate(config.patterns):
        flips = prober.flips(pattern, config.hc_high, all_idx)
        improved = flips > best_flips
        wcdp_idx[improved] = pattern_i
        best_flips = np.where(improved, flips, best_flips)

    cells = module.spec.row_bits()
    nrh_out: list[int | None] = [None] * n
    ber_out: list[float] = [0.0] * n
    for pattern_i, pattern in enumerate(config.patterns):
        group = np.nonzero(wcdp_idx == pattern_i)[0]
        if not len(group):
            continue
        # BER at hc_high (Alg. 1 line 20) — a memo hit from the WCDP scan.
        ber_flips = prober.flips(pattern, config.hc_high, group)
        for j, i in enumerate(group):
            ber_out[i] = int(ber_flips[j]) / cells
        # Retention pre-check (lines 21-24): flips at zero hammers => 0.
        retention = prober.flips(pattern, 0, group)
        for i in group[retention > 0]:
            nrh_out[i] = 0
        searchable = group[retention == 0]
        if not len(searchable):
            continue
        # Bi-section (lines 25-32), all rows of this pattern in lockstep;
        # rows whose hc_high probe found nothing stay None.
        high_flips = prober.flips(pattern, config.hc_high, searchable)
        active_rows = searchable[high_flips > 0]
        if not len(active_rows):
            continue
        low = np.full(len(active_rows), config.hc_low, dtype=np.int64)
        high = np.full(len(active_rows), config.hc_high, dtype=np.int64)
        nrh = np.full(len(active_rows), config.hc_high, dtype=np.int64)
        active = (high - low) > config.hc_step
        while active.any():
            current = (high + low) // 2
            for hc in np.unique(current[active]):
                sel = np.nonzero(active & (current == hc))[0]
                flips = prober.flips(pattern, int(hc), active_rows[sel])
                zero = flips == 0
                low[sel[zero]] = hc
                high[sel[~zero]] = hc
                nrh[sel[~zero]] = hc
            active = (high - low) > config.hc_step
        for j, i in enumerate(active_rows):
            nrh_out[i] = int(nrh[j])

    # The model is deterministic, so the paper's five iterations reproduce
    # identical values; the scalar path's min/max reduction over them is the
    # single-iteration value computed above.
    return [
        RowMeasurement(
            bank=bank, row=victim,
            tras_factor=tras_red_ns / nominal, n_pr=n_pr,
            temperature_c=module.temperature_c,
            wcdp=config.patterns[wcdp_idx[i]].short_name,
            nrh=nrh_out[i], ber=ber_out[i])
        for i, victim in enumerate(victims)
    ]
