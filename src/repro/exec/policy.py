"""The single kernel-resolution site of the repository.

Every execution layer used to pick its kernel on its own: the CLI forced
the scalar oracle under ``--check-protocol`` in two places,
:meth:`MemorySystem.run` special-cased observers, and
``effective_sim_kernel`` duplicated the forcing for library callers.  An
:class:`ExecutionPolicy` replaces all of that: it is built once per
invocation (CLI) or once per process (library default), and every layer
asks it which concrete kernel to run.

Stages and their kernels::

    stage     scalar oracle   fast path    array tier
    device    scalar          vectorized   array        (repro.dram.kernels)
    sim       scalar          batched      array        (repro.sim.kernels)
    host      stepping        compiled     -            (repro.bender.compile)

The sim stage's array tier additionally switches mitigation dispatch
from per-activation calls to the epoch protocol
(:meth:`repro.mitigations.base.MitigationMechanism.on_activation_epoch`)
— a kernel-level change only; the policy still just names the kernel.

``kernel_policy`` selects per stage: ``"scalar"`` runs every oracle,
``"fast"`` every fast path, ``"array"`` the numpy structure-of-arrays tier
(falling back to the fastest kernel on stages without one — the host
stage's compiled fold), and ``"auto"`` (default) the stage's historical
default (vectorized / batched / stepping).  Per-stage overrides
(``device_kernel`` / ``sim_kernel`` / ``host_kernel`` — the old CLI flags'
deprecation targets) beat the policy; an explicit kernel passed at a call
site beats both.  Protocol checking (``check_protocol != "off"``) beats
everything: the checker observes the instruction-level oracles, so the
scalar kernel is forced and the "oracle forced" note is emitted exactly
once per policy (i.e. once per CLI invocation).

The forcing *reason* lives with the checker
(:func:`repro.validation.checker.requires_scalar_oracle`); the *decision*
lives here, and a lint test (``tests/test_exec_policy.py``) asserts no
other module grows its own kernel-selection branching again.
"""

from __future__ import annotations

import sys
import warnings
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError

#: Per-stage kernel names: stage -> (scalar oracle, fast path[, array
#: tier]).  The first name is always the oracle, the second the historical
#: fast path; stages with a numpy structure-of-arrays backend list it
#: third.
STAGE_KERNELS: dict[str, tuple[str, ...]] = {
    "device": ("scalar", "vectorized", "array"),
    "sim": ("scalar", "batched", "array"),
    "host": ("stepping", "compiled"),
}

#: What ``auto`` resolves to per stage — the pre-policy defaults, kept so
#: adopting the policy changes no default behavior (the host stage keeps
#: the stepping executor as the safe default; ``fast`` opts into the
#: compiled fold).
AUTO_KERNELS: dict[str, str] = {
    "device": "vectorized",
    "sim": "batched",
    "host": "stepping",
}

#: The selectable policies (``--kernel-policy``).  ``array`` picks each
#: stage's structure-of-arrays tier where one exists and the fastest
#: remaining kernel elsewhere.
KERNEL_POLICIES = ("scalar", "fast", "array", "auto")


def _check_modes() -> tuple[str, ...]:
    from repro.validation.checker import CHECK_MODES
    return CHECK_MODES


def _requires_oracle(mode: str) -> bool:
    from repro.validation.checker import requires_scalar_oracle
    return requires_scalar_oracle(mode)


def fallback_kernel(stage: str, kernel: str) -> str | None:
    """The degradation target if ``kernel`` fails at runtime, or ``None``.

    Graceful degradation always lands on the stage's scalar oracle — the
    reference implementation every fast path is parity-tested against —
    so a numpy edge case in a fast kernel costs one point's speed, never
    its correctness.  Returns ``None`` when ``kernel`` already *is* the
    oracle (there is nothing safer to fall back to).
    """
    validate_stage_kernel(stage, kernel)
    oracle = STAGE_KERNELS[stage][0]
    return None if kernel == oracle else oracle


def validate_stage_kernel(stage: str, kernel: str) -> str:
    """Validate a concrete kernel name for ``stage``."""
    try:
        names = STAGE_KERNELS[stage]
    except KeyError:
        raise ConfigError(
            f"unknown execution stage {stage!r} "
            f"(choose from {', '.join(STAGE_KERNELS)})") from None
    if kernel not in names:
        raise ConfigError(
            f"{stage} kernel must be one of {names}, got {kernel!r}")
    return kernel


@dataclass
class ExecutionPolicy:
    """How one invocation executes: kernels, oracle forcing, cache tiers.

    ``cache_tier`` gates the persistent cache tiers: ``"auto"``/``"disk"``
    let campaign and sweep runners persist their caches under the output
    directory, ``"memory"`` keeps memoization in-process only, ``"off"``
    disables the caches the policy controls.
    """

    kernel_policy: str = "auto"
    check_protocol: str = "off"
    device_kernel: str | None = None
    sim_kernel: str | None = None
    host_kernel: str | None = None
    cache_tier: str = "auto"
    #: Whether the once-per-invocation "oracle forced" note went out.
    _oracle_noted: bool = field(default=False, init=False, repr=False,
                                compare=False)

    def __post_init__(self) -> None:
        if self.kernel_policy not in KERNEL_POLICIES:
            raise ConfigError(
                f"kernel policy must be one of {KERNEL_POLICIES}, "
                f"got {self.kernel_policy!r}")
        if self.check_protocol not in _check_modes():
            raise ConfigError(
                f"check-protocol mode must be one of {_check_modes()}, "
                f"got {self.check_protocol!r}")
        if self.cache_tier not in ("auto", "disk", "memory", "off"):
            raise ConfigError(
                f"cache tier must be auto/disk/memory/off, "
                f"got {self.cache_tier!r}")
        for stage, override in (("device", self.device_kernel),
                                ("sim", self.sim_kernel),
                                ("host", self.host_kernel)):
            if override is not None:
                validate_stage_kernel(stage, override)

    # ------------------------------------------------------------------
    # resolution (the one place kernels are chosen)
    # ------------------------------------------------------------------
    def _override(self, stage: str) -> str | None:
        return {"device": self.device_kernel, "sim": self.sim_kernel,
                "host": self.host_kernel}[stage]

    def kernel_for(self, stage: str, explicit: str | None = None, *,
                   observer: bool = False) -> str:
        """The concrete kernel ``stage`` should run, checking aside.

        Precedence: an ``explicit`` call-site kernel, then (for the sim
        stage) the attached-observer safety default, then the policy's
        per-stage override, then ``kernel_policy``.
        """
        names = STAGE_KERNELS[stage]
        scalar = names[0]
        if explicit is not None:
            return validate_stage_kernel(stage, explicit)
        if observer:
            # An attached observer re-validates the per-request command
            # stream; the oracle is the safe default unless a kernel was
            # requested explicitly.
            return scalar
        override = self._override(stage)
        if override is not None:
            return override
        if self.kernel_policy == "scalar":
            return scalar
        if self.kernel_policy == "fast":
            return names[1]
        if self.kernel_policy == "array":
            # The stage's array tier, or the fastest kernel it has (the
            # host stage folds doses analytically either way).
            return names[-1]
        return AUTO_KERNELS[stage]

    def checked_kernel_for(self, stage: str, explicit: str | None = None, *,
                           check_protocol: str | None = None) -> str:
        """Like :meth:`kernel_for`, but protocol checking forces the oracle.

        ``check_protocol`` overrides the policy's own mode (e.g. a
        per-call ``check_protocol=`` argument); the "oracle forced" note
        is emitted at most once per policy, and only when the forcing
        actually changed the outcome.
        """
        mode = (check_protocol if check_protocol is not None
                else self.check_protocol)
        if mode not in _check_modes():
            raise ConfigError(
                f"check-protocol mode must be one of {_check_modes()}, "
                f"got {mode!r}")
        scalar = STAGE_KERNELS[stage][0]
        if not _requires_oracle(mode):
            return self.kernel_for(stage, explicit)
        if self.kernel_for(stage, explicit) != scalar:
            self._note_oracle_forced()
        return scalar

    def _note_oracle_forced(self) -> None:
        if self._oracle_noted:
            return
        self._oracle_noted = True
        print("note: --check-protocol requires the scalar oracle kernels; "
              "overriding the requested fast path", file=sys.stderr)

    # ------------------------------------------------------------------
    def persistent_caches(self) -> bool:
        """Whether runners may persist cache disk tiers."""
        return self.cache_tier in ("auto", "disk")

    def caches_enabled(self) -> bool:
        """Whether policy-controlled memo caches run at all."""
        return self.cache_tier != "off"

    def with_overrides(self, **changes) -> "ExecutionPolicy":
        """A copy with fields replaced (note state not shared)."""
        return replace(self, **changes)


# ---------------------------------------------------------------------------
# process-wide default policy
# ---------------------------------------------------------------------------
_default_policy = ExecutionPolicy()


def default_policy() -> ExecutionPolicy:
    """The policy layers consult when no explicit kernel/policy is given."""
    return _default_policy


def set_default_policy(policy: ExecutionPolicy) -> ExecutionPolicy:
    """Install the process-wide default policy (the CLI's one resolution).

    Also aligns the process-wide default check mode, so library code that
    only knows :func:`repro.validation.default_check_mode` agrees with the
    policy about whether runs are checked.
    """
    from repro.validation import set_default_check_mode

    global _default_policy
    if not isinstance(policy, ExecutionPolicy):
        raise ConfigError(f"expected an ExecutionPolicy, got {policy!r}")
    _default_policy = policy
    set_default_check_mode(policy.check_protocol)
    return policy


def reset_default_policy() -> None:
    """Restore the built-in default policy (test isolation)."""
    set_default_policy(ExecutionPolicy())


def resolve_kernel(stage: str, explicit: str | None = None, *,
                   observer: bool = False) -> str:
    """Default-policy shorthand for :meth:`ExecutionPolicy.kernel_for`."""
    return _default_policy.kernel_for(stage, explicit, observer=observer)


def checked_kernel(stage: str, explicit: str | None = None, *,
                   check_protocol: str | None = None) -> str:
    """Default-policy shorthand for
    :meth:`ExecutionPolicy.checked_kernel_for`."""
    return _default_policy.checked_kernel_for(
        stage, explicit, check_protocol=check_protocol)


def warn_deprecated_flag(flag: str, replacement: str) -> None:
    """One warning per deprecated CLI flag (the shims' shared voice)."""
    warnings.warn(
        f"{flag} is deprecated; use {replacement}",
        DeprecationWarning, stacklevel=3)
