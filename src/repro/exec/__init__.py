"""Cross-cutting execution policy: kernels, oracle forcing, parity.

``repro.exec`` is the single place the repository decides *how* to run:

* :class:`ExecutionPolicy` (:mod:`repro.exec.policy`) — which kernel each
  stage (device characterization, system simulation, program execution)
  uses, how protocol checking forces the scalar oracles, and whether the
  persistent cache tiers are active.  Every layer that used to pick a
  kernel on its own now asks the policy.
* :func:`assert_parity` (:mod:`repro.exec.parity`) — the one
  oracle-comparison harness all parity test suites share.

The companion cache implementation lives in
:mod:`repro.runtime.cache` (one :class:`~repro.runtime.cache.DigestCache`
behind both the probe and baseline caches).
"""

from repro.exec.parity import assert_all_parity, assert_parity, parity_diff
from repro.exec.policy import (
    AUTO_KERNELS,
    KERNEL_POLICIES,
    STAGE_KERNELS,
    ExecutionPolicy,
    checked_kernel,
    default_policy,
    fallback_kernel,
    reset_default_policy,
    resolve_kernel,
    set_default_policy,
    validate_stage_kernel,
    warn_deprecated_flag,
)

__all__ = [
    "AUTO_KERNELS",
    "KERNEL_POLICIES",
    "STAGE_KERNELS",
    "ExecutionPolicy",
    "assert_all_parity",
    "assert_parity",
    "checked_kernel",
    "default_policy",
    "fallback_kernel",
    "parity_diff",
    "reset_default_policy",
    "resolve_kernel",
    "set_default_policy",
    "validate_stage_kernel",
    "warn_deprecated_flag",
]
