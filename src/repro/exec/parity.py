"""The one oracle-comparison harness behind every parity suite.

Both fast paths carry the same contract — the scalar oracle and the fast
kernel must produce *bit-identical* results — and both test suites used to
hand-roll the comparison (a ``_run_pair`` helper on the sim side, inline
loops on the characterization side).  :func:`assert_parity` replaces both:
run the oracle, run the candidate, and deep-compare the results exactly,
reporting the first mismatching paths instead of an opaque ``!=``.

Comparison is structural and exact: dataclasses are compared field by
field, mappings key by key, sequences element by element, floats with
``==`` plus a ``repr`` check (so a value that would serialize differently
— the actual byte-identity contract of persisted rows and rendered
figures — cannot sneak through as "equal").
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Sequence

#: Mismatches reported before the diff is truncated.
MAX_REPORTED = 8


def parity_diff(expected: Any, actual: Any, path: str = "result",
                ) -> list[str]:
    """Paths at which ``actual`` differs from ``expected`` (empty = equal)."""
    out: list[str] = []
    _diff(expected, actual, path, out)
    return out


def _describe(value: Any) -> str:
    text = repr(value)
    return text if len(text) <= 120 else text[:117] + "..."


def _diff(expected: Any, actual: Any, path: str, out: list[str]) -> None:
    if len(out) >= MAX_REPORTED:
        return
    if type(expected) is not type(actual):
        out.append(f"{path}: type {type(expected).__name__} != "
                   f"{type(actual).__name__}")
        return
    if dataclasses.is_dataclass(expected) and not isinstance(expected, type):
        for f in dataclasses.fields(expected):
            _diff(getattr(expected, f.name), getattr(actual, f.name),
                  f"{path}.{f.name}", out)
        return
    if isinstance(expected, dict):
        for key in expected.keys() | actual.keys():
            if key not in expected or key not in actual:
                out.append(f"{path}[{key!r}]: present on one side only")
                continue
            _diff(expected[key], actual[key], f"{path}[{key!r}]", out)
        return
    if isinstance(expected, (list, tuple)):
        if len(expected) != len(actual):
            out.append(f"{path}: length {len(expected)} != {len(actual)}")
            return
        for i, (e, a) in enumerate(zip(expected, actual)):
            _diff(e, a, f"{path}[{i}]", out)
        return
    if isinstance(expected, float):
        # == catches value drift; repr catches representation drift
        # (e.g. -0.0 vs 0.0), which would break byte-identical persistence.
        if expected == actual and repr(expected) == repr(actual):
            return
        out.append(f"{path}: {_describe(expected)} != {_describe(actual)}")
        return
    if expected != actual:
        out.append(f"{path}: {_describe(expected)} != {_describe(actual)}")


def assert_parity(oracle: Callable[[], Any] | Any,
                  candidate: Callable[[], Any] | Any, *,
                  label: str = "fast path") -> tuple[Any, Any]:
    """Assert a candidate reproduces its oracle bit-exactly.

    ``oracle`` and ``candidate`` may be zero-argument callables (run here,
    oracle first — matching the order the hand-rolled helpers used) or
    already-computed results.  Returns ``(expected, actual)`` so callers
    can keep asserting domain-specific properties on either.
    """
    expected = oracle() if callable(oracle) else oracle
    actual = candidate() if callable(candidate) else candidate
    mismatches = parity_diff(expected, actual)
    if mismatches:
        shown = "\n  ".join(mismatches)
        raise AssertionError(
            f"{label} diverged from the oracle at "
            f"{len(mismatches)}+ path(s):\n  {shown}")
    return expected, actual


def assert_all_parity(oracle_results: Sequence[Any],
                      candidate_results: Sequence[Any], *,
                      label: str = "fast path") -> None:
    """Batch form: element ``i`` of the candidate must match element ``i``
    of the oracle (lengths included)."""
    assert_parity(list(oracle_results), list(candidate_results), label=label)
