"""Time, frequency, and size units used throughout the library.

All device-level timing in this library is expressed in **nanoseconds** as
floats, and all simulator timing in integer **memory-controller clock
cycles**.  These helpers make call sites explicit about which unit a literal
carries, e.g. ``tras = 33 * NS`` or ``window = 64 * MS``.
"""

from __future__ import annotations

#: One nanosecond (the base time unit).
NS: float = 1.0
#: One microsecond in nanoseconds.
US: float = 1_000.0
#: One millisecond in nanoseconds.
MS: float = 1_000_000.0
#: One second in nanoseconds.
S: float = 1_000_000_000.0

#: One kibibyte / mebibyte / gibibyte in bytes.
KIB: int = 1024
MIB: int = 1024 * KIB
GIB: int = 1024 * MIB

#: Kilo as used for hammer counts (paper reports e.g. "4.8K activations").
K: int = 1000


def ns_to_cycles(time_ns: float, freq_mhz: float) -> int:
    """Convert a duration in nanoseconds to clock cycles (rounded up).

    DRAM standards specify timings in nanoseconds while controllers count
    cycles; JEDEC rounding is "round up to the next whole cycle".
    """
    if time_ns < 0:
        raise ValueError(f"negative duration: {time_ns}")
    cycles = time_ns * freq_mhz / 1000.0
    whole = int(cycles)
    return whole if cycles == whole else whole + 1


def cycles_to_ns(cycles: int, freq_mhz: float) -> float:
    """Convert clock cycles to nanoseconds."""
    if cycles < 0:
        raise ValueError(f"negative cycle count: {cycles}")
    return cycles * 1000.0 / freq_mhz


def format_time_ns(time_ns: float) -> str:
    """Render a nanosecond duration with a human-friendly unit.

    >>> format_time_ns(33.0)
    '33ns'
    >>> format_time_ns(374_000_000.0)
    '374ms'
    """
    if time_ns >= S:
        return _strip(time_ns / S) + "s"
    if time_ns >= MS:
        return _strip(time_ns / MS) + "ms"
    if time_ns >= US:
        return _strip(time_ns / US) + "us"
    return _strip(time_ns) + "ns"


def _strip(value: float) -> str:
    """Format a float dropping a trailing '.0'."""
    text = f"{value:.1f}"
    if text.endswith(".0"):
        return text[:-2]
    return text
