"""Deterministic random-number plumbing.

Characterization of a simulated DRAM module must be reproducible: running the
same test twice on the same module has to observe the same weak cells, the
same per-row thresholds, and the same jitter, exactly as re-testing a
physical chip would.  We achieve this with a *seed tree*: every named entity
(module, bank, row, experiment) derives a child seed from its parent's seed
and its own name, so the randomness is a pure function of the path from the
root.
"""

from __future__ import annotations

import hashlib

import numpy as np

_MASK64 = (1 << 64) - 1


def derive_seed(parent_seed: int, *path: object) -> int:
    """Derive a child seed from ``parent_seed`` and a path of labels.

    The derivation is a SHA-256 over the parent seed and the string forms of
    the path components, truncated to 64 bits.  It is stable across runs,
    platforms, and Python versions.
    """
    hasher = hashlib.sha256()
    hasher.update(str(parent_seed & _MASK64).encode())
    for part in path:
        hasher.update(b"/")
        hasher.update(str(part).encode())
    return int.from_bytes(hasher.digest()[:8], "little")


class SeedTree:
    """A node in a deterministic seed hierarchy.

    >>> root = SeedTree(42)
    >>> a = root.child("module", "H5")
    >>> b = root.child("module", "H5")
    >>> a.seed == b.seed
    True
    >>> a.seed == root.child("module", "S6").seed
    False
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed & _MASK64

    def child(self, *path: object) -> "SeedTree":
        """Return the child node addressed by ``path``."""
        return SeedTree(derive_seed(self.seed, *path))

    def generator(self, *path: object) -> np.random.Generator:
        """Return a numpy ``Generator`` seeded by the child at ``path``.

        Constructed as ``Generator(PCG64(seed))`` — exactly what
        ``default_rng(seed)`` builds, so the streams are bit-identical —
        but without ``default_rng``'s dispatch overhead, which dominates
        when sampling per-row traits constructs one generator per row.
        """
        return np.random.Generator(
            np.random.PCG64(derive_seed(self.seed, *path)))

    def uniform(self, *path: object) -> float:
        """A single deterministic uniform draw in [0, 1) for ``path``."""
        return float(self.generator(*path).random())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedTree(seed={self.seed:#x})"
