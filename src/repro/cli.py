"""Command-line interface: list and run the paper's experiments.

Installed as ``repro-experiments``::

    repro-experiments list
    repro-experiments run fig4
    repro-experiments run table4 --out table4.txt
    repro-experiments catalog S6
    repro-experiments validate
    repro-experiments sweep --check-protocol strict

``run``, ``campaign``, and ``sweep`` accept ``--check-protocol
{off,tolerant,strict}`` to attach the :mod:`repro.validation` protocol
checker (and, for campaigns, the physics invariant guards); ``validate``
runs the physics guards plus the deterministic fault-injection matrix and
fails if any fault class goes undetected.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.analysis.experiments import EXPERIMENTS, run_experiment
from repro.analysis.render import curve_table
from repro.analysis.sweeprunner import SweepGrid, SweepRunner
from repro.characterization.campaign import (
    CampaignConfig,
    CharacterizationCampaign,
)
from repro.dram.catalog import all_module_ids, all_module_specs, module_spec
from repro.dram.timing import TESTED_TRAS_FACTORS
from repro.errors import ReproError
from repro.exec import (
    KERNEL_POLICIES,
    ExecutionPolicy,
    set_default_policy,
    warn_deprecated_flag,
)
from repro.runtime import PrintProgress, describe_run_report
from repro.runtime.cache import summarize_caches
from repro.sim.configloader import EvaluationConfig
from repro.validation import check_physics


def _render(result: object) -> str:
    """Best-effort text rendering of an experiment result."""
    if isinstance(result, str):
        return result
    if isinstance(result, dict):
        flat_numeric = all(isinstance(v, (int, float))
                           for v in result.values())
        if flat_numeric and result:
            return curve_table(result)
        lines = []
        for key, value in result.items():
            lines.append(f"[{key}]")
            lines.append(repr(value))
        return "\n".join(lines)
    return repr(result)


def cmd_list(_: argparse.Namespace) -> int:
    width = max(len(identifier) for identifier in EXPERIMENTS)
    for identifier, experiment in EXPERIMENTS.items():
        print(f"{identifier:<{width}}  {experiment.description}")
    return 0


def _install_policy(args: argparse.Namespace, *,
                    check_protocol: str | None = None) -> ExecutionPolicy:
    """Build this invocation's :class:`ExecutionPolicy` — the one place the
    CLI decides kernels, oracle forcing, and cache tiers — and install it
    as the process default every layer resolves against.

    The old per-stage flags survive as deprecation shims: each warns once
    and lands as the matching per-stage override, which resolves to the
    byte-identical kernel choice.
    """
    device = getattr(args, "device_kernel", None)
    sim = getattr(args, "sim_kernel", None)
    if device is not None:
        warn_deprecated_flag("--device-kernel",
                             "--kernel-policy scalar|fast|array|auto")
    if sim is not None:
        warn_deprecated_flag("--sim-kernel",
                             "--kernel-policy scalar|fast|array|auto")
    if check_protocol is None:
        check_protocol = getattr(args, "check_protocol", None) or "off"
    policy = ExecutionPolicy(
        kernel_policy=getattr(args, "kernel_policy", "auto"),
        check_protocol=check_protocol,
        device_kernel=device, sim_kernel=sim,
        cache_tier=getattr(args, "cache_tier", "auto"))
    return set_default_policy(policy)


def cmd_run(args: argparse.Namespace) -> int:
    _install_policy(args)
    result = run_experiment(args.experiment)
    text = _render(result)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def cmd_catalog(args: argparse.Namespace) -> int:
    if args.module:
        spec = module_spec(args.module)
        print(f"{spec.module_id}: {spec.part_number} ({spec.form_factor}, "
              f"{spec.die_density_gbit} Gb, die {spec.die_revision}, "
              f"x{spec.device_width}, {spec.num_chips} chips)")
        for factor in TESTED_TRAS_FACTORS:
            value = spec.lowest_nrh[factor]
            print(f"  {factor:.2f} x tRAS: lowest N_RH = {value}")
        return 0
    for spec in all_module_specs():
        print(f"{spec.module_id:<5} {spec.part_number:<25} "
              f"{spec.die_density_gbit:>3} Gb  x{spec.device_width}")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    _install_policy(args)
    module_ids = (tuple(args.modules.split(","))
                  if args.modules else CampaignConfig().module_ids)
    config = CampaignConfig(module_ids=module_ids, per_region=args.rows)
    campaign = CharacterizationCampaign(args.dir, config)
    if args.status:
        print(campaign.summary())
        return 0
    if args.check_protocol != "off":
        # Physics guards before spending hours measuring a broken model;
        # strict raises, tolerant reports and continues.
        for module_id in module_ids:
            for problem in check_physics(module_id,
                                         mode=args.check_protocol):
                print(f"physics: {problem}", file=sys.stderr)
    campaign.run(jobs=args.jobs, progress=PrintProgress(), force=args.force,
                 task_timeout_s=args.task_timeout,
                 scheduler=args.scheduler, workers=args.workers,
                 serve=args.serve, lease_batch=args.lease_batch)
    print(campaign.summary())
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.config:
        grid = EvaluationConfig.load(args.config).sweep_grid()
        if args.check_protocol is not None:
            grid.check_protocol = args.check_protocol
    else:
        grid = SweepGrid(
            mitigations=tuple(args.mitigations.split(",")),
            nrh_values=tuple(int(v) for v in args.nrh.split(",")),
            requests=args.requests,
            check_protocol=args.check_protocol or "off")
    # The config file may turn checking on: build the policy from the
    # grid's resolved mode so oracle forcing agrees with what runs.
    _install_policy(args, check_protocol=grid.check_protocol)
    runner = SweepRunner(args.dir, grid)
    if args.status:
        done, total = runner.status()
        print(f"{done}/{total} runs done")
        return 0
    rows = runner.run(jobs=args.jobs, progress=PrintProgress(),
                      force=args.force, task_timeout_s=args.task_timeout,
                      scheduler=args.scheduler, workers=args.workers,
                      serve=args.serve, lease_batch=args.lease_batch)
    violations = sum(row.violations for row in rows)
    if grid.check_protocol != "off":
        print(f"protocol check ({grid.check_protocol}): "
              f"{violations} violation(s) across {len(rows)} points")
    for (mitigation, label), series in runner.aggregate(rows).items():
        values = " ".join(f"nrh={n}:{v:.4f}" for n, v in sorted(series.items()))
        print(f"{mitigation:<9} {label:<9} {values}")
    report = runner.report_path()
    if report.exists():
        try:
            print(describe_run_report(json.loads(report.read_text())))
        except (OSError, ValueError):
            pass  # a torn report must not break the sweep summary
    print(summarize_caches(args.dir))
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.runtime.distributed import run_worker
    from repro.runtime.scheduler import parse_address
    host, port = parse_address(args.connect)
    if host == "0.0.0.0":  # --connect :7045 means "this host"
        host = "127.0.0.1"
    code = run_worker(host, port, worker_id=args.id, batch=args.batch,
                      scratch_dir=args.scratch)
    if code == 3:
        print("coordinator went away (run finished or aborted)",
              file=sys.stderr)
        return 0  # a drained fleet is a success from the worker's side
    return code


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.validation.matrix import run_matrix
    failures = 0
    module_ids = (tuple(args.modules.split(","))
                  if args.modules else all_module_ids())
    for module_id in module_ids:
        problems = check_physics(module_id, mode="tolerant")
        for problem in problems:
            print(f"physics: {problem}", file=sys.stderr)
        failures += len(problems)
    print(f"physics invariants: {len(module_ids)} module(s) checked, "
          f"{failures} problem(s)")
    if args.skip_faults:
        return 1 if failures else 0
    if args.dir:
        report = run_matrix(args.dir, seed=args.seed)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-validate-") as workdir:
            report = run_matrix(workdir, seed=args.seed)
    print(report.summary())
    if args.out:
        report.save(args.out)
        print(f"wrote {args.out}")
    return 0 if report.all_covered and not failures else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.validation.chaos import run_chaos_matrix
    if args.dir:
        report = run_chaos_matrix(args.dir, seed=args.seed, only=args.only)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
            report = run_chaos_matrix(workdir, seed=args.seed,
                                      only=args.only)
    print(report.summary())
    if args.out:
        report.save(args.out)
        print(f"wrote {args.out}")
    return 0 if report.all_covered else 1


def _add_scheduler_flags(parser: argparse.ArgumentParser,
                         unit: str) -> None:
    """The shared ``--scheduler`` knobs of campaign and sweep."""
    from repro.runtime.scheduler import SCHEDULER_NAMES
    parser.add_argument("--scheduler", default="local",
                        choices=SCHEDULER_NAMES,
                        help=f"execution backend: drain {unit}s on this "
                             f"host (local) or lease them to a worker "
                             f"fleet over TCP (fleet); results are "
                             f"byte-identical either way")
    parser.add_argument("--workers", type=int, default=None,
                        help="fleet only: loopback worker processes the "
                             "coordinator spawns itself (default: 2)")
    parser.add_argument("--serve", default=None, metavar="HOST:PORT",
                        help="fleet only: listen here for external "
                             "`repro-experiments worker` clients "
                             "(default: an ephemeral loopback port for "
                             "the spawned workers only)")
    parser.add_argument("--lease-batch", type=int, default=None,
                        metavar="N",
                        help=f"fleet only: {unit}s leased to a worker "
                             f"per round trip (default: 4)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the PaCRAM paper's tables and figures.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list all experiments")
    list_parser.set_defaults(func=cmd_list)

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--out", help="write the result to a file")
    run_parser.add_argument("--check-protocol", default="off",
                            choices=("off", "tolerant", "strict"),
                            help="attach the DDR protocol checker to every "
                                 "simulation this experiment runs")
    run_parser.add_argument("--kernel-policy", default="auto",
                            choices=KERNEL_POLICIES,
                            help="execution policy for every stage: scalar "
                                 "oracles, fast paths, numpy array "
                                 "tiers, or per-stage defaults "
                                 "(results are bit-identical either "
                                 "way; --check-protocol forces the "
                                 "oracles)")
    run_parser.add_argument("--cache-tier", default="auto",
                            choices=("auto", "disk", "memory", "off"),
                            help="memoization tiers: persist to disk, "
                                 "memory only, or off")
    run_parser.add_argument("--sim-kernel", default=None,
                            choices=("scalar", "batched"),
                            help="deprecated: use --kernel-policy "
                                 "(kept as a per-stage override)")
    run_parser.set_defaults(func=cmd_run)

    catalog_parser = subparsers.add_parser(
        "catalog", help="show the tested-module catalog")
    catalog_parser.add_argument("module", nargs="?",
                                help="module id for per-module detail")
    catalog_parser.set_defaults(func=cmd_catalog)

    campaign_parser = subparsers.add_parser(
        "campaign", help="run a resumable characterization campaign")
    campaign_parser.add_argument("--dir", default="campaign_results",
                                 help="results directory")
    campaign_parser.add_argument("--modules",
                                 help="comma-separated module ids (default: all 30)")
    campaign_parser.add_argument("--rows", type=int, default=64,
                                 help="rows per bank region")
    campaign_parser.add_argument("--jobs", type=int, default=None,
                                 help="parallel worker processes "
                                      "(default: all cores)")
    campaign_parser.add_argument("--task-timeout", type=float, default=None,
                                 metavar="SECONDS",
                                 help="per-module deadline: a worker that "
                                      "produces no result in time is "
                                      "killed and the module retried "
                                      "(needs --jobs > 1)")
    campaign_parser.add_argument("--status", action="store_true",
                                 help="only report progress")
    campaign_parser.add_argument("--check-protocol", default="off",
                                 choices=("off", "tolerant", "strict"),
                                 help="run the physics invariant guards on "
                                      "every module before measuring "
                                      "(forces the scalar oracle kernels)")
    campaign_parser.add_argument("--kernel-policy", default="auto",
                                 choices=KERNEL_POLICIES,
                                 help="execution policy for every stage "
                                      "(results are bit-identical either "
                                      "way)")
    campaign_parser.add_argument("--cache-tier", default="auto",
                                 choices=("auto", "disk", "memory", "off"),
                                 help="memoization tiers: persist to disk, "
                                      "memory only, or off")
    campaign_parser.add_argument("--force", action="store_true",
                                 help="re-run every module and clear every "
                                      "persisted cache tier under --dir")
    campaign_parser.add_argument("--device-kernel", default=None,
                                 choices=("scalar", "vectorized"),
                                 help="deprecated: use --kernel-policy "
                                      "(kept as a per-stage override)")
    campaign_parser.add_argument("--sim-kernel", default=None,
                                 choices=("scalar", "batched"),
                                 help="deprecated: use --kernel-policy "
                                      "(kept as a per-stage override)")
    _add_scheduler_flags(campaign_parser, "module")
    campaign_parser.set_defaults(func=cmd_campaign)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a resumable system-evaluation sweep")
    sweep_parser.add_argument("--dir", default="sweep_results",
                              help="results directory")
    sweep_parser.add_argument("--mitigations", default="PARA,RFM",
                              help="comma-separated mitigation names")
    sweep_parser.add_argument("--nrh", default="1024,64",
                              help="comma-separated N_RH values")
    sweep_parser.add_argument("--requests", type=int, default=2_000,
                              help="memory requests per workload")
    sweep_parser.add_argument("--config",
                              help="JSON evaluation-config file (overrides "
                                   "the other grid flags; see A.6)")
    sweep_parser.add_argument("--jobs", type=int, default=None,
                              help="parallel worker processes "
                                   "(default: all cores)")
    sweep_parser.add_argument("--task-timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="per-point deadline: a worker that "
                                   "produces no row in time is killed and "
                                   "the point retried (needs --jobs > 1)")
    sweep_parser.add_argument("--status", action="store_true",
                              help="only report progress")
    sweep_parser.add_argument("--check-protocol", default=None,
                              choices=("off", "tolerant", "strict"),
                              help="protocol-check every grid point "
                                   "(default: the config file's setting, "
                                   "else off)")
    sweep_parser.add_argument("--kernel-policy", default="auto",
                              choices=KERNEL_POLICIES,
                              help="execution policy for every grid point "
                                   "(rows are bit-identical either way; "
                                   "--check-protocol forces the scalar "
                                   "oracle)")
    sweep_parser.add_argument("--cache-tier", default="auto",
                              choices=("auto", "disk", "memory", "off"),
                              help="memoization tiers: persist to disk, "
                                   "memory only, or off")
    sweep_parser.add_argument("--sim-kernel", default=None,
                              choices=("scalar", "batched"),
                              help="deprecated: use --kernel-policy "
                                   "(kept as a per-stage override)")
    sweep_parser.add_argument("--force", action="store_true",
                              help="re-run every point and clear every "
                                   "persisted cache tier under --dir")
    _add_scheduler_flags(sweep_parser, "point")
    sweep_parser.set_defaults(func=cmd_sweep)

    worker_parser = subparsers.add_parser(
        "worker", help="join a fleet coordinator as an execution worker")
    worker_parser.add_argument("--connect", required=True,
                               metavar="HOST:PORT",
                               help="coordinator address (the campaign/"
                                    "sweep process running with "
                                    "--scheduler fleet --serve ...)")
    worker_parser.add_argument("--batch", type=int, default=4,
                               help="tasks to request per lease")
    worker_parser.add_argument("--scratch", default=None, metavar="DIR",
                               help="scratch directory for task results "
                                    "(default: a temporary directory)")
    worker_parser.add_argument("--id", default=None,
                               help="worker name in the coordinator's "
                                    "ledger and run report "
                                    "(default: w-<hostname>-<pid>)")
    worker_parser.set_defaults(func=cmd_worker)

    validate_parser = subparsers.add_parser(
        "validate", help="run physics guards and the fault-injection matrix")
    validate_parser.add_argument("--modules",
                                 help="comma-separated module ids for the "
                                      "physics guards (default: all 30)")
    validate_parser.add_argument("--seed", type=int, default=2025,
                                 help="fault-matrix seed")
    validate_parser.add_argument("--dir",
                                 help="keep fault-scenario artifacts here "
                                      "(default: a temporary directory)")
    validate_parser.add_argument("--out",
                                 help="write the matrix report JSON here")
    validate_parser.add_argument("--skip-faults", action="store_true",
                                 help="physics guards only")
    validate_parser.set_defaults(func=cmd_validate)

    chaos_parser = subparsers.add_parser(
        "chaos", help="run the deterministic runtime chaos matrix")
    chaos_parser.add_argument("--seed", type=int, default=2025,
                              help="chaos-scenario seed")
    chaos_parser.add_argument("--only",
                              help="run only scenarios whose name contains "
                                   "this substring (e.g. 'fleet')")
    chaos_parser.add_argument("--dir",
                              help="keep chaos-scenario artifacts here "
                                   "(default: a temporary directory)")
    chaos_parser.add_argument("--out",
                              help="write the chaos report JSON here")
    chaos_parser.set_defaults(func=cmd_chaos)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
