"""Command-line interface: list and run the paper's experiments.

Installed as ``repro-experiments``::

    repro-experiments list
    repro-experiments run fig4
    repro-experiments run table4 --out table4.txt
    repro-experiments catalog S6
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.experiments import EXPERIMENTS, run_experiment
from repro.analysis.render import curve_table
from repro.analysis.sweeprunner import SweepGrid, SweepRunner
from repro.characterization.campaign import (
    CampaignConfig,
    CharacterizationCampaign,
)
from repro.dram.catalog import all_module_specs, module_spec
from repro.dram.timing import TESTED_TRAS_FACTORS
from repro.errors import ReproError
from repro.runtime import PrintProgress
from repro.sim.configloader import EvaluationConfig


def _render(result: object) -> str:
    """Best-effort text rendering of an experiment result."""
    if isinstance(result, str):
        return result
    if isinstance(result, dict):
        flat_numeric = all(isinstance(v, (int, float))
                           for v in result.values())
        if flat_numeric and result:
            return curve_table(result)
        lines = []
        for key, value in result.items():
            lines.append(f"[{key}]")
            lines.append(repr(value))
        return "\n".join(lines)
    return repr(result)


def cmd_list(_: argparse.Namespace) -> int:
    width = max(len(identifier) for identifier in EXPERIMENTS)
    for identifier, experiment in EXPERIMENTS.items():
        print(f"{identifier:<{width}}  {experiment.description}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    result = run_experiment(args.experiment)
    text = _render(result)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def cmd_catalog(args: argparse.Namespace) -> int:
    if args.module:
        spec = module_spec(args.module)
        print(f"{spec.module_id}: {spec.part_number} ({spec.form_factor}, "
              f"{spec.die_density_gbit} Gb, die {spec.die_revision}, "
              f"x{spec.device_width}, {spec.num_chips} chips)")
        for factor in TESTED_TRAS_FACTORS:
            value = spec.lowest_nrh[factor]
            print(f"  {factor:.2f} x tRAS: lowest N_RH = {value}")
        return 0
    for spec in all_module_specs():
        print(f"{spec.module_id:<5} {spec.part_number:<25} "
              f"{spec.die_density_gbit:>3} Gb  x{spec.device_width}")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    module_ids = (tuple(args.modules.split(","))
                  if args.modules else CampaignConfig().module_ids)
    config = CampaignConfig(module_ids=module_ids,
                            per_region=args.rows)
    campaign = CharacterizationCampaign(args.dir, config)
    if args.status:
        print(campaign.summary())
        return 0
    campaign.run(jobs=args.jobs, progress=PrintProgress())
    print(campaign.summary())
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.config:
        grid = EvaluationConfig.load(args.config).sweep_grid()
    else:
        grid = SweepGrid(
            mitigations=tuple(args.mitigations.split(",")),
            nrh_values=tuple(int(v) for v in args.nrh.split(",")),
            requests=args.requests)
    runner = SweepRunner(args.dir, grid)
    if args.status:
        done, total = runner.status()
        print(f"{done}/{total} runs done")
        return 0
    rows = runner.run(jobs=args.jobs, progress=PrintProgress())
    for (mitigation, label), series in runner.aggregate(rows).items():
        values = " ".join(f"nrh={n}:{v:.4f}" for n, v in sorted(series.items()))
        print(f"{mitigation:<9} {label:<9} {values}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the PaCRAM paper's tables and figures.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list all experiments")
    list_parser.set_defaults(func=cmd_list)

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--out", help="write the result to a file")
    run_parser.set_defaults(func=cmd_run)

    catalog_parser = subparsers.add_parser(
        "catalog", help="show the tested-module catalog")
    catalog_parser.add_argument("module", nargs="?",
                                help="module id for per-module detail")
    catalog_parser.set_defaults(func=cmd_catalog)

    campaign_parser = subparsers.add_parser(
        "campaign", help="run a resumable characterization campaign")
    campaign_parser.add_argument("--dir", default="campaign_results",
                                 help="results directory")
    campaign_parser.add_argument("--modules",
                                 help="comma-separated module ids (default: all 30)")
    campaign_parser.add_argument("--rows", type=int, default=64,
                                 help="rows per bank region")
    campaign_parser.add_argument("--jobs", type=int, default=None,
                                 help="parallel worker processes "
                                      "(default: all cores)")
    campaign_parser.add_argument("--status", action="store_true",
                                 help="only report progress")
    campaign_parser.set_defaults(func=cmd_campaign)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a resumable system-evaluation sweep")
    sweep_parser.add_argument("--dir", default="sweep_results",
                              help="results directory")
    sweep_parser.add_argument("--mitigations", default="PARA,RFM",
                              help="comma-separated mitigation names")
    sweep_parser.add_argument("--nrh", default="1024,64",
                              help="comma-separated N_RH values")
    sweep_parser.add_argument("--requests", type=int, default=2_000,
                              help="memory requests per workload")
    sweep_parser.add_argument("--config",
                              help="JSON evaluation-config file (overrides "
                                   "the other grid flags; see A.6)")
    sweep_parser.add_argument("--jobs", type=int, default=None,
                              help="parallel worker processes "
                                   "(default: all cores)")
    sweep_parser.add_argument("--status", action="store_true",
                              help="only report progress")
    sweep_parser.set_defaults(func=cmd_sweep)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
