"""PARA: Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).

On every row activation, with a small probability the memory controller
refreshes neighbors of the activated row.  PARA keeps essentially no state
(near-zero area) but, because its trigger is blind, it issues many
unnecessary preventive refreshes — the canonical *high-performance-overhead,
low-area-overhead* mitigation.

Probability scaling: each trigger refreshes one side (two rows, covering the
+/- 2 blast radius on that side); the per-activation probability is
``PARA_STRENGTH / N_RH``, which bounds the chance that an aggressor reaches
``N_RH`` activations with an unrefreshed victim to
``exp(-PARA_STRENGTH / 2)`` per side — the knob the original paper exposes
as its failure-probability target.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.mitigations.base import Action, MitigationMechanism, PreventiveRefresh

#: Expected preventively-refreshed rows per N_RH activations (per side x2).
PARA_STRENGTH = 5.5


class PARA(MitigationMechanism):
    """Probabilistic preventive refresh of adjacent rows."""

    name = "PARA"

    def __init__(self, nrh: int, *, strength: float = PARA_STRENGTH,
                 seed: int = 1) -> None:
        super().__init__(nrh)
        self.probability = min(1.0, strength / nrh)
        self._rng = np.random.default_rng(seed)

    def on_activation(self, flat_bank: int, row: int,
                      now_ns: float) -> Sequence[Action]:
        self.counters.activations_observed += 1
        if self._rng.random() >= self.probability:
            return []
        self.counters.triggers += 1
        side = (1, 2) if self._rng.random() < 0.5 else (-1, -2)
        return [PreventiveRefresh(flat_bank, row, victim_offsets=side)]

    def area_mm2(self, banks: int) -> float:
        """PARA stores only an LFSR: negligible area (§3's 'almost zero')."""
        return 1e-4
