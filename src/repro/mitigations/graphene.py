"""Graphene: Misra-Gries frequent-row tracking (Park et al., MICRO 2020).

Graphene keeps, per bank, a Misra-Gries summary (CAM of row address +
counter pairs plus a spillover counter) sized so that *any* row reaching the
refresh threshold within a refresh window is guaranteed to be present in the
table.  Detection is exact, so Graphene issues the fewest unnecessary
preventive refreshes and has the lowest performance overhead — but its table
size grows as ``N_RH`` shrinks, reaching 10.38 mm^2 (4.45 % of a Xeon) at
``N_RH = 32`` (§3): the canonical *high-area-overhead* mitigation.
"""

from __future__ import annotations

from collections.abc import Sequence

import math

from repro.errors import ConfigError
from repro.mitigations.base import Action, MitigationMechanism, PreventiveRefresh

#: Preventive-refresh threshold as a fraction of N_RH (blast radius 2 means
#: a victim accumulates disturbance from two aggressor rows on each side).
THRESHOLD_FRACTION = 0.25
#: Activations possible in one refresh window per bank (tREFW / tRC).
ACTS_PER_WINDOW = 688_000


class _BankTable:
    """One bank's Misra-Gries summary (space-saving variant)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.counts: dict[int, int] = {}
        self.spillover = 0

    def observe(self, row: int) -> int:
        """Record one activation of ``row``; returns its estimated count."""
        if row in self.counts:
            self.counts[row] += 1
            return self.counts[row]
        if len(self.counts) < self.capacity:
            self.counts[row] = self.spillover + 1
            return self.counts[row]
        self.spillover += 1
        minimum_row = min(self.counts, key=self.counts.__getitem__)
        if self.spillover > self.counts[minimum_row]:
            # Replace the minimum entry (space-saving substitution).
            value = self.counts.pop(minimum_row)
            self.counts[row] = value + 1
            return self.counts[row]
        return self.spillover

    def reset_row(self, row: int) -> None:
        if row in self.counts:
            self.counts[row] = self.spillover

    def clear(self) -> None:
        self.counts.clear()
        self.spillover = 0


class Graphene(MitigationMechanism):
    """Exact-guarantee aggressor tracking with per-bank Misra-Gries tables."""

    name = "Graphene"
    #: Exact Misra-Gries detection bounds every victim's hammer count, so
    #: observers may hold Graphene to a deterministic coverage guarantee.
    deterministic_coverage = True

    def __init__(self, nrh: int, *, acts_per_window: int = ACTS_PER_WINDOW) -> None:
        super().__init__(nrh)
        if acts_per_window <= 0:
            raise ConfigError("acts_per_window must be positive")
        self.threshold = max(1, int(nrh * THRESHOLD_FRACTION))
        #: Misra-Gries guarantee: W/T entries catch every row with count > T.
        self.entries_per_bank = math.ceil(acts_per_window / self.threshold)
        self._tables: dict[int, _BankTable] = {}

    def on_activation(self, flat_bank: int, row: int,
                      now_ns: float) -> Sequence[Action]:
        self.counters.activations_observed += 1
        table = self._tables.get(flat_bank)
        if table is None:
            table = _BankTable(self.entries_per_bank)
            self._tables[flat_bank] = table
        count = table.observe(row)
        if count < self.threshold:
            return []
        table.reset_row(row)
        self.counters.triggers += 1
        return [PreventiveRefresh(flat_bank, row)]

    def on_refresh_window(self, now_ns: float) -> None:
        for table in self._tables.values():
            table.clear()

    def area_mm2(self, banks: int) -> float:
        """CAM + counter area; grows as 1/N_RH (the paper's 10.38 mm^2 at
        N_RH = 32 for 32 banks anchors the constant)."""
        bits_per_entry = 17 + 20  # row address CAM + counter
        total_bits = self.entries_per_bank * bits_per_entry * banks
        # CAM bit-cell area chosen so a 32-bank N_RH=32 config lands on the
        # paper's 10.38 mm^2 (4.45 % of a Xeon die).
        return total_bits * 0.102e-6
