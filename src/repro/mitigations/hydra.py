"""Hydra: hybrid row tracking (Qureshi et al., ISCA 2022).

Hydra tracks activation counts in three tiers: a small SRAM Group Count
Table (GCT) shared by groups of rows, a Row Count Cache (RCC) of recently
hot rows, and a full Row Count Table (RCT) **stored in DRAM**.  Most benign
rows never leave the group tier; rows in hot groups fall back to per-row
counts, and RCC misses cost real DRAM traffic — which is why the paper
observes that Hydra spends the *least* time on preventive refreshes yet
still slows the system down by occupying the memory channel with metadata
accesses (§3).
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from collections.abc import Sequence

from repro.errors import ConfigError
from repro.mitigations.base import (
    Action,
    MetadataAccess,
    MitigationMechanism,
    PreventiveRefresh,
)

#: Rows per group counter.
GROUP_SIZE = 128
#: Row Count Cache capacity (entries across all banks).
RCC_ENTRIES = 4096
#: Group-tier threshold as a fraction of N_RH: below it, a whole group's
#: activity is provably safe; above it, per-row tracking kicks in.
GROUP_FRACTION = 0.4
#: Per-row preventive-refresh threshold as a fraction of N_RH.
ROW_FRACTION = 0.5


class Hydra(MitigationMechanism):
    """Hybrid group/row activation tracking with DRAM-resident counters."""

    name = "Hydra"

    def __init__(self, nrh: int, *, group_size: int = GROUP_SIZE,
                 rcc_entries: int = RCC_ENTRIES) -> None:
        super().__init__(nrh)
        if group_size <= 0 or rcc_entries <= 0:
            raise ConfigError("group size and RCC capacity must be positive")
        self.group_size = group_size
        self.rcc_entries = rcc_entries
        self.group_threshold = max(1, int(nrh * GROUP_FRACTION))
        self.row_threshold = max(1, int(nrh * ROW_FRACTION))
        self._gct: dict[tuple[int, int], int] = defaultdict(int)
        #: RCC: LRU cache of (bank, row) -> count.
        self._rcc: OrderedDict[tuple[int, int], int] = OrderedDict()
        #: RCT shadow: the in-DRAM table contents (reads/writes modeled as
        #: MetadataAccess traffic; values kept here for correctness).
        self._rct: dict[tuple[int, int], int] = {}

    def on_activation(self, flat_bank: int, row: int,
                      now_ns: float) -> Sequence[Action]:
        self.counters.activations_observed += 1
        group_key = (flat_bank, row // self.group_size)
        if self._gct[group_key] < self.group_threshold:
            self._gct[group_key] += 1
            return []
        # Hot group: per-row tracking through the RCC, RCT in DRAM behind it.
        actions: list[Action] = []
        row_key = (flat_bank, row)
        if row_key in self._rcc:
            self._rcc.move_to_end(row_key)
            count = self._rcc[row_key] + 1
        else:
            # RCC miss: fetch the row's counter from the in-DRAM RCT.
            actions.append(MetadataAccess(flat_bank, reads=1))
            count = self._rct.get(row_key, self.group_threshold) + 1
            if len(self._rcc) >= self.rcc_entries:
                evicted_key, evicted_count = self._rcc.popitem(last=False)
                self._rct[evicted_key] = evicted_count
                actions.append(MetadataAccess(evicted_key[0], writes=1))
        if count >= self.row_threshold:
            self.counters.triggers += 1
            actions.append(PreventiveRefresh(flat_bank, row))
            count = 0
        self._rcc[row_key] = count
        return actions

    def on_refresh_window(self, now_ns: float) -> None:
        """All counters reset once per refresh window."""
        self._gct.clear()
        self._rcc.clear()
        self._rct.clear()

    def area_mm2(self, banks: int) -> float:
        """GCT + RCC SRAM; the RCT lives in DRAM (Hydra's selling point:
        ~28 KB of SRAM regardless of N_RH)."""
        gct_bits = 32 * 1024 * 16  # fixed-size group table
        rcc_bits = self.rcc_entries * (24 + 16)
        return (gct_bits + rcc_bits) * 0.25e-6  # ~0.25 um^2 per SRAM bit
