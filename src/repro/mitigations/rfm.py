"""RFM: DDR5 Refresh Management (JESD79-5).

The memory controller counts activations per bank (the Rolling Accumulated
ACT counter, RAA); when the count reaches the RAA Initial Management
Threshold (RAAIMT) it issues an RFM command, during which the DRAM chip
internally refreshes victim rows.  Because the counter is bank-granular —
thousands of rows share it, with no notion of row-level locality — RFM
triggers on aggregate traffic and issues many RFM commands under benign
workloads (§2.2), making it the second canonical high-performance-overhead
mitigation.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import ConfigError
from repro.mitigations.base import Action, MitigationMechanism, RfmCommand

#: RAAIMT as a fraction of N_RH.  With a blast radius of 2 and bank-granular
#: counting, the threshold must stay well below N_RH so that no single row
#: can accumulate N_RH activations between managed refreshes.
RAAIMT_DIVISOR = 8


class RFM(MitigationMechanism):
    """Per-bank rolling activation counting with refresh-management commands."""

    name = "RFM"

    def __init__(self, nrh: int, *, raaimt: int | None = None) -> None:
        super().__init__(nrh)
        self.raaimt = raaimt if raaimt is not None else max(1, nrh // RAAIMT_DIVISOR)
        if self.raaimt <= 0:
            raise ConfigError("RAAIMT must be positive")
        self._raa: dict[int, int] = defaultdict(int)

    def on_activation(self, flat_bank: int, row: int,
                      now_ns: float) -> list[Action]:
        self.counters.activations_observed += 1
        self._raa[flat_bank] += 1
        if self._raa[flat_bank] < self.raaimt:
            return []
        self._raa[flat_bank] = 0
        self.counters.triggers += 1
        return [RfmCommand(flat_bank)]

    def on_refresh_window(self, now_ns: float) -> None:
        """Periodic refresh resets the rolling accumulated counts."""
        self._raa.clear()

    def area_mm2(self, banks: int) -> float:
        """One RAA counter per bank: negligible (§3's 'almost zero')."""
        return 2e-4 * banks / 32
