"""RFM: DDR5 Refresh Management (JESD79-5).

The memory controller counts activations per bank (the Rolling Accumulated
ACT counter, RAA); when the count reaches the RAA Initial Management
Threshold (RAAIMT) it issues an RFM command, during which the DRAM chip
internally refreshes victim rows.  Because the counter is bank-granular —
thousands of rows share it, with no notion of row-level locality — RFM
triggers on aggregate traffic and issues many RFM commands under benign
workloads (§2.2), making it the second canonical high-performance-overhead
mitigation.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.mitigations.base import (
    EPOCH_BULK_MIN,
    Action,
    MitigationMechanism,
    RfmCommand,
)

#: RAAIMT as a fraction of N_RH.  With a blast radius of 2 and bank-granular
#: counting, the threshold must stay well below N_RH so that no single row
#: can accumulate N_RH activations between managed refreshes.
RAAIMT_DIVISOR = 8


class RFM(MitigationMechanism):
    """Per-bank rolling activation counting with refresh-management commands."""

    name = "RFM"
    #: Bank-granular: the RAA counters never look at row addresses or
    #: activation times, so the kernel need not buffer either column.
    epoch_needs_rows = False
    epoch_needs_times = False

    def __init__(self, nrh: int, *, raaimt: int | None = None) -> None:
        super().__init__(nrh)
        self.raaimt = raaimt if raaimt is not None else max(1, nrh // RAAIMT_DIVISOR)
        if self.raaimt <= 0:
            raise ConfigError("RAAIMT must be positive")
        self._raa: dict[int, int] = defaultdict(int)
        #: Largest RAA counter, maintained so ``epoch_credit`` is O(1):
        #: ``raaimt - 1 - max`` activations cannot reach the threshold on
        #: any bank.  Recomputed exactly after a trigger resets a counter.
        self._raa_max = 0

    def on_activation(self, flat_bank: int, row: int,
                      now_ns: float) -> Sequence[Action]:
        self.counters.activations_observed += 1
        raa = self._raa
        count = raa[flat_bank] + 1
        if count < self.raaimt:
            raa[flat_bank] = count
            if count > self._raa_max:
                self._raa_max = count
            return []
        raa[flat_bank] = 0
        self._raa_max = max(raa.values(), default=0)
        self.counters.triggers += 1
        return [RfmCommand(flat_bank)]

    def epoch_credit(self) -> int:
        credit = self.raaimt - 1 - self._raa_max
        return credit if credit > 0 else 0

    def on_activation_epoch(
        self, flat_banks: Sequence[int] | None, rows: Sequence[int] | None,
        times: Sequence[float] | None, count: int | None = None,
    ) -> tuple[tuple[int, ...], list[Action]]:
        n = count if count is not None else len(flat_banks)
        if n > self.epoch_credit():
            return super().on_activation_epoch(flat_banks, rows, times,
                                               count)
        self.counters.activations_observed += n
        if n >= EPOCH_BULK_MIN:
            # First-occurrence order, so the counter dict is literally the
            # one the sequential replay would build (insertion order and
            # all), not just value-equal.
            uniq, first, occ = np.unique(np.asarray(flat_banks,
                                                    dtype=np.int64),
                                         return_index=True,
                                         return_counts=True)
            order = np.argsort(first, kind="stable")
            pairs = zip(uniq[order].tolist(), occ[order].tolist())
        else:
            # Small epochs: direct increments, no aggregation round trip.
            pairs = ((flat_bank, 1) for flat_bank in flat_banks)
        raa = self._raa
        maximum = self._raa_max
        for flat_bank, occurrences in pairs:
            value = raa[flat_bank] + occurrences
            raa[flat_bank] = value
            if value > maximum:
                maximum = value
        self._raa_max = maximum
        return (), []

    def on_refresh_window(self, now_ns: float) -> None:
        """Periodic refresh resets the rolling accumulated counts."""
        self._raa.clear()
        self._raa_max = 0

    def area_mm2(self, banks: int) -> float:
        """One RAA counter per bank: negligible (§3's 'almost zero')."""
        return 2e-4 * banks / 32
