"""Batched/flattened variants of the mitigation hot paths.

Per-activation mitigation work is the second-largest Python cost after the
controller loop itself.  These subclasses keep the *decisions* bit-identical
to their scalar parents while restructuring the state they consult:

* :class:`BatchedPARA` draws its Bernoulli randomness in blocks of
  ``DRAW_BLOCK`` per epoch instead of one ``Generator.random()`` call per
  activation.  NumPy's Generator produces the identical stream for
  ``rng.random(n)`` and ``n`` successive ``rng.random()`` calls, so the
  trigger decisions (and the side-selection draws interleaved with them)
  are exactly those of the scalar PARA with the same seed.
* :class:`BatchedGraphene` stores its per-bank Misra-Gries tables in a
  flat list indexed by flat bank id (the scalar version hashes the bank id
  into a dict on every activation).
* :class:`BatchedHydra` flattens the Group Count Table into one
  preallocated counter array indexed by ``flat_bank * groups_per_bank +
  group`` and keys the RCC/RCT by a single packed integer, eliminating the
  per-activation tuple allocations of the scalar version.

``make_mitigation(..., batched=True)`` in :mod:`repro.mitigations` selects
these classes; mechanisms without a batched variant fall back to their
scalar implementation (which is already allocation-free).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigError
from repro.mitigations.base import (
    Action,
    MetadataAccess,
    PreventiveRefresh,
)
from repro.mitigations.graphene import Graphene, _BankTable
from repro.mitigations.hydra import GROUP_SIZE, RCC_ENTRIES, Hydra
from repro.mitigations.para import PARA, PARA_STRENGTH

#: Uniform draws fetched per refill of BatchedPARA's buffer.
DRAW_BLOCK = 4096

#: Shared do-nothing result for the (dominant) no-action path: one list
#: allocation per activation adds up over million-activation sweeps.
#: Callers only iterate / truth-test action lists, never mutate them.
_NO_ACTIONS: list[Action] = []

#: Default row-address space for BatchedHydra's packed integer keys; any
#: bound >= the system's rows_per_bank keeps the packing collision-free.
DEFAULT_ROWS_PER_BANK = 65_536


class BatchedPARA(PARA):
    """PARA with epoch-batched Bernoulli draws (identical stream)."""

    def __init__(self, nrh: int, *, strength: float = PARA_STRENGTH,
                 seed: int = 1) -> None:
        super().__init__(nrh, strength=strength, seed=seed)
        self._buffer = None
        self._buffer_pos = 0
        self._buffer_len = 0

    def _draw(self) -> float:
        # The block is converted to Python floats once per refill: float64
        # -> float is exact, and both the indexing and the comparison in
        # on_activation then skip the numpy scalar machinery.
        pos = self._buffer_pos
        if pos >= self._buffer_len:
            self._buffer = self._rng.random(DRAW_BLOCK).tolist()
            self._buffer_len = DRAW_BLOCK
            pos = 0
        self._buffer_pos = pos + 1
        return self._buffer[pos]

    def on_activation(self, flat_bank: int, row: int,
                      now_ns: float) -> list[Action]:
        self.counters.activations_observed += 1
        pos = self._buffer_pos
        if pos >= self._buffer_len:
            self._buffer = self._rng.random(DRAW_BLOCK).tolist()
            self._buffer_len = DRAW_BLOCK
            pos = 0
        self._buffer_pos = pos + 1
        if self._buffer[pos] >= self.probability:
            return _NO_ACTIONS
        self.counters.triggers += 1
        pos = self._buffer_pos
        if pos >= self._buffer_len:
            self._buffer = self._rng.random(DRAW_BLOCK).tolist()
            self._buffer_len = DRAW_BLOCK
            pos = 0
        self._buffer_pos = pos + 1
        side = (1, 2) if self._buffer[pos] < 0.5 else (-1, -2)
        return [PreventiveRefresh(flat_bank, row, victim_offsets=side)]


class BatchedGraphene(Graphene):
    """Graphene with the per-bank tables in a flat list."""

    def __init__(self, nrh: int, *, total_banks: int = 0, **kwargs) -> None:
        super().__init__(nrh, **kwargs)
        self._table_list: list[_BankTable | None] = [None] * total_banks

    def on_activation(self, flat_bank: int, row: int,
                      now_ns: float) -> list[Action]:
        self.counters.activations_observed += 1
        tables = self._table_list
        if flat_bank >= len(tables):
            tables.extend([None] * (flat_bank + 1 - len(tables)))
        table = tables[flat_bank]
        if table is None:
            table = _BankTable(self.entries_per_bank)
            tables[flat_bank] = table
        count = table.observe(row)
        if count < self.threshold:
            return _NO_ACTIONS
        table.reset_row(row)
        self.counters.triggers += 1
        return [PreventiveRefresh(flat_bank, row)]

    def on_refresh_window(self, now_ns: float) -> None:
        for table in self._table_list:
            if table is not None:
                table.clear()


class BatchedHydra(Hydra):
    """Hydra with a flat GCT array and packed-integer RCC/RCT keys."""

    def __init__(self, nrh: int, *, group_size: int = GROUP_SIZE,
                 rcc_entries: int = RCC_ENTRIES,
                 rows_per_bank: int = DEFAULT_ROWS_PER_BANK,
                 total_banks: int = 32) -> None:
        super().__init__(nrh, group_size=group_size, rcc_entries=rcc_entries)
        if rows_per_bank <= 0 or total_banks <= 0:
            raise ConfigError("rows_per_bank and total_banks must be positive")
        self._rows_per_bank = rows_per_bank
        self._groups_per_bank = -(-rows_per_bank // group_size)
        self._gct_flat: list[int] = [0] * (total_banks * self._groups_per_bank)
        #: Same tiers as the scalar Hydra, keyed by one packed int.
        self._rcc_flat: OrderedDict[int, int] = OrderedDict()
        self._rct_flat: dict[int, int] = {}

    def on_activation(self, flat_bank: int, row: int,
                      now_ns: float) -> list[Action]:
        self.counters.activations_observed += 1
        gct = self._gct_flat
        gct_index = flat_bank * self._groups_per_bank + row // self.group_size
        if gct_index >= len(gct):
            gct.extend([0] * (gct_index + 1 - len(gct)))
        if gct[gct_index] < self.group_threshold:
            gct[gct_index] += 1
            return _NO_ACTIONS
        # Hot group: per-row tracking through the RCC, RCT in DRAM behind it.
        actions: list[Action] = []
        rcc = self._rcc_flat
        row_key = flat_bank * self._rows_per_bank + row
        if row_key in rcc:
            rcc.move_to_end(row_key)
            count = rcc[row_key] + 1
        else:
            # RCC miss: fetch the row's counter from the in-DRAM RCT.
            actions.append(MetadataAccess(flat_bank, reads=1))
            count = self._rct_flat.get(row_key, self.group_threshold) + 1
            if len(rcc) >= self.rcc_entries:
                evicted_key, evicted_count = rcc.popitem(last=False)
                self._rct_flat[evicted_key] = evicted_count
                actions.append(MetadataAccess(
                    evicted_key // self._rows_per_bank, writes=1))
        if count >= self.row_threshold:
            self.counters.triggers += 1
            actions.append(PreventiveRefresh(flat_bank, row))
            count = 0
        rcc[row_key] = count
        return actions

    def on_refresh_window(self, now_ns: float) -> None:
        self._gct_flat = [0] * len(self._gct_flat)
        self._rcc_flat.clear()
        self._rct_flat.clear()


#: Batched overrides by mechanism name; absent names use the scalar class.
BATCHED_CLASSES = {
    "PARA": BatchedPARA,
    "Graphene": BatchedGraphene,
    "Hydra": BatchedHydra,
}
