"""Batched/flattened variants of the mitigation hot paths.

Per-activation mitigation work is the second-largest Python cost after the
controller loop itself.  These subclasses keep the *decisions* bit-identical
to their scalar parents while restructuring the state they consult:

* :class:`BatchedPARA` draws its Bernoulli randomness in blocks of
  ``DRAW_BLOCK`` per epoch instead of one ``Generator.random()`` call per
  activation.  NumPy's Generator produces the identical stream for
  ``rng.random(n)`` and ``n`` successive ``rng.random()`` calls, so the
  trigger decisions (and the side-selection draws interleaved with them)
  are exactly those of the scalar PARA with the same seed.
* :class:`BatchedGraphene` stores its per-bank Misra-Gries tables in a
  flat list indexed by flat bank id (the scalar version hashes the bank id
  into a dict on every activation).
* :class:`BatchedHydra` flattens the Group Count Table into one
  preallocated counter array indexed by ``flat_bank * groups_per_bank +
  group`` and keys the RCC/RCT by a single packed integer, eliminating the
  per-activation tuple allocations of the scalar version.

All three also implement the epoch protocol from
:mod:`repro.mitigations.base` with vectorized state updates:
:meth:`~repro.mitigations.base.MitigationMechanism.epoch_credit` is exact
(PARA scans its pre-drawn Bernoulli block for the next trigger draw;
Graphene/Hydra bound it by ``threshold - 1 - max(counter)``), and
:meth:`~repro.mitigations.base.MitigationMechanism.on_activation_epoch`
aggregates the epoch's per-(bank, row) activation runs with ``np.unique``
and merges them into the counter tables in bulk — preserving dict
insertion order (first-occurrence sorted), counter values, and rng
consumption exactly, so the state after a bulk epoch is indistinguishable
from the sequential replay.  Epochs that exceed the credited length fall
back to the base class's sequential replay.

``make_mitigation(..., batched=True)`` in :mod:`repro.mitigations` selects
these classes; mechanisms without a batched variant fall back to their
scalar implementation (which is already allocation-free).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence
from itertools import repeat

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.mitigations.base import (
    EPOCH_BULK_MIN,
    Action,
    MetadataAccess,
    PreventiveRefresh,
)
from repro.mitigations.graphene import Graphene, _BankTable
from repro.mitigations.hydra import GROUP_SIZE, RCC_ENTRIES, Hydra
from repro.mitigations.para import PARA, PARA_STRENGTH

#: Uniform draws fetched per refill of BatchedPARA's buffer.
DRAW_BLOCK = 4096

#: Shared do-nothing result for the (dominant) no-action path: one list
#: allocation per activation adds up over million-activation sweeps.
#: A tuple, not a list: the instance is shared across every activation of
#: every mechanism in the process, so a caller that mutated it (e.g.
#: ``actions.append(...)`` on a "fresh" result) would silently replay the
#: appended action on all later activations.  Callers only iterate /
#: truth-test action sequences; the tuple makes mutation a hard error.
_NO_ACTIONS: tuple[Action, ...] = ()

#: Epoch size below which the bulk table merges use a plain Python loop:
#: ``np.unique`` costs a fixed couple dozen microseconds per call, which
#: beats direct dict updates only once the epoch amortizes it (see the
#: measured crossover note on :data:`repro.mitigations.base.EPOCH_BULK_MIN`).
_BULK_MIN = EPOCH_BULK_MIN

#: Occurrence column for the direct (small-epoch) merge passes: zipping
#: against an endless stream of ones lets one loop serve both the
#: np.unique-aggregated and the per-activation form.
_ONES = repeat(1)

#: Default row-address space for BatchedHydra's packed integer keys; any
#: bound >= the system's rows_per_bank keeps the packing collision-free.
DEFAULT_ROWS_PER_BANK = 65_536


class BatchedPARA(PARA):
    """PARA with epoch-batched Bernoulli draws (identical stream)."""

    epoch_needs_trace = False

    def __init__(self, nrh: int, *, strength: float = PARA_STRENGTH,
                 seed: int = 1) -> None:
        super().__init__(nrh, strength=strength, seed=seed)
        self._buffer: list[float] = []
        self._buffer_pos = 0
        self._buffer_len = 0
        #: Positions within the current block whose draw is below the
        #: trigger probability, ascending; consumed through
        #: ``_trigger_i``.  ``epoch_credit`` reads the next one to know
        #: exactly how many upcoming draws are non-triggers.
        self._trigger_positions: list[int] = []
        self._trigger_i = 0

    def _refill(self) -> None:
        """Fetch the next ``DRAW_BLOCK`` draws (the one refill site).

        The block is converted to Python floats once per refill: float64
        -> float is exact, and both the indexing and the comparison in
        ``on_activation`` then skip the numpy scalar machinery.  The
        trigger-position index is computed from the same block — no extra
        rng consumption — so the stream stays identical to scalar PARA's
        one-``random()``-per-activation order.
        """
        block = self._rng.random(DRAW_BLOCK)
        self._buffer = block.tolist()
        self._buffer_len = DRAW_BLOCK
        self._buffer_pos = 0
        self._trigger_positions = np.nonzero(
            block < self.probability)[0].tolist()
        self._trigger_i = 0

    def _draw(self) -> float:
        pos = self._buffer_pos
        if pos >= self._buffer_len:
            self._refill()
            pos = 0
        self._buffer_pos = pos + 1
        return self._buffer[pos]

    def on_activation(self, flat_bank: int, row: int,
                      now_ns: float) -> Sequence[Action]:
        self.counters.activations_observed += 1
        pos = self._buffer_pos
        if pos >= self._buffer_len:
            self._refill()
            pos = 0
        self._buffer_pos = pos + 1
        if self._buffer[pos] >= self.probability:
            return _NO_ACTIONS
        self.counters.triggers += 1
        pos = self._buffer_pos
        if pos >= self._buffer_len:
            self._refill()
            pos = 0
        self._buffer_pos = pos + 1
        side = (1, 2) if self._buffer[pos] < 0.5 else (-1, -2)
        return [PreventiveRefresh(flat_bank, row, victim_offsets=side)]

    def epoch_credit(self) -> int:
        pos = self._buffer_pos
        if pos >= self._buffer_len:
            return 0  # empty buffer: the boundary step refills it
        trigs = self._trigger_positions
        i = self._trigger_i
        n = len(trigs)
        # Side-selection draws consumed on triggers may themselves sit at
        # "trigger" positions; skip any already behind the cursor.
        while i < n and trigs[i] < pos:
            i += 1
        self._trigger_i = i
        if i < n:
            return trigs[i] - pos
        return self._buffer_len - pos

    def on_activation_epoch(
        self, flat_banks: Sequence[int] | None, rows: Sequence[int] | None,
        times: Sequence[float] | None, count: int | None = None,
    ) -> tuple[tuple[int, ...], list[Action]]:
        n = count if count is not None else len(flat_banks)
        pos = self._buffer_pos
        end = pos + n
        trigs = self._trigger_positions
        i = self._trigger_i
        while i < len(trigs) and trigs[i] < pos:
            i += 1
        self._trigger_i = i
        if end > self._buffer_len or (i < len(trigs) and trigs[i] < end):
            # Epoch exceeds the credited trigger-free run: replay it.
            if flat_banks is None:
                raise SimulationError(
                    "PARA epoch exceeds its credited trigger-free run and "
                    "no trace columns were provided to replay it")
            return super().on_activation_epoch(flat_banks, rows, times,
                                               count)
        self.counters.activations_observed += n
        self._buffer_pos = end
        return (), []


class BatchedGraphene(Graphene):
    """Graphene with the per-bank tables in a flat list.

    For epoch dispatch it additionally tracks, per bank, the largest count
    ``observe`` has returned since the last window reset (an upper bound
    on any row's next-activation base, including the spillover floor new
    rows inherit): ``threshold - 1 - max`` activations are then provably
    action-free, and a whole epoch of them merges into the tables as
    ``counts[row] += occurrences`` / ``counts[row] = spillover +
    occurrences`` — the exact values the sequential replay would leave,
    inserted in first-occurrence order so dict iteration (and therefore
    any later space-saving substitution) is unaffected.  The bulk path is
    further gated on every table having table-capacity headroom for the
    epoch, since capacity events (substitutions) are order-dependent.
    """

    #: Misra-Gries counting never looks at activation times.
    epoch_needs_times = False

    def __init__(self, nrh: int, *, total_banks: int = 0, **kwargs) -> None:
        super().__init__(nrh, **kwargs)
        self._table_list: list[_BankTable | None] = [None] * total_banks
        self._bank_max: list[int] = [0] * total_banks
        #: max(self._bank_max), maintained incrementally so epoch_credit
        #: is O(1); recomputed from the per-bank maxima only on the
        #: (rare) trigger path.
        self._global_max = 0
        #: Lower bound on every table's remaining entry capacity.  Only
        #: lowered on insertions (never restored when reset_row frees an
        #: entry) — a conservative bound that keeps epoch_credit O(1)
        #: while still guaranteeing no capacity event (order-dependent
        #: Misra-Gries substitution) can occur inside a credited epoch.
        self._min_room = self.entries_per_bank

    def _rescan_bank_max(self, flat_bank: int) -> None:
        table = self._table_list[flat_bank]
        maximum = table.spillover
        for value in table.counts.values():
            if value > maximum:
                maximum = value
        self._bank_max[flat_bank] = maximum
        self._global_max = max(self._bank_max)

    def on_activation(self, flat_bank: int, row: int,
                      now_ns: float) -> Sequence[Action]:
        self.counters.activations_observed += 1
        tables = self._table_list
        if flat_bank >= len(tables):
            grow = flat_bank + 1 - len(tables)
            tables.extend([None] * grow)
            self._bank_max.extend([0] * grow)
        table = tables[flat_bank]
        if table is None:
            table = _BankTable(self.entries_per_bank)
            tables[flat_bank] = table
        count = table.observe(row)
        if count < self.threshold:
            if count > self._bank_max[flat_bank]:
                self._bank_max[flat_bank] = count
                if count > self._global_max:
                    self._global_max = count
            room = self.entries_per_bank - len(table.counts)
            if room < self._min_room:
                self._min_room = room
            return _NO_ACTIONS
        table.reset_row(row)
        self._rescan_bank_max(flat_bank)
        self.counters.triggers += 1
        return [PreventiveRefresh(flat_bank, row)]

    def on_refresh_window(self, now_ns: float) -> None:
        for table in self._table_list:
            if table is not None:
                table.clear()
        self._bank_max = [0] * len(self._table_list)
        self._global_max = 0
        self._min_room = self.entries_per_bank

    def epoch_credit(self) -> int:
        credit = self.threshold - 1 - self._global_max
        if credit > self._min_room:
            credit = self._min_room
        return credit if credit > 0 else 0

    def on_activation_epoch(
        self, flat_banks: Sequence[int] | None, rows: Sequence[int] | None,
        times: Sequence[float] | None, count: int | None = None,
    ) -> tuple[tuple[int, ...], list[Action]]:
        n = count if count is not None else len(flat_banks)
        if n > self.epoch_credit():
            return super().on_activation_epoch(flat_banks, rows, times,
                                               count)
        self.counters.activations_observed += n
        tables = self._table_list
        maxima = self._bank_max
        threshold = self.threshold
        capacity = self.entries_per_bank
        global_max = self._global_max
        touched: list[_BankTable] = []
        if n >= _BULK_MIN:
            keys = ((np.asarray(flat_banks, dtype=np.int64) << 32)
                    | np.asarray(rows, dtype=np.int64))
            uniq, first, occ = np.unique(keys, return_index=True,
                                         return_counts=True)
            # Insert new rows in first-occurrence order: Misra-Gries ties
            # (min over the counts dict) break by insertion order, so the
            # dict must look exactly as the sequential replay leaves it.
            order = np.argsort(first, kind="stable")
            pairs = [(key >> 32, key & 0xFFFFFFFF, c) for key, c in
                     zip(uniq[order].tolist(), occ[order].tolist())]
        else:
            # Small epochs: one direct pass beats the aggregate-then-merge
            # round trip (and np.unique's fixed cost) by a wide margin.
            pairs = zip(flat_banks, rows, _ONES)
        for flat_bank, row, occurrences in pairs:
            if flat_bank >= len(tables):
                grow = flat_bank + 1 - len(tables)
                tables.extend([None] * grow)
                maxima.extend([0] * grow)
            table = tables[flat_bank]
            if table is None:
                table = _BankTable(self.entries_per_bank)
                tables[flat_bank] = table
            counts = table.counts
            current = counts.get(row)
            if current is None:
                value = table.spillover + occurrences
                touched.append(table)
            else:
                value = current + occurrences
            if value >= threshold:  # pragma: no cover - credit guard
                raise SimulationError(
                    "Graphene epoch crossed its trigger threshold inside "
                    "a credit-guaranteed batch")
            counts[row] = value
            if value > maxima[flat_bank]:
                maxima[flat_bank] = value
                if value > global_max:
                    global_max = value
        self._global_max = global_max
        # Entry counts only grow inside a credited epoch (no triggers, so
        # no reset_row), so the end-of-epoch room per touched table equals
        # the minimum the sequential replay would have seen.
        min_room = self._min_room
        for table in touched:
            room = capacity - len(table.counts)
            if room < min_room:
                min_room = room
        self._min_room = min_room
        return (), []


class BatchedHydra(Hydra):
    """Hydra with a flat GCT array and packed-integer RCC/RCT keys."""

    #: Group-counter updates never look at activation times.
    epoch_needs_times = False

    def __init__(self, nrh: int, *, group_size: int = GROUP_SIZE,
                 rcc_entries: int = RCC_ENTRIES,
                 rows_per_bank: int = DEFAULT_ROWS_PER_BANK,
                 total_banks: int = 32) -> None:
        super().__init__(nrh, group_size=group_size, rcc_entries=rcc_entries)
        if rows_per_bank <= 0 or total_banks <= 0:
            raise ConfigError("rows_per_bank and total_banks must be positive")
        self._rows_per_bank = rows_per_bank
        self._groups_per_bank = -(-rows_per_bank // group_size)
        self._gct_flat: list[int] = [0] * (total_banks * self._groups_per_bank)
        #: Largest GCT entry since the last window reset.  While it is
        #: below ``group_threshold`` no group is hot, every activation
        #: stays in the pure-counting tier, and ``group_threshold - max``
        #: activations are provably action-free (the epoch credit).  Once
        #: any group goes hot the RCC/RCT tiers are order-dependent
        #: (LRU eviction, metadata traffic), so the credit drops to 0 and
        #: Hydra steps scalar until the window resets the counters.
        self._gct_max = 0
        #: Same tiers as the scalar Hydra, keyed by one packed int.
        self._rcc_flat: OrderedDict[int, int] = OrderedDict()
        self._rct_flat: dict[int, int] = {}

    def on_activation(self, flat_bank: int, row: int,
                      now_ns: float) -> Sequence[Action]:
        self.counters.activations_observed += 1
        gct = self._gct_flat
        gct_index = flat_bank * self._groups_per_bank + row // self.group_size
        if gct_index >= len(gct):
            gct.extend([0] * (gct_index + 1 - len(gct)))
        value = gct[gct_index]
        if value < self.group_threshold:
            value += 1
            gct[gct_index] = value
            if value > self._gct_max:
                self._gct_max = value
            return _NO_ACTIONS
        # Hot group: per-row tracking through the RCC, RCT in DRAM behind it.
        actions: list[Action] = []
        rcc = self._rcc_flat
        row_key = flat_bank * self._rows_per_bank + row
        if row_key in rcc:
            rcc.move_to_end(row_key)
            count = rcc[row_key] + 1
        else:
            # RCC miss: fetch the row's counter from the in-DRAM RCT.
            actions.append(MetadataAccess(flat_bank, reads=1))
            count = self._rct_flat.get(row_key, self.group_threshold) + 1
            if len(rcc) >= self.rcc_entries:
                evicted_key, evicted_count = rcc.popitem(last=False)
                self._rct_flat[evicted_key] = evicted_count
                actions.append(MetadataAccess(
                    evicted_key // self._rows_per_bank, writes=1))
        if count >= self.row_threshold:
            self.counters.triggers += 1
            actions.append(PreventiveRefresh(flat_bank, row))
            count = 0
        rcc[row_key] = count
        return actions

    def on_refresh_window(self, now_ns: float) -> None:
        self._gct_flat = [0] * len(self._gct_flat)
        self._gct_max = 0
        self._rcc_flat.clear()
        self._rct_flat.clear()

    def epoch_credit(self) -> int:
        credit = self.group_threshold - self._gct_max
        return credit if credit > 0 else 0

    def on_activation_epoch(
        self, flat_banks: Sequence[int] | None, rows: Sequence[int] | None,
        times: Sequence[float] | None, count: int | None = None,
    ) -> tuple[tuple[int, ...], list[Action]]:
        n = count if count is not None else len(flat_banks)
        if n > self.epoch_credit():
            return super().on_activation_epoch(flat_banks, rows, times,
                                               count)
        self.counters.activations_observed += n
        groups_per_bank = self._groups_per_bank
        group_size = self.group_size
        if n >= _BULK_MIN:
            indices = (np.asarray(flat_banks, dtype=np.int64)
                       * groups_per_bank
                       + np.asarray(rows, dtype=np.int64) // group_size)
            uniq, occ = np.unique(indices, return_counts=True)
            pairs = zip(uniq.tolist(), occ.tolist())
        else:
            # Small epochs: direct increments, no aggregation round trip.
            pairs = ((flat_bank * groups_per_bank + row // group_size, 1)
                     for flat_bank, row in zip(flat_banks, rows))
        gct = self._gct_flat
        maximum = self._gct_max
        for gct_index, occurrences in pairs:
            if gct_index >= len(gct):
                gct.extend([0] * (gct_index + 1 - len(gct)))
            value = gct[gct_index] + occurrences
            gct[gct_index] = value
            if value > maximum:
                maximum = value
        if maximum > self.group_threshold:  # pragma: no cover - credit guard
            raise SimulationError(
                "Hydra epoch pushed a group past its threshold inside a "
                "credit-guaranteed batch")
        self._gct_max = maximum
        return (), []


#: Batched overrides by mechanism name; absent names use the scalar class.
BATCHED_CLASSES = {
    "PARA": BatchedPARA,
    "Graphene": BatchedGraphene,
    "Hydra": BatchedHydra,
}
