"""RowHammer mitigation mechanisms evaluated by the paper (§9.1).

Five state-of-the-art preventive-refresh mechanisms, each implemented as a
memory-controller plugin:

* :class:`~repro.mitigations.para.PARA` — probabilistic adjacent-row
  activation (high-performance-overhead, near-zero area);
* :class:`~repro.mitigations.rfm.RFM` — DDR5 refresh management with
  per-bank rolling activation counters;
* :class:`~repro.mitigations.prac.PRAC` — per-row activation counters in
  DRAM with back-off;
* :class:`~repro.mitigations.hydra.Hydra` — hybrid tracking with group
  counters, a row-counter cache, and counter metadata stored in DRAM;
* :class:`~repro.mitigations.graphene.Graphene` — Misra-Gries frequent-item
  tracking (high-area-overhead, lowest performance overhead).

All mechanisms use a blast radius of 2 (preventive refreshes cover the four
rows within +/- 2 of an aggressor) to account for Half-Double (§9.1).
"""

from repro.mitigations.base import (
    BLAST_ROWS,
    MetadataAccess,
    MitigationMechanism,
    NoMitigation,
    PreventiveRefresh,
    RfmCommand,
)
from repro.mitigations.para import PARA
from repro.mitigations.rfm import RFM
from repro.mitigations.prac import PRAC
from repro.mitigations.hydra import Hydra
from repro.mitigations.graphene import Graphene

MITIGATION_CLASSES = {
    "None": NoMitigation,
    "PARA": PARA,
    "RFM": RFM,
    "PRAC": PRAC,
    "Hydra": Hydra,
    "Graphene": Graphene,
}


def make_mitigation(name: str, nrh: int, *, batched: bool | None = False,
                    config=None, **kwargs) -> MitigationMechanism:
    """Instantiate a mitigation by name, configured for a RowHammer threshold.

    With ``batched=True``, mechanisms that have a flattened variant in
    :mod:`repro.mitigations.batched` use it (decisions stay bit-identical);
    the rest fall back to their scalar class.  ``batched=None`` matches the
    sim kernel the default :class:`repro.exec.ExecutionPolicy` would pick,
    so a mechanism built without run orchestration still pairs with the
    drain loop it will serve.  ``config`` (a
    :class:`~repro.sim.config.SystemConfig`) sizes the flattened tables —
    without it the batched variants use safe defaults.
    """
    try:
        cls = MITIGATION_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown mitigation {name!r}; known: {sorted(MITIGATION_CLASSES)}"
        ) from None
    if batched is None:
        from repro.exec import resolve_kernel
        batched = resolve_kernel("sim") in ("batched", "array")
    if batched:
        from repro.mitigations.batched import BATCHED_CLASSES
        batched_cls = BATCHED_CLASSES.get(name)
        if batched_cls is not None:
            cls = batched_cls
            if config is not None:
                if name in ("Graphene", "Hydra"):
                    kwargs.setdefault("total_banks", config.total_banks)
                if name == "Hydra":
                    kwargs.setdefault("rows_per_bank", config.rows_per_bank)
    return cls(nrh=nrh, **kwargs)


__all__ = [
    "BLAST_ROWS",
    "MitigationMechanism",
    "NoMitigation",
    "PreventiveRefresh",
    "RfmCommand",
    "MetadataAccess",
    "PARA",
    "RFM",
    "PRAC",
    "Hydra",
    "Graphene",
    "MITIGATION_CLASSES",
    "make_mitigation",
]
