"""PRAC: Per-Row Activation Counting (JESD79-5C, 2024).

The DRAM chip keeps an activation counter inside every row and updates it
during precharge, which lengthens the row cycle (modeled as a constant
per-activation bank-time penalty).  When a row's counter crosses the
back-off threshold, the chip asserts the back-off signal; the controller
responds with an RFM, letting the chip refresh that row's victims.  PRAC's
fine-grained tracking triggers far fewer preventive refreshes than RFM, at
the cost of in-DRAM counter storage and the extended timing.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.mitigations.base import (
    EPOCH_BULK_MIN,
    Action,
    MitigationMechanism,
    RfmCommand,
)

#: Back-off threshold as a fraction of N_RH (guard band for the blast
#: radius and for activations in flight while the back-off is serviced).
BACKOFF_FRACTION = 0.4
#: Extra bank-busy time per activation for the in-precharge counter update.
ACT_PENALTY_NS = 6.0


class PRAC(MitigationMechanism):
    """Per-row activation counters in DRAM with back-off RFMs."""

    name = "PRAC"
    act_penalty_ns = ACT_PENALTY_NS
    #: Per-row counters ignore activation times; the kernel can skip
    #: buffering the time column.
    epoch_needs_times = False

    def __init__(self, nrh: int, *,
                 backoff_fraction: float = BACKOFF_FRACTION) -> None:
        super().__init__(nrh)
        if not 0.0 < backoff_fraction <= 1.0:
            raise ConfigError("backoff fraction must be in (0, 1]")
        self.threshold = max(1, int(nrh * backoff_fraction))
        self._counts: dict[tuple[int, int], int] = defaultdict(int)
        #: Largest per-row counter, maintained so ``epoch_credit`` is
        #: O(1): ``threshold - 1 - max`` activations cannot reach the
        #: back-off threshold on any row.  Recomputed after a trigger
        #: resets the (previous maximum) row's counter.
        self._max_count = 0

    def on_activation(self, flat_bank: int, row: int,
                      now_ns: float) -> Sequence[Action]:
        self.counters.activations_observed += 1
        counts = self._counts
        key = (flat_bank, row)
        count = counts[key] + 1
        if count < self.threshold:
            counts[key] = count
            if count > self._max_count:
                self._max_count = count
            return []
        counts[key] = 0
        self._max_count = max(counts.values(), default=0)
        self.counters.triggers += 1
        return [RfmCommand(flat_bank, is_backoff=True)]

    def epoch_credit(self) -> int:
        credit = self.threshold - 1 - self._max_count
        return credit if credit > 0 else 0

    def on_activation_epoch(
        self, flat_banks: Sequence[int] | None, rows: Sequence[int] | None,
        times: Sequence[float] | None, count: int | None = None,
    ) -> tuple[tuple[int, ...], list[Action]]:
        n = count if count is not None else len(flat_banks)
        if n > self.epoch_credit():
            return super().on_activation_epoch(flat_banks, rows, times,
                                               count)
        self.counters.activations_observed += n
        if n >= EPOCH_BULK_MIN:
            # First-occurrence order, so the counter dict is literally the
            # one the sequential replay would build (insertion order and
            # all), not just value-equal.
            keys = ((np.asarray(flat_banks, dtype=np.int64) << 32)
                    | np.asarray(rows, dtype=np.int64))
            uniq, first, occ = np.unique(keys, return_index=True,
                                         return_counts=True)
            order = np.argsort(first, kind="stable")
            pairs = [((key >> 32, key & 0xFFFFFFFF), c)
                     for key, c in zip(uniq[order].tolist(),
                                       occ[order].tolist())]
        else:
            # Small epochs: direct increments, no aggregation round trip.
            pairs = (((flat_bank, row), 1)
                     for flat_bank, row in zip(flat_banks, rows))
        counts = self._counts
        maximum = self._max_count
        for key, occurrences in pairs:
            value = counts[key] + occurrences
            counts[key] = value
            if value > maximum:
                maximum = value
        self._max_count = maximum
        return (), []

    def on_refresh_window(self, now_ns: float) -> None:
        """Counters of refreshed rows reset over the refresh window."""
        self._counts.clear()
        self._max_count = 0

    def area_mm2(self, banks: int) -> float:
        """Counters live in DRAM mats; controller-side cost is negligible."""
        return 5e-4
