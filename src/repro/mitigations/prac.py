"""PRAC: Per-Row Activation Counting (JESD79-5C, 2024).

The DRAM chip keeps an activation counter inside every row and updates it
during precharge, which lengthens the row cycle (modeled as a constant
per-activation bank-time penalty).  When a row's counter crosses the
back-off threshold, the chip asserts the back-off signal; the controller
responds with an RFM, letting the chip refresh that row's victims.  PRAC's
fine-grained tracking triggers far fewer preventive refreshes than RFM, at
the cost of in-DRAM counter storage and the extended timing.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import ConfigError
from repro.mitigations.base import Action, MitigationMechanism, RfmCommand

#: Back-off threshold as a fraction of N_RH (guard band for the blast
#: radius and for activations in flight while the back-off is serviced).
BACKOFF_FRACTION = 0.4
#: Extra bank-busy time per activation for the in-precharge counter update.
ACT_PENALTY_NS = 6.0


class PRAC(MitigationMechanism):
    """Per-row activation counters in DRAM with back-off RFMs."""

    name = "PRAC"
    act_penalty_ns = ACT_PENALTY_NS

    def __init__(self, nrh: int, *,
                 backoff_fraction: float = BACKOFF_FRACTION) -> None:
        super().__init__(nrh)
        if not 0.0 < backoff_fraction <= 1.0:
            raise ConfigError("backoff fraction must be in (0, 1]")
        self.threshold = max(1, int(nrh * backoff_fraction))
        self._counts: dict[tuple[int, int], int] = defaultdict(int)

    def on_activation(self, flat_bank: int, row: int,
                      now_ns: float) -> list[Action]:
        self.counters.activations_observed += 1
        key = (flat_bank, row)
        self._counts[key] += 1
        if self._counts[key] < self.threshold:
            return []
        self._counts[key] = 0
        self.counters.triggers += 1
        return [RfmCommand(flat_bank, is_backoff=True)]

    def on_refresh_window(self, now_ns: float) -> None:
        """Counters of refreshed rows reset over the refresh window."""
        self._counts.clear()

    def area_mm2(self, banks: int) -> float:
        """Counters live in DRAM mats; controller-side cost is negligible."""
        return 5e-4
