"""Plugin interface between the memory controller and RowHammer mitigations.

The controller calls :meth:`MitigationMechanism.on_activation` for every row
activation it performs; the mechanism returns a (possibly empty) sequence of
actions — preventive refreshes, RFM commands, or metadata traffic — which
the controller executes, asking the refresh-latency policy (PaCRAM or the
nominal default) for the charge-restoration latency of every preventive
refresh it schedules.

Batch (epoch) dispatch
----------------------

The array simulation tier additionally drives mechanisms through a batch
protocol so the dominant no-action path never enters Python per
activation:

* :meth:`MitigationMechanism.epoch_credit` returns how many upcoming
  activations — of *any* addresses — are guaranteed to produce no actions
  given the mechanism's current state (0 = no guarantee; conservative
  answers only cost speed, never correctness).
* The kernel buffers that many activations without calling the mechanism,
  then hands the whole run to
  :meth:`MitigationMechanism.on_activation_epoch` in one call; the next
  (boundary) activation is processed through the ordinary scalar
  :meth:`on_activation`, so every decision that *can* produce an action is
  made by exactly the code the scalar oracle runs, in the same order, on
  the same state and rng stream.

The default :meth:`on_activation_epoch` replays the epoch through
:meth:`on_activation` sequentially — bit-identical by construction — and
is also what offline callers (e.g. the epoch-parity fuzzers) use as the
reference.  Vectorized overrides must preserve the exact counter values,
dict insertion orders, and rng consumption of the sequential replay.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from dataclasses import dataclass
from itertools import repeat

from repro.errors import ConfigError, SimulationError

#: Blast radius of 2: a preventive refresh covers the four rows within
#: +/- 2 rows of the aggressor (§9.1, accounting for Half-Double).
BLAST_RADIUS = 2
BLAST_ROWS = 2 * BLAST_RADIUS

#: Epoch size below which vectorized on_activation_epoch overrides update
#: their counters with direct dict increments instead of the
#: ``np.unique`` aggregation.  Measured crossover: the numpy round trip
#: (two asarray calls, unique, stable argsort, tolist) costs ~15-25us
#: regardless of epoch size, while direct increments run ~80ns each —
#: aggregation only wins once epochs pass a couple hundred activations
#: *and* keys repeat enough for the collapse to pay for itself.
EPOCH_BULK_MIN = 192


@dataclass(frozen=True)
class PreventiveRefresh:
    """Refresh victims of ``aggressor_row`` at the given physical offsets.

    The default offsets cover the full +/- 2 blast radius; probabilistic
    mechanisms may refresh a subset per trigger (e.g. one side at a time).
    """

    flat_bank: int
    aggressor_row: int
    victim_offsets: tuple[int, ...] = (-2, -1, 1, 2)

    @property
    def victim_count(self) -> int:
        return len(self.victim_offsets)


@dataclass(frozen=True)
class RfmCommand:
    """A refresh-management command: the DRAM refreshes victims internally,
    blocking the bank while it does so."""

    flat_bank: int
    victim_rows: int = BLAST_ROWS
    is_backoff: bool = False  #: True when DRAM-initiated (PRAC back-off)


@dataclass(frozen=True)
class MetadataAccess:
    """Extra DRAM traffic for mitigation metadata (Hydra's RCT in DRAM)."""

    flat_bank: int
    reads: int = 0
    writes: int = 0


Action = PreventiveRefresh | RfmCommand | MetadataAccess


@dataclass
class MitigationCounters:
    """Bookkeeping every mechanism shares (exposed for tests/analysis)."""

    activations_observed: int = 0
    triggers: int = 0


class MitigationMechanism(abc.ABC):
    """Base class for preventive-refresh RowHammer mitigations."""

    name: str = "abstract"
    #: Extra per-activation bank-time cost (PRAC's extended row cycle for
    #: in-DRAM counter updates); zero for controller-side mechanisms.
    act_penalty_ns: float = 0.0
    #: Whether :meth:`on_activation_epoch` needs the per-activation trace
    #: columns.  Mechanisms whose epoch decisions depend only on the
    #: activation *count* (NoMitigation, PARA's Bernoulli stream) set this
    #: False so the kernel can skip buffering addresses entirely.
    epoch_needs_trace: bool = True
    #: Finer-grained column opt-outs, honored when ``epoch_needs_trace``
    #: is True: a mechanism whose epoch update ignores row addresses
    #: (bank-granular RFM) or activation times (all the table-based
    #: counters) clears the matching flag, and the kernel skips buffering
    #: that column — one fewer list append per activation on the hot
    #: path.  Clearing a flag is a declaration that :meth:`on_activation`
    #: never reads the corresponding argument, so the sequential-replay
    #: fallback may substitute placeholders without changing behavior.
    epoch_needs_rows: bool = True
    epoch_needs_times: bool = True
    #: True for mechanisms that guarantee a bounded hammer count per victim
    #: (exact counters like Graphene).  Probabilistic mechanisms (PARA) leave
    #: this False so observers don't flag their expected statistical misses.
    deterministic_coverage: bool = False

    def __init__(self, nrh: int) -> None:
        if nrh <= 0:
            raise ConfigError(f"N_RH must be positive, got {nrh}")
        self.nrh = nrh
        self.counters = MitigationCounters()

    @abc.abstractmethod
    def on_activation(self, flat_bank: int, row: int,
                      now_ns: float) -> Sequence[Action]:
        """Observe one row activation; return preventive actions to execute."""

    def epoch_credit(self) -> int:
        """Upcoming activations (any addresses) guaranteed action-free.

        The array kernel buffers this many activations without calling
        :meth:`on_activation`, then flushes them through
        :meth:`on_activation_epoch` in one call and takes the *next*
        activation through the scalar step.  Returning 0 (the default)
        disables batching; under-promising is always safe.
        """
        return 0

    def on_activation_epoch(
        self, flat_banks: Sequence[int] | None, rows: Sequence[int] | None,
        times: Sequence[float] | None, count: int | None = None,
    ) -> tuple[tuple[int, ...], list[Action]]:
        """Observe a run of activations in one call.

        Returns ``(trigger_indices, actions)``: the epoch-relative indices
        of activations that produced actions, and the concatenated actions
        in activation order.  The base implementation replays the epoch
        through :meth:`on_activation` sequentially, so it is bit-identical
        to per-activation dispatch by construction.  Mechanisms that set
        ``epoch_needs_trace = False`` are called with ``None`` columns and
        an explicit ``count``; all other callers pass real columns (and
        may omit ``count``, which then defaults to ``len(flat_banks)``).
        """
        if flat_banks is None:
            raise SimulationError(
                f"{type(self).__name__}.on_activation_epoch needs the "
                "activation trace columns; a mechanism that declares "
                "epoch_needs_trace=False must override it with a "
                "count-only implementation")
        if rows is None:
            if self.epoch_needs_rows:
                raise SimulationError(
                    f"{type(self).__name__}.on_activation_epoch needs the "
                    "row column (epoch_needs_rows is set)")
            rows = repeat(0)
        if times is None:
            if self.epoch_needs_times:
                raise SimulationError(
                    f"{type(self).__name__}.on_activation_epoch needs the "
                    "time column (epoch_needs_times is set)")
            times = repeat(0.0)
        triggers: list[int] = []
        actions: list[Action] = []
        on_activation = self.on_activation
        for index, (flat_bank, row, now_ns) in enumerate(
                zip(flat_banks, rows, times)):
            acts = on_activation(flat_bank, row, now_ns)
            if acts:
                triggers.append(index)
                actions.extend(acts)
        return tuple(triggers), actions

    def on_refresh_window(self, now_ns: float) -> None:
        """Called once per refresh window (tREFW): reset windowed state."""

    def area_mm2(self, banks: int) -> float:
        """Mechanism SRAM/CAM area for a system with ``banks`` DRAM banks."""
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(nrh={self.nrh})"


class NoMitigation(MitigationMechanism):
    """The paper's 'No mitigation' baseline configuration."""

    name = "None"
    epoch_needs_trace = False

    def __init__(self, nrh: int = 1) -> None:
        super().__init__(nrh=max(nrh, 1))

    def on_activation(self, flat_bank: int, row: int,
                      now_ns: float) -> Sequence[Action]:
        self.counters.activations_observed += 1
        return []

    def epoch_credit(self) -> int:
        """Never acts: baseline runs batch whole refresh windows at once."""
        return 1 << 30

    def on_activation_epoch(
        self, flat_banks: Sequence[int] | None, rows: Sequence[int] | None,
        times: Sequence[float] | None, count: int | None = None,
    ) -> tuple[tuple[int, ...], list[Action]]:
        n = count if count is not None else len(flat_banks)
        self.counters.activations_observed += n
        return (), []
