"""Plugin interface between the memory controller and RowHammer mitigations.

The controller calls :meth:`MitigationMechanism.on_activation` for every row
activation it performs; the mechanism returns a (possibly empty) list of
actions — preventive refreshes, RFM commands, or metadata traffic — which
the controller executes, asking the refresh-latency policy (PaCRAM or the
nominal default) for the charge-restoration latency of every preventive
refresh it schedules.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import ConfigError

#: Blast radius of 2: a preventive refresh covers the four rows within
#: +/- 2 rows of the aggressor (§9.1, accounting for Half-Double).
BLAST_RADIUS = 2
BLAST_ROWS = 2 * BLAST_RADIUS


@dataclass(frozen=True)
class PreventiveRefresh:
    """Refresh victims of ``aggressor_row`` at the given physical offsets.

    The default offsets cover the full +/- 2 blast radius; probabilistic
    mechanisms may refresh a subset per trigger (e.g. one side at a time).
    """

    flat_bank: int
    aggressor_row: int
    victim_offsets: tuple[int, ...] = (-2, -1, 1, 2)

    @property
    def victim_count(self) -> int:
        return len(self.victim_offsets)


@dataclass(frozen=True)
class RfmCommand:
    """A refresh-management command: the DRAM refreshes victims internally,
    blocking the bank while it does so."""

    flat_bank: int
    victim_rows: int = BLAST_ROWS
    is_backoff: bool = False  #: True when DRAM-initiated (PRAC back-off)


@dataclass(frozen=True)
class MetadataAccess:
    """Extra DRAM traffic for mitigation metadata (Hydra's RCT in DRAM)."""

    flat_bank: int
    reads: int = 0
    writes: int = 0


Action = PreventiveRefresh | RfmCommand | MetadataAccess


@dataclass
class MitigationCounters:
    """Bookkeeping every mechanism shares (exposed for tests/analysis)."""

    activations_observed: int = 0
    triggers: int = 0


class MitigationMechanism(abc.ABC):
    """Base class for preventive-refresh RowHammer mitigations."""

    name: str = "abstract"
    #: Extra per-activation bank-time cost (PRAC's extended row cycle for
    #: in-DRAM counter updates); zero for controller-side mechanisms.
    act_penalty_ns: float = 0.0
    #: True for mechanisms that guarantee a bounded hammer count per victim
    #: (exact counters like Graphene).  Probabilistic mechanisms (PARA) leave
    #: this False so observers don't flag their expected statistical misses.
    deterministic_coverage: bool = False

    def __init__(self, nrh: int) -> None:
        if nrh <= 0:
            raise ConfigError(f"N_RH must be positive, got {nrh}")
        self.nrh = nrh
        self.counters = MitigationCounters()

    @abc.abstractmethod
    def on_activation(self, flat_bank: int, row: int,
                      now_ns: float) -> list[Action]:
        """Observe one row activation; return preventive actions to execute."""

    def on_refresh_window(self, now_ns: float) -> None:
        """Called once per refresh window (tREFW): reset windowed state."""

    def area_mm2(self, banks: int) -> float:
        """Mechanism SRAM/CAM area for a system with ``banks`` DRAM banks."""
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(nrh={self.nrh})"


class NoMitigation(MitigationMechanism):
    """The paper's 'No mitigation' baseline configuration."""

    name = "None"

    def __init__(self, nrh: int = 1) -> None:
        super().__init__(nrh=max(nrh, 1))

    def on_activation(self, flat_bank: int, row: int,
                      now_ns: float) -> list[Action]:
        self.counters.activations_observed += 1
        return []
