"""Cross-point memoization of no-PaCRAM baseline simulation results.

Every evaluation sweep normalizes against baseline runs that do not depend
on the swept axis: Fig. 16 divides by the same mitigation's no-PaCRAM IPC
at every tRAS factor, Figs. 17/18 divide by the no-mitigation run at every
(mitigation, PaCRAM-config) cell, and a tRAS sweep repeats all of them per
point.  Those baselines are pure functions of (workloads, trace content,
request count, seed, mitigation, N_RH, system config) — so, like the
characterization :class:`~repro.characterization.probecache.ProbeCache`,
they can be memoized with zero behavior change.

The cache is a thin instantiation of
:class:`repro.runtime.cache.DigestCache` (one shared implementation with
the characterization probe cache), bound to a *code digest*
(:func:`baseline_code_digest`) that hashes every constant of the
timing/energy/mitigation model that shapes a result without appearing in
the key.  :meth:`~DigestCache.ensure` drops all entries when the digest
drifts, so editing the simulator can never serve stale statistics.
Entries optionally persist to disk (one atomic JSON file per key) so
separate sweep worker processes — and separate sweep invocations — share
baselines; the tier is registered with the unified ``--force`` clearing.

Only *unchecked, no-PaCRAM* runs are cached (:func:`cacheable`): PaCRAM
runs depend on the swept latency factor, and checked runs must actually
execute to observe violations.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.errors import SimulationError
from repro.runtime.cache import DigestCache
from repro.sim.config import SystemConfig
from repro.sim.stats import ControllerStats, CoreStats, LatencySummary
from repro.sim.system import SimulationResult
from repro.workloads.trace import Trace

#: Bump when the cached-result schema or any hashed semantics change in a
#: way the constant digest cannot see (e.g. a control-flow fix).
SCHEMA_VERSION = 2

#: In-memory entry bound; a full fig17-style grid holds well under this.
DEFAULT_MAXSIZE = 512


def baseline_code_digest() -> str:
    """Digest of every model constant that shapes a baseline result.

    The cache key captures the *inputs* (workloads, traces, config); this
    digest captures the *simulator*: timing-independent energy constants,
    controller behavior knobs, and each mitigation's tuning constants.
    Editing any of them invalidates every cached baseline on next use.
    """
    from repro.mitigations import graphene, hydra, para, prac, rfm
    from repro.sim import energy
    from repro.sim.controller import MemoryController

    constants = {
        "schema": SCHEMA_VERSION,
        "energy": {
            "act_base": energy.E_ACT_BASE_NJ,
            "restore_per_ns": energy.E_RESTORE_PER_NS,
            "read": energy.E_READ_NJ,
            "write": energy.E_WRITE_NJ,
            "background_w": energy.P_BACKGROUND_W_PER_RANK,
        },
        "controller": {
            "forward_latency_ns": MemoryController.FORWARD_LATENCY_NS,
        },
        "mitigations": {
            "para_strength": para.PARA_STRENGTH,
            "graphene": [graphene.THRESHOLD_FRACTION,
                         graphene.ACTS_PER_WINDOW],
            "hydra": [hydra.GROUP_SIZE, hydra.RCC_ENTRIES,
                      hydra.GROUP_FRACTION, hydra.ROW_FRACTION],
            "rfm_divisor": rfm.RAAIMT_DIVISOR,
            "prac": [prac.ACT_PENALTY_NS, prac.BACKOFF_FRACTION],
        },
    }
    blob = json.dumps(constants, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def trace_digest(trace: Trace) -> str:
    """Content digest of one trace's arrays (name excluded on purpose:
    identical streams under different labels are the same workload)."""
    h = hashlib.sha256()
    h.update(trace.bubbles.tobytes())
    h.update(trace.is_write.tobytes())
    h.update(trace.addresses.tobytes())
    return h.hexdigest()[:16]


def baseline_key(workloads: tuple[str, ...], traces: list[Trace], *,
                 mitigation: str, nrh: int, requests: int, seed: int,
                 config: SystemConfig) -> str:
    """Identity of one baseline run: every input the result depends on.

    The simulation kernel is deliberately *not* part of the key — the
    batched kernel is bit-exact with the scalar oracle, so either may
    populate an entry the other consumes (the parity suite enforces this).
    """
    from dataclasses import asdict

    raw = {
        "workloads": list(workloads),
        "traces": [trace_digest(t) for t in traces],
        "mitigation": mitigation,
        "nrh": nrh,
        "requests": requests,
        "seed": seed,
        "config": asdict(config),
    }
    return json.dumps(raw, sort_keys=True)


def cacheable(*, pacram, checker, violations_path) -> bool:
    """Whether a run's result may be served from / stored in the cache."""
    return pacram is None and checker is None and violations_path is None


# ---------------------------------------------------------------------------
# SimulationResult <-> JSON (exact float round trip via repr)
# ---------------------------------------------------------------------------
def result_to_json(result: SimulationResult) -> dict:
    from dataclasses import asdict

    if result.protocol_violations:
        raise SimulationError("refusing to cache a checked run's result")
    payload = asdict(result)
    payload.pop("protocol_violations")
    return payload


def result_from_json(payload: dict) -> SimulationResult:
    return SimulationResult(
        core_stats=[CoreStats(**s) for s in payload["core_stats"]],
        controller_stats=ControllerStats(**payload["controller_stats"]),
        elapsed_ns=payload["elapsed_ns"],
        preventive_busy_fraction=payload["preventive_busy_fraction"],
        energy_nj=payload["energy_nj"],
        energy_breakdown=dict(payload["energy_breakdown"]),
        read_latency=LatencySummary(**payload["read_latency"]),
    )


class BaselineCache(DigestCache):
    """Digest-bound LRU memo of baseline :class:`SimulationResult`\\ s.

    ``disk_dir`` adds a persistent tier: entries are written as one atomic
    JSON file each (safe under parallel sweep workers) and read back on
    in-memory misses; files bound to a stale digest are ignored.  Every
    :meth:`get` returns a *fresh* result object so callers can mutate
    their copy freely.
    """

    name = "baseline"
    tier_subdir = "baseline_cache"
    file_prefix = "baseline"

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE,
                 disk_dir: str | Path | None = None) -> None:
        super().__init__(maxsize, disk_dir)

    def encode(self, result: SimulationResult) -> dict:
        return result_to_json(result)

    def decode(self, payload: dict) -> SimulationResult:
        return result_from_json(payload)

    def valid_payload(self, payload: object) -> bool:
        return isinstance(payload, dict)
