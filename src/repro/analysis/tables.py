"""Text renderers for the paper's tables (1, 3, and 4)."""

from __future__ import annotations

from repro.characterization.results import ModuleCharacterization
from repro.core.config import PaCRAMConfig
from repro.dram.catalog import (
    PACRAM_TRAS_FACTORS,
    all_module_specs,
    total_chip_count,
)
from repro.dram.timing import TESTED_TRAS_FACTORS
from repro.errors import ConfigError
from repro.units import format_time_ns


def _fmt_nrh(value: int | None) -> str:
    if value is None:
        return "No bitflips"
    if value == 0:
        return "0 (retention)"
    return f"{value / 1000:.1f}K"


def render_table1() -> str:
    """Table 1: the tested DDR4 DRAM chip inventory."""
    lines = ["Module  Part                      Form     Density Rev  Org   "
             "Date  Chips"]
    for spec in all_module_specs():
        lines.append(
            f"{spec.module_id:<7} {spec.part_number:<25} "
            f"{spec.form_factor:<8} {spec.die_density_gbit:>3} Gb  "
            f"{spec.die_revision:<4} x{spec.device_width:<4} "
            f"{spec.date_code:<5} {spec.num_chips:>3}")
    lines.append(f"Total chips: {total_chip_count()}")
    return "\n".join(lines)


def render_table3(measured: dict[str, ModuleCharacterization] | None = None,
                  ) -> str:
    """Table 3: lowest observed N_RH per module per latency.

    With ``measured`` (module id -> characterization), renders this
    library's measurements; otherwise renders the paper's published values.
    """
    header = "Module  " + "  ".join(f"M={f:.2f}" for f in TESTED_TRAS_FACTORS)
    lines = [header]
    for spec in all_module_specs():
        cells = []
        for factor in TESTED_TRAS_FACTORS:
            if measured is not None:
                characterization = measured.get(spec.module_id)
                if characterization is None:
                    cells.append("-")
                    continue
                value = characterization.lowest_nrh(factor)
            else:
                value = spec.lowest_nrh[factor]
            cells.append(_fmt_nrh(value))
        lines.append(f"{spec.module_id:<7} " + "  ".join(f"{c:<12}" for c in cells))
    return "\n".join(lines)


def render_table4() -> str:
    """Table 4: PaCRAM parameters (N_RH, N_PCR, t_FCRI) per module/latency,
    with t_FCRI recomputed through the §8.3 formula."""
    header = "Module  " + "  ".join(f"M={f:.2f}" for f in PACRAM_TRAS_FACTORS)
    lines = [header]
    for spec in all_module_specs():
        cells = []
        for factor in PACRAM_TRAS_FACTORS:
            try:
                config = PaCRAMConfig.from_catalog(spec.module_id, factor)
            except ConfigError:
                cells.append("N/A")
                continue
            cells.append(
                f"{config.nrh_reduced / 1000:.1f}K/"
                f"{config.npcr}/"
                f"{format_time_ns(config.tfcri_ns)}")
        lines.append(f"{spec.module_id:<7} " + "  ".join(f"{c:<18}" for c in cells))
    return "\n".join(lines)


def table4_formula_check(tolerance: float = 0.10) -> list[str]:
    """Cross-check the §8.3 t_FCRI formula against the paper's printed
    values; returns the list of cells deviating beyond ``tolerance``."""
    mismatches = []
    for spec in all_module_specs():
        for factor, params in spec.pacram.items():
            if params is None:
                continue
            config = PaCRAMConfig.from_catalog(spec.module_id, factor)
            printed = params.tfcri_ns
            relative = abs(config.tfcri_ns - printed) / printed
            if relative > tolerance:
                mismatches.append(
                    f"{spec.module_id}@{factor}: formula "
                    f"{format_time_ns(config.tfcri_ns)} vs printed "
                    f"{format_time_ns(printed)} ({relative:.1%})")
    return mismatches
