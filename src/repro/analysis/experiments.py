"""Registry of every reproduced experiment, indexed by paper identifier.

Each entry maps a table/figure id to its description and the callable that
regenerates it (a figure builder or table renderer).  Benchmarks and the
examples use this registry; ``experiment_ids()`` is the canonical list for
coverage checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis import figures, tables
from repro.core.area import fr_area_fraction_of_xeon, fr_area_mm2
from repro.core.profiling import profiling_cost
from repro.errors import ConfigError


@dataclass(frozen=True)
class Experiment:
    """One reproducible table or figure."""

    identifier: str
    description: str
    run: Callable[[], object]


def _small_module_set() -> tuple[str, ...]:
    """A cross-vendor module subset for laptop-scale sweeps."""
    return ("H5", "H7", "M2", "M5", "S1", "S6")


_EXPERIMENTS: dict[str, Experiment] = {}


def _register(identifier: str, description: str,
              run: Callable[[], object]) -> None:
    if identifier in _EXPERIMENTS:
        raise ConfigError(f"duplicate experiment id {identifier}")
    _EXPERIMENTS[identifier] = Experiment(identifier, description, run)


_register("table1", "Tested DDR4 DRAM chip inventory",
          tables.render_table1)
_register("fig3", "Preventive-refresh overhead of 5 mitigations vs N_RH",
          lambda: figures.fig3_preventive_overhead(
              nrh_values=(1024, 128, 32), num_mixes=2, requests=2_000))
_register("fig4", "Motivational time/energy analysis (H5, S6)",
          figures.fig4_motivation)
_register("fig6", "N_RH vs charge-restoration latency (box stats)",
          lambda: figures.fig6_nrh_boxes(_small_module_set(), per_region=12))
_register("fig7", "Lowest observed N_RH per module vs latency",
          lambda: figures.fig7_lowest_nrh(_small_module_set(), per_region=12))
_register("fig8", "Per-row N_RH at 0.45 tRAS vs nominal (H8, M5, S1)",
          lambda: figures.fig8_row_scatter(per_region=24))
_register("fig9", "BER vs charge-restoration latency (box stats)",
          lambda: figures.fig9_ber_boxes(_small_module_set(), per_region=12))
_register("fig10", "Temperature x latency effect on N_RH",
          lambda: figures.fig10_temperature(("H5", "M2", "S6"), per_region=8))
_register("fig11", "N_RH vs repeated partial charge restoration",
          lambda: figures.fig11_repeated_pcr(("H5", "M2", "S6"), per_region=8))
_register("fig12", "N_RH vs up-to-15K partial restorations (H7, M2, S6)",
          lambda: figures.fig12_npr_scaling(per_region=6))
_register("fig13", "Half-Double bitflip prevalence vs latency",
          lambda: figures.fig13_halfdouble(per_region=32))
_register("fig14", "Data-retention failures vs latency",
          figures.fig14_retention)
_register("fig16", "Performance vs preventive-refresh latency",
          lambda: figures.fig16_latency_sweep(
              nrh_values=(64,), requests=2_000,
              workloads=("spec06.mcf", "ycsb.a")))
_register("fig17+18", "Performance and energy vs N_RH (PaCRAM vs none)",
          lambda: figures.fig17_18_performance_energy(
              nrh_values=(1024, 64), requests=2_000,
              workloads=("spec06.mcf", "ycsb.a")))
_register("fig19", "Periodic-refresh extension vs chip density (App. B)",
          lambda: figures.fig19_periodic(densities_gbit=(8, 64, 512)))
_register("table3", "Lowest N_RH per module per latency",
          tables.render_table3)
_register("table4", "PaCRAM parameters per module per latency",
          tables.render_table4)
_register("area", "PaCRAM hardware cost (0.09 % of a Xeon)",
          lambda: {
              "area_mm2": fr_area_mm2(32),
              "xeon_fraction": fr_area_fraction_of_xeon(32),
          })
_register("profiling", "Profiling cost (127 KB/s, 68.8 min/bank)",
          profiling_cost)

EXPERIMENTS = dict(_EXPERIMENTS)


def experiment_ids() -> tuple[str, ...]:
    return tuple(EXPERIMENTS)


def run_experiment(identifier: str) -> object:
    try:
        experiment = EXPERIMENTS[identifier]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {identifier!r}; known: {experiment_ids()}"
        ) from None
    return experiment.run()
