"""Box-and-whiskers statistics (the paper's footnote-4 definition).

The box is bounded by the first and third quartiles (medians of the lower
and upper halves of the ordered data); whiskers show the minimum and
maximum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CharacterizationError


def _median(sorted_values: list[float]) -> float:
    n = len(sorted_values)
    mid = n // 2
    if n % 2:
        return sorted_values[mid]
    return (sorted_values[mid - 1] + sorted_values[mid]) / 2.0


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary of one distribution."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @property
    def iqr(self) -> float:
        """Inter-quartile range (the box size)."""
        return self.q3 - self.q1

    @classmethod
    def from_values(cls, values: list[float]) -> "BoxStats":
        if not values:
            raise CharacterizationError("cannot summarize an empty sample")
        ordered = sorted(values)
        n = len(ordered)
        mid = n // 2
        lower = ordered[:mid] or ordered[:1]
        upper = ordered[mid + (n % 2):] or ordered[-1:]
        return cls(
            minimum=ordered[0],
            q1=_median(lower),
            median=_median(ordered),
            q3=_median(upper),
            maximum=ordered[-1],
        )

    def row(self) -> str:
        """One-line rendering for benchmark output."""
        return (f"min={self.minimum:.3f} q1={self.q1:.3f} "
                f"med={self.median:.3f} q3={self.q3:.3f} "
                f"max={self.maximum:.3f}")
