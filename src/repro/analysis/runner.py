"""Simulation-run orchestration shared by figure builders and benchmarks."""

from __future__ import annotations

from pathlib import Path

from repro.core.config import PaCRAMConfig
from repro.core.pacram import PaCRAM
from repro.dram.catalog import PACRAM_REFERENCE_MODULES
from repro.dram.vendor import Manufacturer
from repro.errors import ConfigError
from repro.mitigations import make_mitigation
from repro.sim.config import SystemConfig
from repro.sim.system import MemorySystem, SimulationResult
from repro.validation import default_check_mode, make_checker
from repro.workloads.suites import workload_by_name

#: Best-observed charge-restoration latencies per vendor (§9.2, obs. 5):
#: PaCRAM-H uses 0.36 tRAS, PaCRAM-M 0.18 tRAS, PaCRAM-S 0.45 tRAS.
PACRAM_BEST_FACTORS: dict[str, float] = {"H": 0.36, "M": 0.18, "S": 0.45}

#: The tested N_RH values of the evaluation (§9.1).
EVALUATED_NRH_VALUES: tuple[int, ...] = (1024, 512, 256, 128, 64, 32)


def pacram_reference_config(vendor: str,
                            tras_factor: float | None = None) -> PaCRAMConfig:
    """The PaCRAM-H / PaCRAM-M / PaCRAM-S configuration of §9.1.

    Uses the vendor's representative module (H5 / M2 / S6) at its
    best-observed latency unless ``tras_factor`` overrides it.
    """
    vendor = vendor.upper()
    if vendor not in PACRAM_BEST_FACTORS:
        raise ConfigError(f"vendor must be one of H/M/S, got {vendor!r}")
    module_id = PACRAM_REFERENCE_MODULES[Manufacturer(vendor)]
    factor = tras_factor if tras_factor is not None else PACRAM_BEST_FACTORS[vendor]
    return PaCRAMConfig.from_catalog(module_id, factor)


def effective_sim_kernel(sim_kernel: str | None, check_mode: str) -> str:
    """Deprecated shim: the kernel a run will actually use.

    Resolution (including the checking-forces-the-oracle rule) lives in
    :class:`repro.exec.ExecutionPolicy`; this survives for pre-policy
    callers and is equivalent to
    ``checked_kernel("sim", sim_kernel, check_protocol=check_mode)``.
    """
    from repro.exec import checked_kernel

    return checked_kernel("sim", sim_kernel, check_protocol=check_mode)


def run_simulation(workload_names: tuple[str, ...], *,
                   mitigation: str = "None", nrh: int = 1024,
                   pacram: PaCRAMConfig | None = None,
                   requests: int = 4_000, seed: int = 7,
                   config: SystemConfig | None = None,
                   check_protocol: str | None = None,
                   violations_path: str | Path | None = None,
                   sim_kernel: str | None = None,
                   cache=None,
                   ) -> SimulationResult:
    """Run one configuration: workloads x mitigation x optional PaCRAM.

    When PaCRAM is enabled the mitigation is instantiated with the *scaled*
    N_RH (§8.2's security adjustment) and preventive refreshes use the
    reduced latency through the policy hook.

    ``check_protocol`` attaches a :class:`repro.validation.ProtocolChecker`
    to the controller (``"off"``/``"tolerant"``/``"strict"``; ``None``
    falls back to :func:`repro.validation.default_check_mode`).  Observed
    violations land in ``result.protocol_violations`` and, if
    ``violations_path`` is given, in a deterministic JSONL ledger there.

    ``sim_kernel`` selects the controller drain loop (``"scalar"`` oracle
    or the bit-exact ``"batched"`` fast path; ``None`` = process default);
    checking forces the scalar oracle.  ``cache`` (a
    :class:`~repro.analysis.baselines.BaselineCache`) memoizes unchecked
    no-PaCRAM runs across calls — sweep points share their baselines
    instead of re-simulating them.
    """
    from repro.analysis.baselines import (
        baseline_code_digest,
        baseline_key,
        cacheable,
    )
    from repro.exec import checked_kernel

    if config is None:
        config = SystemConfig(num_cores=max(1, len(workload_names)))
    traces = [workload_by_name(name, requests=requests, seed=seed + i)
              for i, name in enumerate(workload_names)]
    mode = check_protocol if check_protocol is not None else default_check_mode()
    kernel = checked_kernel("sim", sim_kernel, check_protocol=mode)
    use_cache = cache is not None and cacheable(
        pacram=pacram, checker=None if mode == "off" else mode,
        violations_path=violations_path)
    key = None
    if use_cache:
        cache.ensure(baseline_code_digest())
        key = baseline_key(tuple(workload_names), traces,
                           mitigation=mitigation, nrh=nrh,
                           requests=requests, seed=seed, config=config)
        cached = cache.get(key)
        if cached is not None:
            return cached
    policy = None
    effective_nrh = nrh
    if pacram is not None:
        policy = PaCRAM(config, pacram)
        effective_nrh = pacram.scaled_nrh(nrh)
    mechanism = make_mitigation(mitigation, effective_nrh,
                                batched=(kernel in ("batched", "array")),
                                config=config)
    checker = make_checker(
        config, mode=mode,
        partial_limit=(policy.partial_restoration_limit()
                       if policy is not None else None),
        mitigation=mechanism)
    system = MemorySystem(config, traces, mitigation=mechanism, policy=policy,
                          observer=checker)
    result = system.run(kernel)
    if checker is not None:
        result.protocol_violations = list(checker.violations)
        if violations_path is not None:
            checker.write_ledger(violations_path)
    if use_cache:
        cache.put(key, result)
    return result
