"""Terminal rendering of experiment series (ASCII charts).

The benchmark harness and CLI print data series; these helpers render them
as compact ASCII line/bar charts so trends are visible without plotting
dependencies.
"""

from __future__ import annotations

from repro.errors import ConfigError

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """A one-line bar rendering of a numeric series.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    """
    if not values:
        raise ConfigError("nothing to render")
    lo, hi = min(values), max(values)
    if hi == lo:
        return _BARS[4] * len(values)
    span = hi - lo
    out = []
    for value in values:
        index = 1 + round((value - lo) / span * (len(_BARS) - 2))
        out.append(_BARS[index])
    return "".join(out)


def bar_chart(series: dict, *, width: int = 40,
              value_format: str = "{:.4f}") -> str:
    """A labeled horizontal bar chart of a {label: value} mapping."""
    if not series:
        raise ConfigError("nothing to render")
    label_width = max(len(str(key)) for key in series)
    peak = max(abs(float(v)) for v in series.values()) or 1.0
    lines = []
    for key, value in series.items():
        bar = "#" * max(1, round(abs(float(value)) / peak * width))
        lines.append(f"{str(key):>{label_width}} | {bar} "
                     + value_format.format(float(value)))
    return "\n".join(lines)


def curve_table(series: dict, *, x_label: str = "x",
                y_label: str = "y") -> str:
    """A two-column table with a sparkline footer."""
    if not series:
        raise ConfigError("nothing to render")
    lines = [f"{x_label:>10}  {y_label}"]
    for key, value in series.items():
        lines.append(f"{key!s:>10}  {float(value):.4f}")
    lines.append(f"{'trend':>10}  {sparkline([float(v) for v in series.values()])}")
    return "\n".join(lines)
