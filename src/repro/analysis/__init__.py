"""Analysis: box statistics, figure data builders, and table renderers.

Each ``figN_*`` function in :mod:`repro.analysis.figures` regenerates the
data behind one figure of the paper, at a caller-chosen scale; the
:mod:`repro.analysis.tables` module renders Tables 1/3/4; and
:mod:`repro.analysis.experiments` indexes every experiment by its paper
identifier.
"""

from repro.analysis.baselines import BaselineCache, baseline_code_digest
from repro.analysis.boxstats import BoxStats
from repro.analysis.runner import (
    PACRAM_BEST_FACTORS,
    effective_sim_kernel,
    pacram_reference_config,
    run_simulation,
)
from repro.analysis.experiments import EXPERIMENTS, experiment_ids
from repro.analysis.sweeprunner import SweepGrid, SweepRunner

__all__ = [
    "BaselineCache",
    "baseline_code_digest",
    "BoxStats",
    "PACRAM_BEST_FACTORS",
    "effective_sim_kernel",
    "pacram_reference_config",
    "run_simulation",
    "EXPERIMENTS",
    "experiment_ids",
    "SweepGrid",
    "SweepRunner",
]
