"""System-evaluation sweep runner (the artifact's Ramulator workflow).

The paper's artifact launches a grid of Ramulator runs
(``run_ramulator_all.sh``: mitigation x N_RH x PaCRAM configuration x
workload), tracks their status, and parses the results into the evaluation
figures.  This module is that workflow for the built-in simulator: define a
grid, run it (resumable, persisted as JSON rows), and aggregate.

The grid knobs mirror the artifact's customization interface (A.6):
``mitigations`` (MITIGATION_LIST), ``nrh_values`` (NRH_VALUES), and the
PaCRAM latency factors per vendor (latency_factor_vrr).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.analysis.runner import pacram_reference_config, run_simulation
from repro.errors import ConfigError, SimulationError
from repro.sim.config import SystemConfig


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the evaluation grid."""

    mitigation: str
    nrh: int
    pacram_vendor: str | None  #: None = no PaCRAM
    workloads: tuple[str, ...]

    @property
    def key(self) -> str:
        vendor = self.pacram_vendor or "none"
        return f"{self.mitigation}_nrh{self.nrh}_{vendor}_" + "+".join(
            self.workloads)


@dataclass(frozen=True)
class SweepRow:
    """One completed run's parsed statistics."""

    key: str
    mitigation: str
    nrh: int
    pacram_vendor: str | None
    workloads: tuple[str, ...]
    mean_ipc: float
    energy_nj: float
    preventive_busy_fraction: float
    preventive_refresh_rows: int

    @classmethod
    def from_dict(cls, raw: dict) -> "SweepRow":
        raw = dict(raw)
        raw["workloads"] = tuple(raw["workloads"])
        return cls(**raw)


@dataclass
class SweepGrid:
    """The A.6 customization knobs."""

    mitigations: tuple[str, ...] = ("PARA", "RFM", "PRAC", "Hydra", "Graphene")
    nrh_values: tuple[int, ...] = (1024, 64)
    pacram_vendors: tuple[str | None, ...] = (None, "H", "M", "S")
    workload_sets: tuple[tuple[str, ...], ...] = (("spec06.mcf",),)
    requests: int = 2_000

    def points(self) -> list[SweepPoint]:
        out = []
        for mitigation in self.mitigations:
            for nrh in self.nrh_values:
                for vendor in self.pacram_vendors:
                    for workloads in self.workload_sets:
                        out.append(SweepPoint(mitigation, nrh, vendor,
                                              tuple(workloads)))
        if not out:
            raise ConfigError("empty sweep grid")
        return out


class SweepRunner:
    """Runs a grid resumably, persisting one JSON row per point."""

    def __init__(self, results_dir: str | Path,
                 grid: SweepGrid | None = None) -> None:
        self.results_dir = Path(results_dir)
        self.grid = grid or SweepGrid()

    def row_path(self, point: SweepPoint) -> Path:
        return self.results_dir / f"{point.key}.json"

    def status(self) -> tuple[int, int]:
        """(completed, total) — the check_run_status.py analogue."""
        points = self.grid.points()
        done = sum(1 for p in points if self.row_path(p).exists())
        return done, len(points)

    # ------------------------------------------------------------------
    def run_point(self, point: SweepPoint, *, force: bool = False) -> SweepRow:
        path = self.row_path(point)
        if path.exists() and not force:
            return SweepRow.from_dict(json.loads(path.read_text()))
        pacram = (pacram_reference_config(point.pacram_vendor)
                  if point.pacram_vendor else None)
        config = SystemConfig(num_cores=max(1, len(point.workloads)))
        result = run_simulation(
            point.workloads, mitigation=point.mitigation, nrh=point.nrh,
            pacram=pacram, requests=self.grid.requests, config=config)
        row = SweepRow(
            key=point.key, mitigation=point.mitigation, nrh=point.nrh,
            pacram_vendor=point.pacram_vendor, workloads=point.workloads,
            mean_ipc=result.mean_ipc, energy_nj=result.energy_nj,
            preventive_busy_fraction=result.preventive_busy_fraction,
            preventive_refresh_rows=(
                result.controller_stats.preventive_refresh_rows))
        self.results_dir.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(asdict(row), indent=1))
        return row

    def run(self, *, force: bool = False) -> list[SweepRow]:
        return [self.run_point(p, force=force) for p in self.grid.points()]

    # ------------------------------------------------------------------
    def aggregate(self, rows: list[SweepRow] | None = None,
                  ) -> dict[tuple[str, str], dict[int, float]]:
        """Normalized IPC vs N_RH per (mitigation, config) — Fig. 17's
        parse_ram_results step.  Normalization is against the same
        mitigation's no-PaCRAM row at the same N_RH."""
        if rows is None:
            rows = self.run()
        baselines: dict[tuple[str, int, tuple[str, ...]], float] = {}
        for row in rows:
            if row.pacram_vendor is None:
                baselines[(row.mitigation, row.nrh, row.workloads)] = row.mean_ipc
        out: dict[tuple[str, str], dict[int, float]] = {}
        for row in rows:
            if row.pacram_vendor is None:
                continue
            base = baselines.get((row.mitigation, row.nrh, row.workloads))
            if base is None or base <= 0:
                raise SimulationError(
                    f"missing no-PaCRAM baseline for {row.key}")
            label = f"PaCRAM-{row.pacram_vendor}"
            series = out.setdefault((row.mitigation, label), {})
            series[row.nrh] = row.mean_ipc / base
        return out
