"""System-evaluation sweep runner (the artifact's Ramulator workflow).

The paper's artifact launches a grid of Ramulator runs
(``run_ramulator_all.sh``: mitigation x N_RH x PaCRAM configuration x
workload), tracks their status, and parses the results into the evaluation
figures.  This module is that workflow for the built-in simulator: define a
grid, run it (resumable, persisted as JSON rows), and aggregate.

The grid knobs mirror the artifact's customization interface (A.6):
``mitigations`` (MITIGATION_LIST), ``nrh_values`` (NRH_VALUES), and the
PaCRAM latency factors per vendor (latency_factor_vrr).

Execution and persistence go through the shared job layer
(:class:`repro.service.execution.JobExecution`): grid points run as
independent worker tasks (``jobs=N`` fans them across processes, ``jobs=1``
runs the same code serially), rows are persisted atomically, corrupt rows
found on resume are quarantined and re-run, and failing points are retried
and ledgered instead of aborting the sweep.  Each point seeds its own
simulation, so parallel results are bit-identical to serial ones.

Like :class:`~repro.characterization.campaign.CharacterizationCampaign`,
the runner is a *thin adapter*: result paths, resume, the ledger/report,
scheduler fan-out, and the ``force`` contract all live in
:class:`JobExecution` (one copy, shared), and a lint-style test keeps the
execution plumbing from leaking back in here.  Only the domain stays:
how to build one point's task, load a row back checked, and aggregate.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.analysis.runner import pacram_reference_config, run_simulation
from repro.errors import ConfigError, SimulationError
from repro.exec import checked_kernel, default_policy, fallback_kernel
from repro.runtime import ProgressReporter, Task
from repro.runtime.persist import write_atomic
from repro.service.execution import JobExecution
from repro.sim.config import SystemConfig


def _sanitize(component: str) -> str:
    """Make one key component filesystem-safe (no separators/metachars)."""
    cleaned = re.sub(r"[^A-Za-z0-9.-]+", "-", component)
    return cleaned.strip("-") or "x"


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the evaluation grid."""

    mitigation: str
    nrh: int
    pacram_vendor: str | None  #: None = no PaCRAM
    workloads: tuple[str, ...]

    @property
    def key(self) -> str:
        """Stable, filesystem-safe identity of this point.

        Components are sanitized (a vendor or workload containing ``_``,
        ``+``, or path separators must not corrupt the row path), and a
        short hash of the *raw* fields keeps sanitized collisions apart —
        including ``pacram_vendor=None`` vs. a literal ``"none"`` vendor.
        """
        raw = json.dumps([self.mitigation, self.nrh, self.pacram_vendor,
                          list(self.workloads)])
        digest = hashlib.sha256(raw.encode()).hexdigest()[:8]
        vendor = ("none" if self.pacram_vendor is None
                  else _sanitize(self.pacram_vendor))
        workloads = "+".join(_sanitize(w) for w in self.workloads)[:80]
        return (f"{_sanitize(self.mitigation)}_nrh{self.nrh}_{vendor}_"
                f"{workloads}_{digest}")


@dataclass(frozen=True)
class SweepRow:
    """One completed run's parsed statistics."""

    key: str
    mitigation: str
    nrh: int
    pacram_vendor: str | None
    workloads: tuple[str, ...]
    mean_ipc: float
    energy_nj: float
    preventive_busy_fraction: float
    preventive_refresh_rows: int
    #: Protocol violations the checker observed for this point (0 when the
    #: sweep ran with checking off).
    violations: int = 0
    #: Content digest over every other field; ``None`` on legacy rows.
    digest: str | None = None

    @classmethod
    def from_dict(cls, raw: dict) -> "SweepRow":
        raw = dict(raw)
        raw["workloads"] = tuple(raw["workloads"])
        raw.setdefault("violations", 0)
        raw.setdefault("digest", None)
        return cls(**raw)


def row_digest(payload: dict) -> str:
    """Content digest of one persisted row (everything but ``digest``).

    Catches in-place corruption that still parses as valid JSON — e.g. a
    flipped digit in a stored statistic — which schema validation alone
    would accept."""
    data = {k: v for k, v in payload.items() if k != "digest"}
    blob = json.dumps(data, sort_keys=True, default=list)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def load_row(path: str | Path) -> SweepRow:
    """Parse and validate one persisted row.

    Truncated, schema-invalid, or digest-mismatched files raise
    :class:`~repro.errors.SimulationError` so the engine can quarantine
    and re-run the point instead of crashing the resume (or worse,
    aggregating corrupted statistics).  Rows persisted before digests
    existed load without the digest check.
    """
    try:
        raw = json.loads(Path(path).read_text())
        row = SweepRow.from_dict(raw)
    except (ValueError, KeyError, TypeError) as error:
        raise SimulationError(f"invalid sweep row at {path}: {error}") from error
    if row.digest is not None and row.digest != row_digest(raw):
        raise SimulationError(
            f"corrupt sweep row at {path}: content digest mismatch")
    return row


@dataclass
class SweepGrid:
    """The A.6 customization knobs."""

    mitigations: tuple[str, ...] = ("PARA", "RFM", "PRAC", "Hydra", "Graphene")
    nrh_values: tuple[int, ...] = (1024, 64)
    pacram_vendors: tuple[str | None, ...] = (None, "H", "M", "S")
    workload_sets: tuple[tuple[str, ...], ...] = (("spec06.mcf",),)
    requests: int = 2_000
    #: Protocol-checker mode for every point ("off" | "tolerant" | "strict").
    check_protocol: str = "off"
    #: Simulation kernel for every point ("scalar" | "batched"; None =
    #: process default).  Checking forces the scalar oracle regardless.
    sim_kernel: str | None = None

    def points(self) -> list[SweepPoint]:
        out = []
        for mitigation in self.mitigations:
            for nrh in self.nrh_values:
                for vendor in self.pacram_vendors:
                    for workloads in self.workload_sets:
                        out.append(SweepPoint(mitigation, nrh, vendor,
                                              tuple(workloads)))
        if not out:
            raise ConfigError("empty sweep grid")
        return out


def violations_path(row_path: str | Path) -> Path:
    """Where one point's violation ledger lives, next to its row."""
    return Path(row_path).with_suffix(".violations.jsonl")


def _simulate_to(point: SweepPoint, requests: int, path: str,
                 check_protocol: str = "off",
                 sim_kernel: str | None = None,
                 cache_dir: str | None = None) -> None:
    """Worker task: run one grid point, persist its row atomically.

    Module-level so it pickles across the process-pool boundary.  With
    checking enabled, observed violations are counted in the row and the
    full ledger lands in ``<key>.violations.jsonl`` beside it (one file per
    point keeps parallel workers from interleaving writes and makes the
    ledger deterministic for a given seed).  ``cache_dir`` points at the
    sweep's shared on-disk :class:`~repro.analysis.baselines.BaselineCache`
    — no-PaCRAM points written there once are reused by every other worker
    (and every later sweep over the same grid inputs).
    """
    from repro.analysis.baselines import BaselineCache

    pacram = (pacram_reference_config(point.pacram_vendor)
              if point.pacram_vendor else None)
    config = SystemConfig(num_cores=max(1, len(point.workloads)))
    ledger = violations_path(path)
    cache = (BaselineCache(disk_dir=cache_dir)
             if cache_dir is not None else None)
    result = run_simulation(
        point.workloads, mitigation=point.mitigation, nrh=point.nrh,
        pacram=pacram, requests=requests, config=config,
        check_protocol=check_protocol, sim_kernel=sim_kernel, cache=cache)
    row = SweepRow(
        key=point.key, mitigation=point.mitigation, nrh=point.nrh,
        pacram_vendor=point.pacram_vendor, workloads=point.workloads,
        mean_ipc=result.mean_ipc, energy_nj=result.energy_nj,
        preventive_busy_fraction=result.preventive_busy_fraction,
        preventive_refresh_rows=(
            result.controller_stats.preventive_refresh_rows),
        violations=len(result.protocol_violations))
    if result.protocol_violations:
        lines = [json.dumps(v.to_json(), sort_keys=True)
                 for v in result.protocol_violations]
        write_atomic(ledger, "\n".join(lines) + "\n")
    else:
        ledger.unlink(missing_ok=True)  # drop a stale ledger on re-run
    payload = asdict(row)
    payload["digest"] = row_digest(payload)
    write_atomic(path, json.dumps(payload, indent=1), durable=True)


class SweepRunner:
    """Runs a grid resumably, persisting one JSON row per point."""

    def __init__(self, results_dir: str | Path,
                 grid: SweepGrid | None = None) -> None:
        self.grid = grid or SweepGrid()
        #: The shared job-layer plumbing: result paths, resume, the
        #: ledger/report, scheduler fan-out, the ``force`` contract.
        self.execution = JobExecution(results_dir)
        self.results_dir = self.execution.results_dir

    def row_path(self, point: SweepPoint) -> Path:
        return self.execution.result_path(f"{point.key}.json")

    def cache_dir(self) -> Path:
        """Where the sweep's shared baseline cache persists."""
        return self.results_dir / "baseline_cache"

    def ledger_path(self) -> Path:
        """Where the engine records failed attempts for this sweep."""
        return self.execution.ledger_path()

    def report_path(self) -> Path:
        """Where the engine persists its end-of-run ``run_report.json``."""
        return self.execution.report_path()

    def status(self) -> tuple[int, int]:
        """(completed, total) — the check_run_status.py analogue."""
        points = self.grid.points()
        done = sum(1 for p in points
                   if self.execution.is_done(f"{p.key}.json"))
        return done, len(points)

    def _task(self, point: SweepPoint) -> Task:
        path = self.row_path(point)
        # Resolve the sim kernel once, here in the parent process (the
        # checking-forces-the-oracle rule included), so pickled workers
        # receive a concrete name and never resolve on their own.
        kernel = checked_kernel("sim", self.grid.sim_kernel,
                                check_protocol=self.grid.check_protocol)
        cache_dir = (str(self.cache_dir())
                     if default_policy().persistent_caches() else None)
        # Graceful degradation: a fast kernel that raises in a worker gets
        # one re-run on the scalar oracle (same cache — baseline rows are
        # kernel-independent) before retry accounting resumes.
        oracle = fallback_kernel("sim", kernel)
        fallback_args = None
        if oracle is not None:
            fallback_args = (point, self.grid.requests, str(path),
                             self.grid.check_protocol, oracle, cache_dir)
        return Task(key=point.key, path=path, fn=_simulate_to,
                    args=(point, self.grid.requests, str(path),
                          self.grid.check_protocol, kernel, cache_dir),
                    fallback_args=fallback_args)

    # ------------------------------------------------------------------
    def run_point(self, point: SweepPoint, *, force: bool = False) -> SweepRow:
        results = self.execution.run([self._task(point)], loader=load_row,
                                     force=force)
        return results[point.key]

    def run(self, *, force: bool = False, jobs: int | None = 1,
            progress: ProgressReporter | None = None,
            task_timeout_s: float | None = None,
            scheduler: str = "local", workers: int | None = None,
            serve: str | tuple[str, int] | None = None,
            lease_batch: int | None = None) -> list[SweepRow]:
        """Run (or resume) the whole grid; returns rows in grid order.

        ``jobs`` controls the worker-process count (``None`` = all cores);
        valid on-disk rows are reused, corrupt ones quarantined and re-run.
        Row contents are identical for any ``jobs`` and either kernel.
        ``task_timeout_s`` arms the engine's watchdog: a point whose worker
        produces no row within the deadline is killed and retried
        (deadlines require worker processes, i.e. ``jobs > 1``).
        ``scheduler`` selects the execution backend
        (:mod:`repro.runtime.scheduler`): ``local`` drains on this host,
        ``fleet`` leases points to ``workers`` spawned loopback workers
        and/or external ``repro-experiments worker`` clients connecting to
        ``serve`` — rows are byte-identical either way.
        """
        points = self.grid.points()
        results = self.execution.run([self._task(p) for p in points],
                                     loader=load_row, force=force,
                                     jobs=jobs, progress=progress,
                                     task_timeout_s=task_timeout_s,
                                     scheduler=scheduler, workers=workers,
                                     serve=serve, lease_batch=lease_batch)
        return [results[p.key] for p in points]

    # ------------------------------------------------------------------
    def aggregate(self, rows: list[SweepRow] | None = None,
                  ) -> dict[tuple[str, str], dict[int, float]]:
        """Normalized IPC vs N_RH per (mitigation, config) — Fig. 17's
        parse_ram_results step.  Normalization is against the same
        mitigation's no-PaCRAM row at the same N_RH; PaCRAM rows whose grid
        legitimately omits that baseline (no ``None`` in
        ``pacram_vendors``) are skipped rather than a hard error after the
        whole sweep already ran."""
        if rows is None:
            rows = self.run()
        baselines: dict[tuple[str, int, tuple[str, ...]], float] = {}
        for row in rows:
            if row.pacram_vendor is None:
                baselines[(row.mitigation, row.nrh, row.workloads)] = row.mean_ipc
        out: dict[tuple[str, str], dict[int, float]] = {}
        for row in rows:
            if row.pacram_vendor is None:
                continue
            base = baselines.get((row.mitigation, row.nrh, row.workloads))
            if base is None:
                continue  # grid ran without a no-PaCRAM baseline series
            if base <= 0:
                raise SimulationError(
                    f"non-positive no-PaCRAM baseline for {row.key}")
            label = f"PaCRAM-{row.pacram_vendor}"
            series = out.setdefault((row.mitigation, label), {})
            series[row.nrh] = row.mean_ipc / base
        return out


def render_aggregate(aggregate: dict[tuple[str, str], dict[int, float]],
                     ) -> str:
    """Fig. 17's text rendering: one line per (mitigation, config) series.

    The single source of the format — the ``sweep`` CLI prints this and
    the service's on-demand ``figure`` verb returns it, so both paths are
    byte-identical by construction.
    """
    lines = []
    for (mitigation, label), series in aggregate.items():
        values = " ".join(f"nrh={n}:{v:.4f}"
                          for n, v in sorted(series.items()))
        lines.append(f"{mitigation:<9} {label:<9} {values}")
    return "\n".join(lines)
