"""Data builders for every figure in the paper.

Each function regenerates the data series behind one figure at a
caller-chosen scale (row counts, workload counts, trace lengths).  The
benchmark harness (``benchmarks/``) calls these with laptop-scale defaults
and prints the same rows/series the paper plots; EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.boxstats import BoxStats
from repro.analysis.runner import (
    EVALUATED_NRH_VALUES,
    PACRAM_BEST_FACTORS,
    pacram_reference_config,
    run_simulation,
)
from repro.characterization.halfdouble import halfdouble_row_fraction
from repro.characterization.retention import (
    RETENTION_TIMES_NS,
    retention_failure_fractions,
)
from repro.characterization.sweeps import (
    characterize_module,
    sweep_npr,
    sweep_temperature,
    sweep_tras,
)
from repro.core.config import PaCRAMConfig
from repro.core.periodic import PeriodicPaCRAM
from repro.dram.catalog import module_spec, modules_by_manufacturer
from repro.dram.timing import TESTED_TRAS_FACTORS, ddr4_timing
from repro.errors import ConfigError
from repro.mitigations import make_mitigation
from repro.sim.config import SystemConfig
from repro.sim.system import MemorySystem
from repro.workloads.suites import multicore_mixes, single_core_suite, workload_by_name

#: The five evaluated mitigation mechanisms, in the paper's order.
MITIGATIONS: tuple[str, ...] = ("PARA", "RFM", "PRAC", "Hydra", "Graphene")


# ---------------------------------------------------------------------------
# Fig. 3: preventive-refresh overhead of five mitigations vs N_RH
# ---------------------------------------------------------------------------
def fig3_preventive_overhead(*, nrh_values: tuple[int, ...] = EVALUATED_NRH_VALUES,
                             mitigations: tuple[str, ...] = MITIGATIONS,
                             num_mixes: int = 3, requests: int = 3_000,
                             sim_kernel: str | None = None,
                             ) -> dict[str, dict[int, dict[str, float]]]:
    """{mitigation: {nrh: {"mean"/"min"/"max": fraction of time}}}."""
    mixes = multicore_mixes(num_mixes)
    out: dict[str, dict[int, dict[str, float]]] = {}
    for mitigation in mitigations:
        out[mitigation] = {}
        for nrh in nrh_values:
            fractions = []
            for mix in mixes:
                result = run_simulation(mix, mitigation=mitigation,
                                        nrh=nrh, requests=requests,
                                        sim_kernel=sim_kernel)
                fractions.append(result.preventive_busy_fraction)
            out[mitigation][nrh] = {
                "mean": sum(fractions) / len(fractions),
                "min": min(fractions),
                "max": max(fractions),
            }
    return out


# ---------------------------------------------------------------------------
# Fig. 4: motivational time/energy analysis (analytic, modules H5 and S6)
# ---------------------------------------------------------------------------
def fig4_motivation(module_ids: tuple[str, ...] = ("H5", "S6"),
                    ) -> dict[str, dict[str, dict[float, float]]]:
    """The five normalized curves of Fig. 4 per module.

    Curves (paper definitions, §3): preventive-refresh latency
    ``(tRAS + tRP)``; RowHammer threshold (measured ratio); preventive
    refresh count ``1 / N_RH``; total time cost ``count x latency``; total
    energy cost ``count x total time``.
    """
    timing = ddr4_timing()
    out: dict[str, dict[str, dict[float, float]]] = {}
    for module_id in module_ids:
        spec = module_spec(module_id)
        curves: dict[str, dict[float, float]] = {
            "latency": {}, "nrh": {}, "count": {}, "time": {}, "energy": {},
        }
        nominal_latency = timing.tRAS + timing.tRP
        for factor in TESTED_TRAS_FACTORS:
            ratio = spec.nrh_ratio(factor)
            if ratio is None:
                raise ConfigError(f"{module_id} has no N_RH data")
            latency = (factor * timing.tRAS + timing.tRP) / nominal_latency
            curves["latency"][factor] = latency
            curves["nrh"][factor] = ratio
            if ratio > 0:
                count = 1.0 / ratio
                curves["count"][factor] = count
                curves["time"][factor] = count * latency
                curves["energy"][factor] = count * (count * latency)
        out[module_id] = curves
    return out


def fig4_inflection(curves: dict[str, dict[float, float]],
                    curve: str = "time") -> tuple[float, float]:
    """(tRAS factor, value) minimizing a Fig. 4 cost curve."""
    series = curves[curve]
    factor = min(series, key=series.__getitem__)
    return factor, series[factor]


# ---------------------------------------------------------------------------
# Figs. 6 / 9: N_RH and BER vs charge-restoration latency (box stats)
# ---------------------------------------------------------------------------
def fig6_nrh_boxes(module_ids: tuple[str, ...], *,
                   tras_factors: tuple[float, ...] = TESTED_TRAS_FACTORS,
                   per_region: int = 24, seed: int = 2025,
                   ) -> dict[str, dict[float, BoxStats]]:
    """Per-vendor box stats of normalized N_RH at each latency."""
    results = sweep_tras(module_ids, tras_factors=tras_factors,
                         per_region=per_region, seed=seed)
    return fig6_nrh_boxes_from(results, tras_factors=tras_factors)


def fig6_nrh_boxes_from(results, *,
                        tras_factors: tuple[float, ...] = TESTED_TRAS_FACTORS,
                        ) -> dict[str, dict[float, BoxStats]]:
    """Fig. 6 boxes from already-characterized modules.

    Takes the ``{module_id: ModuleCharacterization}`` mapping that
    :func:`repro.characterization.sweeps.sweep_tras` returns and
    ``CharacterizationCampaign.load()`` reconstructs from disk, so the
    figure can be rebuilt from persisted campaign rows (e.g. after a
    distributed run) without re-simulating anything.
    """
    return _vendor_boxes(results, tras_factors, metric="nrh")


def fig9_ber_boxes(module_ids: tuple[str, ...], *,
                   tras_factors: tuple[float, ...] = TESTED_TRAS_FACTORS,
                   per_region: int = 24, seed: int = 2025,
                   ) -> dict[str, dict[float, BoxStats]]:
    """Per-vendor box stats of normalized BER at each latency."""
    results = sweep_tras(module_ids, tras_factors=tras_factors,
                         per_region=per_region, seed=seed)
    return _vendor_boxes(results, tras_factors, metric="ber")


def _vendor_boxes(results, tras_factors, metric: str,
                  ) -> dict[str, dict[float, BoxStats]]:
    by_vendor: dict[str, dict[float, list[float]]] = {}
    for module_id, characterization in results.items():
        vendor = module_id[0]
        vendor_data = by_vendor.setdefault(
            vendor, {f: [] for f in tras_factors})
        for factor in tras_factors:
            if metric == "nrh":
                values = characterization.normalized_nrh(factor)
            else:
                values = characterization.normalized_ber(factor)
            vendor_data[factor].extend(values)
    return {
        vendor: {f: BoxStats.from_values(vals) for f, vals in data.items() if vals}
        for vendor, data in by_vendor.items()
    }


# ---------------------------------------------------------------------------
# Fig. 7: lowest observed N_RH per module vs latency
# ---------------------------------------------------------------------------
def fig7_lowest_nrh(module_ids: tuple[str, ...], *,
                    tras_factors: tuple[float, ...] = TESTED_TRAS_FACTORS,
                    per_region: int = 24, seed: int = 2025,
                    ) -> dict[str, dict[float, float]]:
    """{module: {factor: lowest N_RH normalized to nominal}}."""
    results = sweep_tras(module_ids, tras_factors=tras_factors,
                         per_region=per_region, seed=seed)
    out: dict[str, dict[float, float]] = {}
    for module_id, characterization in results.items():
        nominal = characterization.lowest_nrh(1.00)
        if not nominal:
            continue
        out[module_id] = {}
        for factor in tras_factors:
            lowest = characterization.lowest_nrh(factor)
            out[module_id][factor] = (lowest or 0) / nominal
    return out


# ---------------------------------------------------------------------------
# Fig. 8: per-row N_RH at 0.45 tRAS vs nominal (scatter)
# ---------------------------------------------------------------------------
def fig8_row_scatter(module_ids: tuple[str, ...] = ("H8", "M5", "S1"), *,
                     reduced_factor: float = 0.45,
                     per_region: int = 48, seed: int = 2025,
                     ) -> dict[str, list[tuple[float, float]]]:
    """{module: [(nominal N_RH, normalized N_RH at the reduced factor)]}."""
    out: dict[str, list[tuple[float, float]]] = {}
    for module_id in module_ids:
        characterization = characterize_module(
            module_id, tras_factors=(1.00, reduced_factor),
            per_region=per_region, seed=seed)
        baseline = {(m.bank, m.row): m.nrh
                    for m in characterization.at(tras_factor=1.00)
                    if m.vulnerable()}
        points = []
        for m in characterization.at(tras_factor=reduced_factor):
            base = baseline.get((m.bank, m.row))
            if base:
                points.append((float(base), (m.nrh or 0) / base))
        out[module_id] = points
    return out


def fig8_sensitive_fraction(points: list[tuple[float, float]],
                            threshold: float = 0.75) -> float:
    """Fraction of rows whose N_RH drops below ``threshold`` (the paper's
    'more than 25 % reduction' metric)."""
    if not points:
        raise ConfigError("no scatter points")
    return sum(1 for _, ratio in points if ratio < threshold) / len(points)


# ---------------------------------------------------------------------------
# Fig. 10: temperature x latency
# ---------------------------------------------------------------------------
def fig10_temperature(module_ids: tuple[str, ...], *,
                      temperatures_c: tuple[float, ...] = (50.0, 65.0, 80.0),
                      tras_factors: tuple[float, ...] = (1.00, 0.64, 0.36),
                      per_region: int = 12, seed: int = 2025,
                      ) -> dict[str, dict[float, dict[float, BoxStats]]]:
    """{vendor: {temperature: {factor: BoxStats of normalized N_RH}}}."""
    results = sweep_temperature(module_ids, temperatures_c=temperatures_c,
                                tras_factors=tras_factors,
                                per_region=per_region, seed=seed)
    out: dict[str, dict[float, dict[float, BoxStats]]] = {}
    for module_id, characterization in results.items():
        vendor = module_id[0]
        vendor_out = out.setdefault(
            vendor, {t: {} for t in temperatures_c})
        for temperature in temperatures_c:
            for factor in tras_factors:
                baseline = {
                    (m.bank, m.row): m.nrh
                    for m in characterization.at(
                        tras_factor=1.00, temperature_c=temperature)
                    if m.vulnerable()}
                values = []
                for m in characterization.at(tras_factor=factor,
                                             temperature_c=temperature):
                    base = baseline.get((m.bank, m.row))
                    if base:
                        values.append((m.nrh or 0) / base)
                if values:
                    vendor_out[temperature][factor] = BoxStats.from_values(values)
    return out


# ---------------------------------------------------------------------------
# Figs. 11 / 12: repeated partial charge restoration
# ---------------------------------------------------------------------------
def fig11_repeated_pcr(module_ids: tuple[str, ...], *,
                       tras_factors: tuple[float, ...] = (0.64, 0.45, 0.36, 0.27),
                       n_prs: tuple[int, ...] = (1, 2, 4, 8),
                       per_region: int = 12, seed: int = 2025,
                       ) -> dict[str, dict[float, dict[int, BoxStats]]]:
    """{vendor: {factor: {n_pr: BoxStats of normalized N_RH}}}."""
    results = sweep_npr(module_ids, tras_factors=tras_factors, n_prs=n_prs,
                        per_region=per_region, seed=seed)
    pooled: dict[str, dict[float, dict[int, list[float]]]] = {}
    for module_id, characterization in results.items():
        vendor = module_id[0]
        vendor_pool = pooled.setdefault(
            vendor, {f: {n: [] for n in n_prs} for f in tras_factors})
        for factor in tras_factors:
            for n_pr in n_prs:
                vendor_pool[factor][n_pr].extend(
                    characterization.normalized_nrh(factor, n_pr=n_pr))
    return {
        vendor: {
            factor: {n: BoxStats.from_values(vals)
                     for n, vals in per_n.items() if vals}
            for factor, per_n in per_factor.items()
        }
        for vendor, per_factor in pooled.items()
    }


def fig12_npr_scaling(module_ids: tuple[str, ...] = ("H7", "M2", "S6"), *,
                      tras_factor: float = 0.36,
                      n_prs: tuple[int, ...] = (1, 500, 1_000, 2_500,
                                                5_000, 10_000, 15_000),
                      per_region: int = 8, seed: int = 2025,
                      ) -> dict[str, dict[int, int | None]]:
    """{module: {n_pr: lowest N_RH}} at 0.36 tRAS, up to 15K restorations."""
    out: dict[str, dict[int, int | None]] = {}
    for module_id in module_ids:
        characterization = characterize_module(
            module_id, tras_factors=(tras_factor,), n_prs=n_prs,
            per_region=per_region, seed=seed)
        out[module_id] = {
            n_pr: characterization.lowest_nrh(tras_factor, n_pr=n_pr)
            for n_pr in n_prs}
    return out


# ---------------------------------------------------------------------------
# Fig. 13: Half-Double vs latency
# ---------------------------------------------------------------------------
def fig13_halfdouble(module_ids: tuple[str, ...] = ("H7", "H8", "S6", "S7"), *,
                     tras_factors: tuple[float, ...] = (1.00, 0.64, 0.36, 0.18),
                     n_prs: tuple[int, ...] = (1, 5),
                     per_region: int = 48, seed: int = 2025,
                     ) -> dict[str, dict[tuple[float, int], float]]:
    """{module: {(factor, n_pr): fraction of rows with Half-Double flips}}."""
    out: dict[str, dict[tuple[float, int], float]] = {}
    for module_id in module_ids:
        out[module_id] = {}
        for factor in tras_factors:
            for n_pr in n_prs:
                result = halfdouble_row_fraction(
                    module_id, tras_factor=factor, n_pr=n_pr,
                    per_region=per_region, seed=seed)
                out[module_id][(factor, n_pr)] = result.fraction
    return out


# ---------------------------------------------------------------------------
# Fig. 14: data-retention failures vs latency
# ---------------------------------------------------------------------------
def fig14_retention(module_ids: tuple[str, ...] = ("H5", "M2", "S6"), *,
                    tras_factors: tuple[float, ...] = (1.00, 0.64, 0.45,
                                                       0.36, 0.27),
                    n_restorations: tuple[int, ...] = (1, 10),
                    ) -> dict[str, dict[tuple[float, int, float], float]]:
    """{module: {(factor, n, retention time): failing-row fraction}}."""
    return {
        module_id: retention_failure_fractions(
            module_id, tras_factors=tras_factors,
            n_restorations=n_restorations,
            retention_times_ns=RETENTION_TIMES_NS)
        for module_id in module_ids
    }


# ---------------------------------------------------------------------------
# Fig. 16: performance vs preventive-refresh latency
# ---------------------------------------------------------------------------
def fig16_latency_sweep(*, mitigations: tuple[str, ...] = MITIGATIONS,
                        vendors: tuple[str, ...] = ("H", "M", "S"),
                        nrh_values: tuple[int, ...] = (1024, 64),
                        tras_factors: tuple[float, ...] = (0.81, 0.64, 0.45,
                                                           0.36, 0.27),
                        workloads: tuple[str, ...] | None = None,
                        requests: int = 3_000,
                        sim_kernel: str | None = None, cache=None,
                        ) -> dict[tuple[str, str, int], dict[float, float]]:
    """{(mitigation, vendor, nrh): {factor: IPC normalized to no-PaCRAM}}."""
    if workloads is None:
        workloads = single_core_suite()[:4]
    out: dict[tuple[str, str, int], dict[float, float]] = {}
    config = SystemConfig(num_cores=1)
    for mitigation in mitigations:
        for nrh in nrh_values:
            baselines = {
                name: run_simulation((name,), mitigation=mitigation, nrh=nrh,
                                     requests=requests, config=config,
                                     sim_kernel=sim_kernel,
                                     cache=cache).mean_ipc
                for name in workloads}
            for vendor in vendors:
                series: dict[float, float] = {}
                for factor in tras_factors:
                    try:
                        pacram = pacram_reference_config(vendor, factor)
                    except ConfigError:
                        continue  # N/A operating point for this module
                    ratios = []
                    for name in workloads:
                        result = run_simulation(
                            (name,), mitigation=mitigation, nrh=nrh,
                            pacram=pacram, requests=requests, config=config,
                            sim_kernel=sim_kernel, cache=cache)
                        ratios.append(result.mean_ipc / baselines[name])
                    series[factor] = sum(ratios) / len(ratios)
                out[(mitigation, vendor, nrh)] = series
    return out


# ---------------------------------------------------------------------------
# Figs. 17 / 18: performance and energy vs N_RH
# ---------------------------------------------------------------------------
def fig17_18_performance_energy(*, mitigations: tuple[str, ...] = MITIGATIONS,
                                vendors: tuple[str, ...] = ("H", "M", "S"),
                                nrh_values: tuple[int, ...] = EVALUATED_NRH_VALUES,
                                workloads: tuple[str, ...] | None = None,
                                requests: int = 3_000,
                                sim_kernel: str | None = None, cache=None,
                                ) -> dict:
    """Normalized performance (Fig. 17) and energy (Fig. 18) vs N_RH.

    Returns ``{"performance"/"energy": {(mitigation, config): {nrh: value}}}``
    where config is "NoPaCRAM" or "PaCRAM-H/M/S", and values are normalized
    to the no-mitigation baseline.
    """
    if workloads is None:
        workloads = single_core_suite()[:4]
    config = SystemConfig(num_cores=1)
    base_ipc, base_energy = {}, {}
    for name in workloads:
        result = run_simulation((name,), mitigation="None",
                                requests=requests, config=config,
                                sim_kernel=sim_kernel, cache=cache)
        base_ipc[name] = result.mean_ipc
        base_energy[name] = result.energy_nj
    performance: dict[tuple[str, str], dict[int, float]] = {}
    energy: dict[tuple[str, str], dict[int, float]] = {}
    configs: list[tuple[str, PaCRAMConfig | None]] = [("NoPaCRAM", None)]
    configs += [(f"PaCRAM-{v}", pacram_reference_config(v)) for v in vendors]
    for mitigation in mitigations:
        for label, pacram in configs:
            perf_series: dict[int, float] = {}
            energy_series: dict[int, float] = {}
            for nrh in nrh_values:
                perf, joule = [], []
                for name in workloads:
                    result = run_simulation(
                        (name,), mitigation=mitigation, nrh=nrh,
                        pacram=pacram, requests=requests, config=config,
                        sim_kernel=sim_kernel, cache=cache)
                    perf.append(result.mean_ipc / base_ipc[name])
                    joule.append(result.energy_nj / base_energy[name])
                perf_series[nrh] = sum(perf) / len(perf)
                energy_series[nrh] = sum(joule) / len(joule)
            performance[(mitigation, label)] = perf_series
            energy[(mitigation, label)] = energy_series
    return {"performance": performance, "energy": energy}


def fig17_multicore_weighted_speedup(
        *, mitigations: tuple[str, ...] = ("PARA", "RFM"),
        vendors: tuple[str, ...] = ("H",),
        nrh_values: tuple[int, ...] = (1024, 32),
        num_mixes: int = 2, requests: int = 2_000,
        sim_kernel: str | None = None, cache=None,
        ) -> dict[tuple[str, str], dict[int, float]]:
    """Fig. 17's right subplot: 4-core weighted speedup vs N_RH.

    Values are weighted speedups of the PaCRAM configuration relative to
    the same mitigation without PaCRAM (> num_cores means PaCRAM helps),
    averaged over the mixes and normalized per core count to 1.0.
    """
    from repro.sim.stats import weighted_speedup

    mixes = multicore_mixes(num_mixes)
    out: dict[tuple[str, str], dict[int, float]] = {}
    for mitigation in mitigations:
        for vendor in vendors:
            pacram = pacram_reference_config(vendor)
            series: dict[int, float] = {}
            for nrh in nrh_values:
                speedups = []
                for mix in mixes:
                    config = SystemConfig(num_cores=len(mix))
                    base = run_simulation(mix, mitigation=mitigation,
                                          nrh=nrh, requests=requests,
                                          config=config,
                                          sim_kernel=sim_kernel, cache=cache)
                    fast = run_simulation(mix, mitigation=mitigation,
                                          nrh=nrh, pacram=pacram,
                                          requests=requests, config=config,
                                          sim_kernel=sim_kernel, cache=cache)
                    speedups.append(
                        weighted_speedup(fast.ipc, base.ipc) / len(mix))
                series[nrh] = sum(speedups) / len(speedups)
            out[(mitigation, f"PaCRAM-{vendor}")] = series
    return out


# ---------------------------------------------------------------------------
# Fig. 19: periodic-refresh extension vs chip density (Appendix B)
# ---------------------------------------------------------------------------
def fig19_periodic(*, densities_gbit: tuple[int, ...] = (8, 32, 128, 512),
                   latency_factors: tuple[float, ...] = (1.00, 0.64, 0.36, 0.18),
                   mix: tuple[str, ...] | None = None,
                   requests: int = 2_500,
                   sim_kernel: str | None = None,
                   ) -> dict[int, dict[float, dict[str, float]]]:
    """{density: {latency factor: {"performance"/"energy": normalized}}}.

    Normalized to a hypothetical system with no periodic refresh.  Larger
    densities mean more rows per REF and a longer tRFC (modeled by scaling
    tRFC with density).
    """
    if mix is None:
        mix = multicore_mixes(1)[0]
    out: dict[int, dict[float, dict[str, float]]] = {}
    for density in densities_gbit:
        # tRFC grows sublinearly with density (JEDEC: ~1.45x per doubling;
        # e.g. DDR4 8 Gb -> 16 Gb is 350 -> 550 ns), and must stay below
        # tREFI or refresh starves the system.
        trfc_scale = (density / 8) ** 0.55
        timing = SystemConfig().timing
        scaled_timing = replace(timing, tRFC=timing.tRFC * trfc_scale)
        config = SystemConfig(num_cores=len(mix), timing=scaled_timing)
        traces = [workload_by_name(name, requests=requests, seed=7 + i)
                  for i, name in enumerate(mix)]
        # Hypothetical no-refresh baseline: scale periodic latency to ~0.
        baseline_policy = PeriodicPaCRAM(config, latency_factor_rfc=1e-6,
                                         npcr=10**9)
        baseline = MemorySystem(config, traces,
                                mitigation=make_mitigation("None", 1),
                                policy=baseline_policy).run(sim_kernel)
        out[density] = {}
        for factor in latency_factors:
            policy = PeriodicPaCRAM(config, latency_factor_rfc=factor)
            traces2 = [workload_by_name(name, requests=requests, seed=7 + i)
                       for i, name in enumerate(mix)]
            result = MemorySystem(config, traces2,
                                  mitigation=make_mitigation("None", 1),
                                  policy=policy).run(sim_kernel)
            ws = sum(result.ipc[c] / baseline.ipc[c] for c in result.ipc)
            ws /= len(result.ipc)
            out[density][factor] = {
                "performance": ws,
                "energy": result.energy_nj / baseline.energy_nj,
            }
    return out
