"""The characterization service: a TCP job API over wire frames.

``repro-experiments serve-api`` runs one of these.  The endpoint speaks
the same length-prefixed JSON frame protocol as the fleet coordinator
(:mod:`repro.runtime.wire` — no pickles, a protocol-versioned ``hello``
opens every connection) and exposes five verbs:

``submit``
    ``{"type": "submit", "spec": {...}}`` — dedup-or-create the job
    (id = content digest of the spec) and enqueue it if it still needs
    work.  An identical resubmission returns the same job id and
    recomputes nothing.
``status``
    One job's record: state, timestamps, transition history, error.
``stream``
    Tail the job's ``events.jsonl`` and re-emit every progress event as
    a frame until the job reaches a terminal state (``end`` frame).
``results``
    The persisted result files, base64-encoded by name — byte-identical
    to what a batch CLI run of the same config writes.
``figure``
    Render a figure on demand from the persisted rows (no re-runs).

Jobs execute **sequentially** in one runner thread (queue fairness:
first submitted, first run), each fanning out through the scheduler seam
(local pool or worker fleet) per the service's ``RunOptions``.  On
startup, jobs a previous service process left ``queued`` or orphaned in
``running`` are re-enqueued and resume from their persisted results.

Trust model: the service *decodes client payloads*, the inverse of the
fleet's worker-trusts-coordinator direction — job specs therefore only
instantiate allow-listed config dataclasses
(:mod:`repro.service.jobs`), and job ids are validated before touching
the filesystem.  An ``admin: stop`` verb shuts the service down; bind to
loopback unless every reachable client is trusted.
"""

from __future__ import annotations

import base64
import json
import socket
import threading
import time
from collections import deque
from pathlib import Path

from repro.errors import ReproError
from repro.runtime.scheduler import parse_address
from repro.runtime.wire import (
    PROTOCOL_VERSION,
    FrameError,
    recv_frame,
    send_frame,
)
from repro.service.jobs import DONE, FAILED, JobRecord, JobSpec
from repro.service.manager import JobManager, RunOptions

__all__ = ["CharacterizationService", "SERVICE_NAME"]

#: Advertised in the hello frame so clients can tell a service apart
#: from a fleet coordinator listening on the same kind of socket.
SERVICE_NAME = "repro-characterization-service"

#: How often stream handlers re-poll the event log and job state.
DEFAULT_STREAM_POLL_S = 0.05


def _job_frame(record: JobRecord, **extra) -> dict:
    frame = {"type": "job", "job_id": record.job_id, "kind": record.kind,
             "state": record.state, "error": record.error,
             "created_at": record.created_at,
             "updated_at": record.updated_at,
             "history": record.history}
    frame.update(extra)
    return frame


class CharacterizationService:
    """One serve-api process: job queue, runner thread, frame server."""

    def __init__(self, store_root: str | Path, *,
                 serve: str | tuple[str, int] = ("127.0.0.1", 0),
                 options: RunOptions | None = None,
                 poll_s: float = DEFAULT_STREAM_POLL_S) -> None:
        if isinstance(serve, str):
            serve = parse_address(serve)
        self.manager = JobManager(store_root, defaults=options)
        self.serve = serve
        self.poll_s = poll_s
        self.bound_address: tuple[str, int] | None = None
        self._queue: deque[str] = deque()
        self._queued: set[str] = set()
        self._cond = threading.Condition()
        self._stop = threading.Event()
        self._server: socket.socket | None = None
        self._runner: threading.Thread | None = None
        self._acceptor: threading.Thread | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind, recover the queue from the store, start serving."""
        self._server = socket.create_server(self.serve)
        self.bound_address = self._server.getsockname()[:2]
        self._recover_queue()
        self._runner = threading.Thread(target=self._run_loop, daemon=True,
                                        name="service-runner")
        self._runner.start()
        self._acceptor = threading.Thread(target=self._accept_loop,
                                          daemon=True,
                                          name="service-accept")
        self._acceptor.start()
        return self.bound_address

    def _recover_queue(self) -> None:
        """Re-enqueue jobs a previous service process never finished.

        A job found ``running`` with no live runner is an orphan of a
        crash; :meth:`JobManager.run` normalizes it back through
        ``queued`` and its resume contract recomputes only what is
        missing on disk.
        """
        for job_id in self.manager.store.list_ids():
            record = self.manager.store.load(job_id)
            if record.state in (DONE, FAILED):
                continue
            self._enqueue(record)

    def stop(self, *, wait: bool = True) -> None:
        """Shut the service down (idempotent).

        ``wait=False`` is the in-connection-handler form: it must not
        join the very thread pool the caller runs on.
        """
        self._stop.set()
        with self._cond:
            self._cond.notify_all()
        server, self._server = self._server, None
        if server is not None:
            try:
                # shutdown() before close(): on Linux, close() alone does
                # not wake a thread blocked in accept().
                server.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                server.close()
            except OSError:
                pass
        if not wait:
            return
        current = threading.current_thread()
        for thread in (self._runner, self._acceptor):
            if thread is not None and thread is not current:
                thread.join(timeout=10.0)

    def serve_forever(self) -> None:
        """Block until stopped (Ctrl-C or a ``stop`` verb)."""
        if self.bound_address is None:
            self.start()
        try:
            while not self._stop.wait(timeout=0.5):
                pass
        except KeyboardInterrupt:
            pass
        self.stop()

    # ------------------------------------------------------------------
    # job queue (FIFO fairness)
    # ------------------------------------------------------------------
    def _enqueue(self, record: JobRecord) -> int | None:
        """Queue a job that still needs work; returns its position."""
        if record.state == DONE:
            return None
        with self._cond:
            if record.job_id in self._queued:
                return self._queue.index(record.job_id)
            if self.manager.is_active(record.job_id):
                return None  # mid-run right now
            self._queue.append(record.job_id)
            self._queued.add(record.job_id)
            position = len(self._queue) - 1
            self._cond.notify_all()
            return position

    def _run_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stop.is_set():
                    self._cond.wait(timeout=0.2)
                if self._stop.is_set():
                    return
                job_id = self._queue.popleft()
                self._queued.discard(job_id)
            try:
                self.manager.run(job_id)
            except Exception:  # noqa: BLE001 — recorded as failed in store
                pass

    # ------------------------------------------------------------------
    # frame server
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            server = self._server
            if server is None:
                return
            try:
                conn, _addr = server.accept()
            except OSError:
                return  # listener closed: the service is stopping
            threading.Thread(target=self._serve_conn, args=(conn,),
                             daemon=True, name="service-conn").start()

    def _serve_conn(self, conn: socket.socket) -> None:
        try:
            hello = recv_frame(conn)
            if hello is None or hello.get("type") != "hello":
                return
            if hello.get("protocol") != PROTOCOL_VERSION:
                send_frame(conn, {
                    "type": "error",
                    "error": f"protocol {hello.get('protocol')!r} != "
                             f"{PROTOCOL_VERSION} (upgrade the client)"})
                return
            send_frame(conn, {"type": "hello",
                              "protocol": PROTOCOL_VERSION,
                              "service": SERVICE_NAME})
            while True:
                message = recv_frame(conn)
                if message is None:
                    return
                verb = message.get("type")
                if verb == "stream":
                    self._stream(conn, message)
                    continue
                try:
                    reply = self._dispatch(verb, message)
                except ReproError as error:
                    reply = {"type": "error", "error": f"{error}"}
                send_frame(conn, reply)
                if verb == "stop" and reply.get("type") == "ok":
                    self.stop(wait=False)
                    return
        except (ConnectionError, OSError, FrameError):
            pass  # a dropped client never takes the service down
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, verb: str | None, message: dict) -> dict:
        if verb == "submit":
            spec = JobSpec.decode(message.get("spec"))
            record, created = self.manager.submit(spec)
            position = self._enqueue(record)
            return _job_frame(record, deduped=not created,
                              position=position)
        if verb == "status":
            return _job_frame(self.manager.status(message.get("job_id")))
        if verb == "results":
            files = self.manager.result_files(message.get("job_id"))
            return {"type": "results", "job_id": message.get("job_id"),
                    "files": {name: base64.b64encode(data).decode("ascii")
                              for name, data in files.items()}}
        if verb == "figure":
            text = self.manager.figure(message.get("job_id"),
                                       str(message.get("name")))
            return {"type": "figure", "job_id": message.get("job_id"),
                    "name": message.get("name"), "text": text}
        if verb == "stop":
            return {"type": "ok"}
        raise ReproError(
            f"unknown verb {verb!r}; this service speaks "
            f"submit/status/stream/results/figure/stop")

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    def _stream(self, conn: socket.socket, message: dict) -> None:
        """Tail one job's event log and re-emit it as frames.

        State is snapshotted *before* each read: the manager closes the
        event log before flipping the record to a terminal state, so a
        terminal snapshot guarantees the following read drains the file.
        """
        try:
            job_id = message.get("job_id")
            record = self.manager.store.load(job_id)
        except ReproError as error:
            send_frame(conn, {"type": "error", "error": f"{error}"})
            return
        path = self.manager.store.events_path(job_id)
        offset = 0
        while True:
            record = self.manager.store.load(job_id)
            state = record.state
            offset = self._emit_new_events(conn, path, offset)
            if state in (DONE, FAILED):
                send_frame(conn, {"type": "end", "job_id": job_id,
                                  "state": state, "error": record.error})
                return
            if self._stop.is_set():
                send_frame(conn, {"type": "end", "job_id": job_id,
                                  "state": state,
                                  "error": "service stopping"})
                return
            time.sleep(self.poll_s)

    def _emit_new_events(self, conn: socket.socket, path: Path,
                         offset: int) -> int:
        """Send every complete new line past ``offset``; returns the new
        offset.  A rerun truncates the log, so a shrunken file resets the
        cursor instead of reading past EOF forever."""
        if not path.exists():
            return offset
        try:
            size = path.stat().st_size
            if size < offset:
                offset = 0
            with path.open("rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
        except OSError:
            return offset
        consumed = chunk.rfind(b"\n")
        if consumed < 0:
            return offset
        for line in chunk[:consumed].splitlines():
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            try:
                event = json.loads(text)
            except ValueError:
                continue
            send_frame(conn, {"type": "event", "data": event})
        return offset + consumed + 1
