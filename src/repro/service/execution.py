"""Shared execution plumbing of every job kind (campaign, sweep).

Before the job layer existed, :class:`CharacterizationCampaign` and
:class:`SweepRunner` each carried a private copy of the same machinery:
where results live, what is already done, where the error ledger and run
report land, how the scheduler backend is built, and what ``force``
clears.  :class:`JobExecution` is that machinery, once — the orchestrators
keep only their domain knowledge (how to build a
:class:`~repro.runtime.Task` for one module or grid point, and how to
load/aggregate what comes back), enforced by a lint-style test the same
way :mod:`repro.exec` enforces its single kernel-resolution site.

This module deliberately knows nothing about campaigns or sweeps; the
dependency points one way (orchestrators -> execution -> runtime) so the
higher service layers (:mod:`repro.service.manager`,
:mod:`repro.service.api`) can import the orchestrators without cycles.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.runtime import (
    LEDGER_NAME,
    REPORT_NAME,
    ProgressReporter,
    Task,
    TaskPool,
    describe_run_report,
    make_scheduler,
)
from repro.runtime.cache import clear_disk_tiers, summarize_caches

__all__ = ["JobExecution"]


class JobExecution:
    """One job's durable execution namespace.

    Owns everything about *running* a set of independent tasks that is
    not specific to what the tasks compute: result paths and done/pending
    state under ``results_dir``, the engine's error ledger and run
    report, scheduler construction through the one resolution site
    (:func:`~repro.runtime.scheduler.make_scheduler`), and the ``force``
    contract (drop persisted results *and* every registered cache tier
    before re-running).
    """

    def __init__(self, results_dir: str | Path, *, seed: int = 0) -> None:
        self.results_dir = Path(results_dir)
        self.seed = seed

    # ------------------------------------------------------------------
    # result namespace
    # ------------------------------------------------------------------
    def result_path(self, filename: str) -> Path:
        """Where one unit's persisted result lives."""
        return self.results_dir / filename

    def is_done(self, filename: str) -> bool:
        """Existence *is* the done-ness contract: atomic writes guarantee
        a present file is complete, and loaders quarantine corrupt ones."""
        return self.result_path(filename).exists()

    def pending(self, filenames: Iterable[str]) -> tuple[str, ...]:
        """The subset of ``filenames`` with no persisted result yet."""
        return tuple(f for f in filenames if not self.is_done(f))

    def ledger_path(self) -> Path:
        """Where the engine records failed attempts for this job."""
        return self.results_dir / LEDGER_NAME

    def report_path(self) -> Path:
        """Where the engine persists its end-of-run ``run_report.json``."""
        return self.results_dir / REPORT_NAME

    # ------------------------------------------------------------------
    # scheduler fan-out
    # ------------------------------------------------------------------
    def scheduler(self, *, jobs: int | None = 1,
                  progress: ProgressReporter | None = None,
                  timeout_s: float | None = None, scheduler: str = "local",
                  workers: int | None = None,
                  serve: str | tuple[str, int] | None = None,
                  lease_batch: int | None = None) -> TaskPool:
        """Build this job's execution backend (ledger/report pre-wired)."""
        return make_scheduler(scheduler, workers=workers, serve=serve,
                              lease_batch=lease_batch,
                              jobs=jobs, ledger_path=self.ledger_path(),
                              report_path=self.report_path(),
                              timeout_s=timeout_s, seed=self.seed,
                              progress=progress)

    def clear_caches(self) -> None:
        """Drop every persisted cache tier under the results directory
        (the ``force=True`` contract): a forced re-run must recompute,
        not replay memoized results from any layer."""
        clear_disk_tiers(self.results_dir)

    def run(self, tasks: list[Task], loader: Callable[[Path], Any], *,
            force: bool = False, jobs: int | None = 1,
            progress: ProgressReporter | None = None,
            task_timeout_s: float | None = None,
            scheduler: str = "local", workers: int | None = None,
            serve: str | tuple[str, int] | None = None,
            lease_batch: int | None = None) -> dict[str, Any]:
        """Run (or resume) ``tasks`` and return ``{key: loaded result}``.

        Valid on-disk results are reused, corrupt ones quarantined and
        re-run; ``force`` discards persisted results and every cache tier
        first.  Results are byte-identical for any ``jobs``, either
        scheduler backend, and any failure interleaving — the engine's
        contract, inherited wholesale.
        """
        if force:
            self.clear_caches()
        pool = self.scheduler(jobs=jobs, progress=progress,
                              timeout_s=task_timeout_s, scheduler=scheduler,
                              workers=workers, serve=serve,
                              lease_batch=lease_batch)
        return pool.run(tasks, loader=loader, force=force)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def describe_report(self) -> str | None:
        """Human summary of the persisted run report (``None`` if absent
        or torn — status output must never break on a partial report)."""
        report = self.report_path()
        if not report.exists():
            return None
        try:
            return describe_run_report(json.loads(report.read_text()))
        except (OSError, ValueError):
            return None

    def describe_caches(self) -> str:
        """One-line hit/miss summary of every cache tier under this job."""
        return summarize_caches(self.results_dir)
