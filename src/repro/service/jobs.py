"""Job identity and durable job state: :class:`JobSpec` + :class:`JobStore`.

A job is *what to compute* — a kind (``campaign`` | ``sweep``) plus the
config dataclass that fully determines its results.  Identity is content:
the spec is wire-encoded (:func:`repro.runtime.wire.encode_value`),
canonicalized, and digested exactly like a
:class:`~repro.runtime.cache.DigestCache` key or a fleet blob, so two
users submitting the same config get the same job id and share one
result namespace — dedup falls out of addressing, not bookkeeping.

The store gives each job a directory under its root::

    <root>/<job_id>/job.json        # record: state machine + history
    <root>/<job_id>/events.jsonl    # live progress events (stream verb)
    <root>/<job_id>/results/        # the orchestrator's results_dir

State transitions (``queued -> running -> done | failed``, plus the
requeue edges ``failed -> queued`` for retries and ``running -> queued``
for jobs orphaned by a crashed runner) are validated and persisted with
:func:`~repro.runtime.persist.write_atomic` — a torn ``job.json`` is
impossible by construction, and ``done`` is terminal.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ConfigError
from repro.runtime.persist import write_atomic
from repro.runtime.wire import (
    blob_digest,
    canonical_blob,
    decode_value,
    encode_value,
)

__all__ = [
    "DONE",
    "FAILED",
    "JOB_KINDS",
    "JOB_STATES",
    "QUEUED",
    "RUNNING",
    "JobRecord",
    "JobSpec",
    "JobStateError",
    "JobStore",
]

#: Every job kind the service can run.
JOB_KINDS = ("campaign", "sweep")

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Every job state, in lifecycle order.
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED)

#: Legal state transitions.  ``done`` is terminal; ``running -> queued``
#: covers a job orphaned by a crashed runner (resubmission resumes it),
#: ``failed -> queued`` a retry of a failed one.
_TRANSITIONS = {
    QUEUED: {RUNNING},
    RUNNING: {DONE, FAILED, QUEUED},
    FAILED: {QUEUED},
    DONE: frozenset(),
}

#: Dataclasses a wire-submitted spec may instantiate.  The service
#: decodes *client* payloads, the inverse trust direction of the fleet
#: (where workers trust their coordinator) — so the tagged-dataclass
#: codec is allow-listed here instead of importing whatever the frame
#: names.
_ALLOWED_SPEC_TYPES = frozenset({
    "repro.characterization.campaign:CampaignConfig",
    "repro.analysis.sweeprunner:SweepGrid",
})

#: Wire-codec tags that have no business inside a job spec.
_FORBIDDEN_SPEC_TAGS = ("__blob", "__task_path", "__p")

_JOB_ID_RE = re.compile(r"[0-9a-f]{16}\Z")

RECORD_NAME = "job.json"
EVENTS_NAME = "events.jsonl"
RESULTS_DIRNAME = "results"


class JobStateError(ConfigError):
    """An illegal job-state transition was requested."""


def validate_job_id(job_id: str) -> str:
    """Job ids are 16 hex chars (a blob digest); anything else — including
    path metacharacters from a hostile client — is rejected before it can
    touch the filesystem."""
    if not isinstance(job_id, str) or not _JOB_ID_RE.fullmatch(job_id):
        raise ConfigError(f"malformed job id {job_id!r}")
    return job_id


def _check_spec_payload(payload: Any, *, where: str = "config") -> None:
    """Reject spec payloads that name un-allow-listed dataclasses or carry
    execution-context tags (blobs, task paths, filesystem paths)."""
    if isinstance(payload, list):
        for item in payload:
            _check_spec_payload(item, where=where)
        return
    if not isinstance(payload, dict):
        return
    for tag in _FORBIDDEN_SPEC_TAGS:
        if tag in payload:
            raise ConfigError(
                f"job spec {where} may not carry the {tag!r} wire tag")
    ref = payload.get("__dc")
    if ref is not None and ref not in _ALLOWED_SPEC_TYPES:
        raise ConfigError(
            f"job spec {where} names disallowed type {ref!r}; allowed: "
            f"{sorted(_ALLOWED_SPEC_TYPES)}")
    for value in payload.values():
        _check_spec_payload(value, where=where)


@dataclass(frozen=True)
class JobSpec:
    """What one job computes: a kind plus its config dataclass."""

    kind: str
    config: Any

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ConfigError(
                f"job kind must be one of {JOB_KINDS}, got {self.kind!r}")

    def encoded(self) -> dict:
        """Wire-safe payload (what ships in a ``submit`` frame and what
        the job id digests)."""
        return {"kind": self.kind, "config": encode_value(self.config)}

    @property
    def job_id(self) -> str:
        """Content digest of the canonical encoded spec — the same
        canonical-JSON + sha256[:16] scheme that keys the digest caches,
        so identical submissions address the same job."""
        return blob_digest(canonical_blob(self.encoded()))

    @classmethod
    def decode(cls, payload: Any) -> "JobSpec":
        """Rebuild a spec from its encoded payload (allow-list enforced)."""
        if not isinstance(payload, dict) or "kind" not in payload \
                or "config" not in payload:
            raise ConfigError(
                "job spec payload must be {'kind': ..., 'config': ...}")
        _check_spec_payload(payload["config"])
        return cls(kind=payload["kind"],
                   config=decode_value(payload["config"]))


@dataclass
class JobRecord:
    """One job's durable state (the contents of ``job.json``)."""

    job_id: str
    kind: str
    spec: dict  #: encoded :class:`JobSpec` payload
    state: str = QUEUED
    created_at: float = 0.0
    updated_at: float = 0.0
    error: str | None = None
    #: ``[state, unix_time]`` pairs, every transition ever taken.
    history: list = field(default_factory=list)

    def to_json(self) -> dict:
        return {"job_id": self.job_id, "kind": self.kind, "spec": self.spec,
                "state": self.state, "created_at": self.created_at,
                "updated_at": self.updated_at, "error": self.error,
                "history": self.history}

    @classmethod
    def from_json(cls, raw: dict) -> "JobRecord":
        try:
            return cls(job_id=raw["job_id"], kind=raw["kind"],
                       spec=raw["spec"], state=raw["state"],
                       created_at=raw["created_at"],
                       updated_at=raw["updated_at"],
                       error=raw.get("error"),
                       history=list(raw.get("history") or []))
        except (KeyError, TypeError) as error:
            raise ConfigError(f"corrupt job record: {error}") from error

    def spec_obj(self) -> JobSpec:
        return JobSpec.decode(self.spec)


class JobStore:
    """Durable per-job namespaces under one root directory."""

    def __init__(self, root: str | Path,
                 clock=time.time) -> None:
        self.root = Path(root)
        self.clock = clock

    # ------------------------------------------------------------------
    # namespace layout
    # ------------------------------------------------------------------
    def namespace(self, job_id: str) -> Path:
        return self.root / validate_job_id(job_id)

    def record_path(self, job_id: str) -> Path:
        return self.namespace(job_id) / RECORD_NAME

    def events_path(self, job_id: str) -> Path:
        return self.namespace(job_id) / EVENTS_NAME

    def results_dir(self, job_id: str) -> Path:
        return self.namespace(job_id) / RESULTS_DIRNAME

    def exists(self, job_id: str) -> bool:
        return self.record_path(job_id).exists()

    def list_ids(self) -> tuple[str, ...]:
        if not self.root.is_dir():
            return ()
        return tuple(sorted(
            p.name for p in self.root.iterdir()
            if _JOB_ID_RE.fullmatch(p.name) and (p / RECORD_NAME).exists()))

    # ------------------------------------------------------------------
    # records
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> tuple[JobRecord, bool]:
        """Create (or dedup to) the job ``spec`` addresses.

        Returns ``(record, created)``: an identical earlier submission —
        same content digest — yields its existing record with
        ``created=False`` and writes nothing.
        """
        job_id = spec.job_id
        if self.exists(job_id):
            return self.load(job_id), False
        now = self.clock()
        record = JobRecord(job_id=job_id, kind=spec.kind,
                           spec=spec.encoded(), state=QUEUED,
                           created_at=now, updated_at=now,
                           history=[[QUEUED, now]])
        self._persist(record)
        return record, True

    def load(self, job_id: str) -> JobRecord:
        path = self.record_path(job_id)
        if not path.exists():
            raise ConfigError(f"unknown job {job_id!r}")
        try:
            raw = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            raise ConfigError(
                f"unreadable job record {path}: {error}") from error
        record = JobRecord.from_json(raw)
        if record.job_id != job_id:
            raise ConfigError(
                f"job record {path} claims id {record.job_id!r}")
        return record

    def transition(self, job_id: str, new_state: str, *,
                   error: str | None = None) -> JobRecord:
        """Atomically move a job to ``new_state`` (state machine enforced).

        ``error`` is recorded on ``failed`` transitions and cleared on
        every other one.
        """
        if new_state not in JOB_STATES:
            raise ConfigError(
                f"job state must be one of {JOB_STATES}, got {new_state!r}")
        record = self.load(job_id)
        allowed = _TRANSITIONS[record.state]
        if new_state not in allowed:
            raise JobStateError(
                f"job {job_id} cannot go {record.state} -> {new_state} "
                f"(allowed: {sorted(allowed) or 'none — terminal state'})")
        record.state = new_state
        record.updated_at = self.clock()
        record.error = error if new_state == FAILED else None
        record.history.append([new_state, record.updated_at])
        self._persist(record)
        return record

    def _persist(self, record: JobRecord) -> None:
        write_atomic(self.record_path(record.job_id),
                     json.dumps(record.to_json(), indent=1, sort_keys=True))
