"""Characterization-as-a-service: the unified job layer (ROADMAP item 3).

Campaigns and sweeps used to be two near-duplicate orchestrators, each
hand-rolling result paths, done/pending bookkeeping, the error ledger,
the run report, scheduler construction, and force/resume semantics.
This package lifts that plumbing into one shared abstraction and builds
the long-running service on top of it:

:class:`~repro.service.execution.JobExecution`
    The durable execution namespace both orchestrators now delegate to —
    per-unit result paths, resume/pending state, ledger + run-report
    locations, cache-tier clearing on ``force``, and scheduler fan-out
    through :func:`repro.runtime.scheduler.make_scheduler`.

:class:`~repro.service.jobs.JobSpec` / :class:`~repro.service.jobs.JobStore`
    A job is a *kind* (``campaign`` | ``sweep``) plus its config
    dataclass; its id is the content digest of the wire-encoded spec —
    the same canonical-JSON digest scheme that keys
    :class:`~repro.runtime.cache.DigestCache` — so identical submissions
    dedup to the same job.  The store gives every job a durable
    namespace and an atomic ``queued -> running -> done/failed`` state
    machine riding :func:`repro.runtime.persist.write_atomic`.

:class:`~repro.service.manager.JobManager`
    Runs jobs through the scheduler seam (local or fleet), tees live
    progress into a per-job ``events.jsonl`` the ``stream`` verb replays,
    and renders figures on demand from persisted rows.

:class:`~repro.service.api.CharacterizationService` /
:class:`~repro.service.client.ServiceClient`
    The TCP endpoint (``repro-experiments serve-api``) and its client
    (``repro-experiments job ...``), speaking the length-prefixed JSON
    frame protocol from :mod:`repro.runtime.wire` — protocol-versioned
    hello, no pickles.

Import note: the heavyweight layers (manager/api/client import the
orchestrators, which import :mod:`repro.service.execution`) are exposed
lazily via module ``__getattr__`` so that ``campaign.py`` importing
``repro.service.execution`` never recurses through them.
"""

from __future__ import annotations

from repro.service.execution import JobExecution
from repro.service.jobs import (
    DONE,
    FAILED,
    JOB_KINDS,
    JOB_STATES,
    QUEUED,
    RUNNING,
    JobRecord,
    JobSpec,
    JobStateError,
    JobStore,
)

__all__ = [
    "DONE",
    "FAILED",
    "JOB_KINDS",
    "JOB_STATES",
    "QUEUED",
    "RUNNING",
    "CharacterizationService",
    "JobExecution",
    "JobManager",
    "JobRecord",
    "JobSpec",
    "JobStateError",
    "JobStore",
    "RunOptions",
    "ServiceClient",
]

_LAZY = {
    "JobManager": ("repro.service.manager", "JobManager"),
    "RunOptions": ("repro.service.manager", "RunOptions"),
    "CharacterizationService": ("repro.service.api",
                                "CharacterizationService"),
    "ServiceClient": ("repro.service.client", "ServiceClient"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
