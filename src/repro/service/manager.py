"""Run jobs: :class:`JobManager` + the progress event log.

The manager is the one place a :class:`~repro.service.jobs.JobRecord`
turns into computation: it builds the kind's orchestrator
(:class:`~repro.characterization.campaign.CharacterizationCampaign` or
:class:`~repro.analysis.sweeprunner.SweepRunner` — both thin adapters
over :class:`~repro.service.execution.JobExecution`) rooted at the job's
results namespace, fans the work out through the scheduler seam (local
or fleet), and drives the state machine ``queued -> running ->
done/failed`` around the run.

Progress streams ride the existing :class:`~repro.runtime.progress`
hooks: the manager tees every hook call into the job's ``events.jsonl``
(one JSON line per event, monotonically sequenced), which the service's
``stream`` verb tails and re-emits to clients — and
:func:`replay_event` maps an event line back onto any reporter, so
``job watch`` renders the same progress/ETA lines a local run prints.

Figures render **on demand from persisted rows** — no re-simulation:
``fig17`` aggregates a sweep's cached rows through the same
:func:`~repro.analysis.sweeprunner.render_aggregate` the batch CLI
prints, ``fig6`` rebuilds the N_RH boxes from a campaign's persisted
measurements, so service bytes match batch bytes by construction.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigError
from repro.runtime import LEDGER_NAME, REPORT_NAME, ProgressReporter
from repro.runtime.persist import CORRUPT_SUFFIX
from repro.service.jobs import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobRecord,
    JobSpec,
    JobStore,
)

__all__ = ["EventLogProgress", "JobManager", "RunOptions", "TeeProgress",
           "JOB_FIGURES", "replay_event"]

#: Figures each job kind can render on demand from its persisted results.
JOB_FIGURES = {"campaign": ("fig6",), "sweep": ("fig17",)}


@dataclass(frozen=True)
class RunOptions:
    """Execution knobs of one job run (the campaign/sweep CLI surface)."""

    force: bool = False
    jobs: int | None = 1
    task_timeout_s: float | None = None
    scheduler: str = "local"
    workers: int | None = None
    serve: str | tuple[str, int] | None = None
    lease_batch: int | None = None


class EventLogProgress(ProgressReporter):
    """Append every progress hook to a JSONL event log.

    Lines carry a monotonically increasing ``seq`` (the stream verb's
    ordering contract) and are flushed per event so a concurrent reader
    only ever observes whole lines.  Opening the log truncates it: each
    run's stream starts at ``seq`` 0 with its ``start`` event.
    """

    def __init__(self, path: str | Path, clock=time.time) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w")
        self._clock = clock
        self._seq = 0
        self._lock = threading.Lock()

    def _emit(self, event: str, **fields) -> None:
        with self._lock:
            record = {"seq": self._seq, "t": round(self._clock(), 3),
                      "event": event, **fields}
            self._seq += 1
            try:
                self._handle.write(
                    json.dumps(record, sort_keys=True) + "\n")
                self._handle.flush()
            except (OSError, ValueError):
                pass  # a full disk must not kill the run it narrates

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    def start(self, total: int, reused: int = 0) -> None:
        self._emit("start", total=total, reused=reused)

    def task_done(self, key: str, *, worker: str | None = None) -> None:
        self._emit("task_done", key=key, worker=worker)

    def task_retry(self, key: str, attempt: int, error: str, *,
                   classification: str = "transient") -> None:
        self._emit("task_retry", key=key, attempt=attempt, error=error,
                   classification=classification)

    def task_timeout(self, key: str, attempt: int, timeout_s: float) -> None:
        self._emit("task_timeout", key=key, attempt=attempt,
                   timeout_s=timeout_s)

    def task_degraded(self, key: str, error: str) -> None:
        self._emit("task_degraded", key=key, error=error)

    def task_failed(self, key: str, error: str) -> None:
        self._emit("task_failed", key=key, error=error)

    def pool_rebuilt(self, rebuilds: int, mode: str, reason: str) -> None:
        self._emit("pool_rebuilt", rebuilds=rebuilds, mode=mode,
                   reason=reason)

    def worker_joined(self, worker: str, workers: int) -> None:
        self._emit("worker_joined", worker=worker, workers=workers)

    def worker_left(self, worker: str, workers: int, reason: str) -> None:
        self._emit("worker_left", worker=worker, workers=workers,
                   reason=reason)

    def lease_update(self, worker: str, in_flight: int) -> None:
        self._emit("lease_update", worker=worker, in_flight=in_flight)

    def finish(self) -> None:
        self._emit("finish")


#: Which positional hook each event name maps back onto (replay side).
_REPLAY_HOOKS = {
    "start": lambda r, e: r.start(e["total"], reused=e.get("reused", 0)),
    "task_done": lambda r, e: r.task_done(e["key"],
                                          worker=e.get("worker")),
    "task_retry": lambda r, e: r.task_retry(
        e["key"], e["attempt"], e["error"],
        classification=e.get("classification", "transient")),
    "task_timeout": lambda r, e: r.task_timeout(e["key"], e["attempt"],
                                                e["timeout_s"]),
    "task_degraded": lambda r, e: r.task_degraded(e["key"], e["error"]),
    "task_failed": lambda r, e: r.task_failed(e["key"], e["error"]),
    "pool_rebuilt": lambda r, e: r.pool_rebuilt(e["rebuilds"], e["mode"],
                                                e["reason"]),
    "worker_joined": lambda r, e: r.worker_joined(e["worker"],
                                                  e["workers"]),
    "worker_left": lambda r, e: r.worker_left(e["worker"], e["workers"],
                                              e["reason"]),
    "lease_update": lambda r, e: r.lease_update(e["worker"],
                                                e["in_flight"]),
    "finish": lambda r, e: r.finish(),
}


def replay_event(reporter: ProgressReporter, event: dict) -> None:
    """Feed one streamed event back into a reporter's matching hook.

    ``job watch`` replays the stream into a
    :class:`~repro.runtime.progress.PrintProgress`, so remote jobs render
    the same progress/ETA lines a local run prints.  Unknown events (a
    newer server) are ignored rather than fatal.
    """
    hook = _REPLAY_HOOKS.get(event.get("event"))
    if hook is None:
        return
    try:
        hook(reporter, event)
    except (KeyError, TypeError):
        pass  # malformed event: narration must not break the client


class TeeProgress(ProgressReporter):
    """Forward every hook to several reporters (event log + live one)."""

    def __init__(self, reporters: tuple[ProgressReporter, ...]) -> None:
        self.reporters = tuple(reporters)

    def _fanout(self, hook: str, *args, **kwargs) -> None:
        for reporter in self.reporters:
            getattr(reporter, hook)(*args, **kwargs)

    def start(self, total, reused=0):
        self._fanout("start", total, reused=reused)

    def task_done(self, key, *, worker=None):
        self._fanout("task_done", key, worker=worker)

    def task_retry(self, key, attempt, error, *,
                   classification="transient"):
        self._fanout("task_retry", key, attempt, error,
                     classification=classification)

    def task_timeout(self, key, attempt, timeout_s):
        self._fanout("task_timeout", key, attempt, timeout_s)

    def task_degraded(self, key, error):
        self._fanout("task_degraded", key, error)

    def task_failed(self, key, error):
        self._fanout("task_failed", key, error)

    def pool_rebuilt(self, rebuilds, mode, reason):
        self._fanout("pool_rebuilt", rebuilds, mode, reason)

    def worker_joined(self, worker, workers):
        self._fanout("worker_joined", worker, workers)

    def worker_left(self, worker, workers, reason):
        self._fanout("worker_left", worker, workers, reason)

    def lease_update(self, worker, in_flight):
        self._fanout("lease_update", worker, in_flight)

    def finish(self):
        self._fanout("finish")


class JobManager:
    """Submit, run, and read back jobs in one store."""

    def __init__(self, root: str | Path, *,
                 defaults: RunOptions | None = None) -> None:
        self.store = JobStore(root)
        self.defaults = defaults or RunOptions()
        self._active: set[str] = set()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> tuple[JobRecord, bool]:
        """Create (or dedup to) the job; returns ``(record, created)``."""
        return self.store.submit(spec)

    def status(self, job_id: str) -> JobRecord:
        return self.store.load(job_id)

    def is_active(self, job_id: str) -> bool:
        """Whether this manager is executing the job right now."""
        with self._lock:
            return job_id in self._active

    def run(self, job_id: str, *,
            progress: ProgressReporter | None = None,
            options: RunOptions | None = None) -> JobRecord:
        """Execute (or resume) one job; returns its terminal record.

        A ``done`` job returns immediately without recomputing anything
        (unless ``options.force``); ``queued``, ``failed``, and orphaned
        ``running`` jobs are (re)run — the orchestrator's resume contract
        reuses every valid persisted result, so a crash-interrupted job
        only computes what is missing.
        """
        options = options or self.defaults
        record = self.store.load(job_id)
        if record.state == DONE and not options.force:
            return record
        with self._lock:
            if job_id in self._active:
                raise ConfigError(f"job {job_id} is already running here")
            self._active.add(job_id)
        try:
            # Normalize to queued (covers failed retries and jobs a dead
            # runner abandoned in ``running``), then claim the run.
            if record.state != QUEUED:
                record = self.store.transition(job_id, QUEUED)
            self.store.transition(job_id, RUNNING)
            events = EventLogProgress(self.store.events_path(job_id))
            reporter: ProgressReporter = events
            if progress is not None:
                reporter = TeeProgress((events, progress))
            try:
                runner = self._runner(record)
                runner.run(force=options.force, jobs=options.jobs,
                           progress=reporter,
                           task_timeout_s=options.task_timeout_s,
                           scheduler=options.scheduler,
                           workers=options.workers, serve=options.serve,
                           lease_batch=options.lease_batch)
            except BaseException as error:
                events.close()
                self.store.transition(
                    job_id, FAILED,
                    error=f"{type(error).__name__}: {error}")
                raise
            events.close()
            return self.store.transition(job_id, DONE)
        finally:
            with self._lock:
                self._active.discard(job_id)

    def _runner(self, record: JobRecord):
        """Build the kind's orchestrator rooted at the job's namespace."""
        spec = record.spec_obj()
        results_dir = self.store.results_dir(record.job_id)
        if spec.kind == "campaign":
            from repro.characterization.campaign import (
                CharacterizationCampaign,
            )
            return CharacterizationCampaign(results_dir, spec.config)
        from repro.analysis.sweeprunner import SweepRunner

        return SweepRunner(results_dir, spec.config)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def _require_done(self, job_id: str) -> JobRecord:
        record = self.store.load(job_id)
        if record.state != DONE:
            raise ConfigError(
                f"job {job_id} is {record.state}, not done"
                + (f" ({record.error})" if record.error else ""))
        return record

    def result_files(self, job_id: str) -> dict[str, bytes]:
        """Every persisted result file, by name — what ``fetch`` ships.

        Run telemetry (``run_report.json``, ``errors.jsonl``) and
        engine leftovers (quarantined/tmp files) are excluded: they
        describe *how* the job ran, not what it computed, and are not
        part of the byte-identity contract.
        """
        self._require_done(job_id)
        results_dir = self.store.results_dir(job_id)
        out: dict[str, bytes] = {}
        for path in sorted(results_dir.iterdir()):
            if not path.is_file():
                continue  # cache tiers live in subdirectories
            if path.name in (REPORT_NAME, LEDGER_NAME):
                continue
            if path.name.endswith(".tmp") or CORRUPT_SUFFIX in path.name:
                continue
            out[path.name] = path.read_bytes()
        return out

    def figure(self, job_id: str, name: str) -> str:
        """Render one figure from the job's persisted rows (no re-runs)."""
        record = self._require_done(job_id)
        spec = record.spec_obj()
        available = JOB_FIGURES[spec.kind]
        if name not in available:
            raise ConfigError(
                f"{spec.kind} jobs render {available}, not {name!r}")
        results_dir = self.store.results_dir(record.job_id)
        if spec.kind == "campaign":
            from repro.analysis.figures import fig6_nrh_boxes_from
            from repro.characterization.campaign import (
                CharacterizationCampaign,
            )
            campaign = CharacterizationCampaign(results_dir, spec.config)
            boxes = fig6_nrh_boxes_from(
                campaign.load(), tras_factors=spec.config.tras_factors)
            return repr(boxes)
        from repro.analysis.sweeprunner import (
            SweepRunner,
            load_row,
            render_aggregate,
        )
        runner = SweepRunner(results_dir, spec.config)
        rows = [load_row(runner.row_path(p))
                for p in spec.config.points()]
        return render_aggregate(runner.aggregate(rows))
