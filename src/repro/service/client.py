"""Client of the characterization service (the ``job`` CLI verbs).

One :class:`ServiceClient` holds one framed TCP connection to a
``repro-experiments serve-api`` endpoint: a protocol-versioned hello on
connect (with bounded, backing-off connect retry — a service that never
comes up is a clear error, not a hang), then request/reply frames for
``submit``/``status``/``results``/``figure`` and a tailing loop for
``stream``.  Error frames surface as :class:`~repro.errors.ConfigError`.
"""

from __future__ import annotations

import base64
import socket
from pathlib import Path
from typing import Callable

from repro.errors import ConfigError
from repro.runtime.scheduler import parse_address
from repro.runtime.wire import (
    PROTOCOL_VERSION,
    connect_with_retry,
    recv_frame,
    send_frame,
)
from repro.service.jobs import JobSpec

__all__ = ["ServiceClient"]


class ServiceClient:
    """One framed connection to a characterization service."""

    def __init__(self, address: str | tuple[str, int], *,
                 connect_timeout_s: float = 10.0) -> None:
        if isinstance(address, str):
            address = parse_address(address)
        host, port = address
        if host == "0.0.0.0":  # "--connect :7900" means "this host"
            host = "127.0.0.1"
        self.address = (host, port)
        self.sock: socket.socket | None = connect_with_retry(
            host, port, timeout_s=connect_timeout_s)
        try:
            reply = self._roundtrip({"type": "hello",
                                     "protocol": PROTOCOL_VERSION})
        except ConfigError:
            self.close()
            raise
        if reply.get("type") != "hello" \
                or reply.get("protocol") != PROTOCOL_VERSION:
            self.close()
            raise ConfigError(
                f"{host}:{port} did not answer a service hello "
                f"(got {reply.get('type')!r}); is that a serve-api "
                f"endpoint?")
        self.service = reply.get("service")

    # ------------------------------------------------------------------
    def close(self) -> None:
        sock, self.sock = self.sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _roundtrip(self, message: dict) -> dict:
        if self.sock is None:
            raise ConfigError("service connection is closed")
        try:
            send_frame(self.sock, message)
            reply = recv_frame(self.sock)
        except (ConnectionError, OSError) as error:
            raise ConfigError(
                f"service at {self.address[0]}:{self.address[1]} went "
                f"away: {error}") from error
        if reply is None:
            raise ConfigError(
                f"service at {self.address[0]}:{self.address[1]} closed "
                f"the connection")
        if reply.get("type") == "error":
            raise ConfigError(f"service error: {reply.get('error')}")
        return reply

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> dict:
        """Submit a job; returns the job frame (``job_id``, ``state``,
        ``deduped``, queue ``position``)."""
        return self._roundtrip({"type": "submit",
                                "spec": spec.encoded()})

    def status(self, job_id: str) -> dict:
        return self._roundtrip({"type": "status", "job_id": job_id})

    def stream(self, job_id: str,
               on_event: Callable[[dict], None] | None = None) -> dict:
        """Follow a job's progress events until it reaches a terminal
        state; returns the ``end`` frame (``state``, ``error``)."""
        if self.sock is None:
            raise ConfigError("service connection is closed")
        try:
            send_frame(self.sock, {"type": "stream", "job_id": job_id})
            while True:
                frame = recv_frame(self.sock)
                if frame is None:
                    raise ConfigError(
                        "service closed the connection mid-stream")
                kind = frame.get("type")
                if kind == "error":
                    raise ConfigError(f"service error: {frame.get('error')}")
                if kind == "end":
                    return frame
                if kind == "event" and on_event is not None:
                    on_event(frame.get("data") or {})
        except (ConnectionError, OSError) as error:
            raise ConfigError(
                f"service at {self.address[0]}:{self.address[1]} went "
                f"away mid-stream: {error}") from error

    def results(self, job_id: str) -> dict[str, bytes]:
        """The job's persisted result files, decoded to bytes by name."""
        reply = self._roundtrip({"type": "results", "job_id": job_id})
        return {name: base64.b64decode(encoded)
                for name, encoded in sorted(
                    (reply.get("files") or {}).items())}

    def fetch(self, job_id: str, dest: str | Path) -> list[Path]:
        """Write the job's result files under ``dest``; returns paths."""
        dest = Path(dest)
        dest.mkdir(parents=True, exist_ok=True)
        written = []
        for name, data in self.results(job_id).items():
            if "/" in name or "\\" in name or name.startswith("."):
                raise ConfigError(f"illegal result file name {name!r}")
            path = dest / name
            path.write_bytes(data)
            written.append(path)
        return written

    def figure(self, job_id: str, name: str) -> str:
        """Render one figure from the job's cached rows, server-side."""
        reply = self._roundtrip({"type": "figure", "job_id": job_id,
                                 "name": name})
        return str(reply.get("text"))

    def stop_service(self) -> None:
        """Ask the service to shut down (the admin verb)."""
        self._roundtrip({"type": "stop"})
