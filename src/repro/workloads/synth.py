"""Synthetic memory-trace generation.

A :class:`TraceSpec` describes a workload's memory behavior in the terms
that matter to a DRAM study: memory intensity (MPKI), spatial locality
(streaming-run length), working-set size, access skew (hot rows), and
read/write mix.  :func:`generate_trace` turns a spec into a concrete trace
deterministically (same spec + seed = same trace).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.rng import SeedTree
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class TraceSpec:
    """Behavioral description of one synthetic workload."""

    name: str
    mpki: float  #: memory accesses per kilo-instruction
    locality: float  #: probability the next access continues a stream run
    footprint_lines: int  #: distinct cache lines in the working set
    write_fraction: float = 0.25
    hot_fraction: float = 0.0  #: fraction of accesses hitting a few hot rows
    hot_lines: int = 512  #: size of the hot region (cache lines)

    def __post_init__(self) -> None:
        if self.mpki <= 0:
            raise ConfigError("mpki must be positive")
        if not 0.0 <= self.locality <= 1.0:
            raise ConfigError("locality must be in [0, 1]")
        if self.footprint_lines <= 0:
            raise ConfigError("footprint must be positive")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigError("write fraction must be in [0, 1]")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ConfigError("hot fraction must be in [0, 1]")
        if self.hot_lines <= 0:
            raise ConfigError("hot region must be positive")


def generate_trace(spec: TraceSpec, *, requests: int = 20_000,
                   seed: int = 7) -> Trace:
    """Generate a deterministic trace of ``requests`` memory accesses."""
    if requests <= 0:
        raise ConfigError("requests must be positive")
    rng = SeedTree(seed).generator("trace", spec.name)

    # Bubbles: geometric around the mean implied by MPKI.
    mean_bubbles = max(0.0, 1000.0 / spec.mpki - 1.0)
    if mean_bubbles > 0:
        bubbles = rng.geometric(1.0 / (mean_bubbles + 1.0), size=requests) - 1
    else:
        bubbles = np.zeros(requests, dtype=np.int64)
    bubbles = bubbles.astype(np.int64)

    is_write = rng.random(requests) < spec.write_fraction

    # Addresses: streaming runs within the footprint, with optional hot-row
    # skew.  Draw the control randomness vectorized, then walk the chain.
    continue_run = rng.random(requests) < spec.locality
    go_hot = rng.random(requests) < spec.hot_fraction
    jump_targets = rng.integers(0, spec.footprint_lines, size=requests)
    hot_targets = rng.integers(0, min(spec.hot_lines, spec.footprint_lines),
                               size=requests)
    addresses = np.empty(requests, dtype=np.int64)
    current = int(jump_targets[0])
    for i in range(requests):
        if go_hot[i]:
            current = int(hot_targets[i])
        elif continue_run[i]:
            current = (current + 1) % spec.footprint_lines
        else:
            current = int(jump_targets[i])
        addresses[i] = current
    return Trace(name=spec.name, bubbles=bubbles,
                 is_write=is_write, addresses=addresses)
