"""The evaluated workload suites (62 single-core + 60 4-core mixes, §9.1).

Each entry is a synthetic archetype named after the benchmark it emulates,
with MPKI / locality / footprint / write-mix parameters chosen from the
published memory behavior of those benchmarks (high-MPKI pointer chasers
like mcf, streaming solvers like lbm/leslie3d, low-MPKI integer codes like
perlbench, transactional and key-value server workloads, media kernels).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.rng import SeedTree
from repro.workloads.synth import TraceSpec, generate_trace
from repro.workloads.trace import Trace

_KLINE = 1024  # cache lines per 64 KB


def _spec(name: str, mpki: float, locality: float, footprint_kb: int,
          write_fraction: float = 0.25, hot_fraction: float = 0.0) -> TraceSpec:
    return TraceSpec(
        name=name, mpki=mpki, locality=locality,
        footprint_lines=max(64, footprint_kb * 1024 // 64),
        write_fraction=write_fraction, hot_fraction=hot_fraction)


#: The 62 single-core workloads (SPEC06, SPEC17, TPC, MediaBench, YCSB).
WORKLOAD_SPECS: tuple[TraceSpec, ...] = (
    # --- SPEC CPU2006 (memory-intensive) ---
    _spec("spec06.mcf", 38.0, 0.15, 32_768, 0.18),
    _spec("spec06.lbm", 31.0, 0.82, 65_536, 0.45),
    _spec("spec06.milc", 25.0, 0.55, 49_152, 0.30),
    _spec("spec06.libquantum", 28.0, 0.90, 16_384, 0.20),
    _spec("spec06.soplex", 22.0, 0.45, 24_576, 0.22),
    _spec("spec06.GemsFDTD", 19.0, 0.70, 40_960, 0.35),
    _spec("spec06.leslie3d", 17.0, 0.75, 32_768, 0.32),
    _spec("spec06.omnetpp", 16.0, 0.20, 20_480, 0.25),
    _spec("spec06.sphinx3", 12.0, 0.50, 12_288, 0.12),
    _spec("spec06.cactusADM", 9.0, 0.65, 24_576, 0.30),
    _spec("spec06.zeusmp", 7.5, 0.60, 16_384, 0.28),
    _spec("spec06.wrf", 6.5, 0.62, 16_384, 0.26),
    _spec("spec06.astar", 5.5, 0.25, 8_192, 0.20),
    _spec("spec06.bzip2", 4.0, 0.40, 6_144, 0.30),
    _spec("spec06.gcc", 3.0, 0.35, 4_096, 0.28),
    _spec("spec06.xalancbmk", 2.5, 0.22, 4_096, 0.18),
    _spec("spec06.hmmer", 1.5, 0.55, 1_024, 0.15),
    _spec("spec06.h264ref", 1.2, 0.60, 2_048, 0.20),
    _spec("spec06.gobmk", 0.9, 0.30, 1_024, 0.18),
    _spec("spec06.sjeng", 0.8, 0.25, 1_024, 0.15),
    _spec("spec06.perlbench", 0.7, 0.35, 1_024, 0.22),
    _spec("spec06.namd", 0.6, 0.55, 1_024, 0.12),
    _spec("spec06.povray", 0.4, 0.45, 512, 0.10),
    _spec("spec06.calculix", 0.5, 0.50, 768, 0.14),
    # --- SPEC CPU2017 ---
    _spec("spec17.bwaves", 27.0, 0.78, 57_344, 0.35),
    _spec("spec17.mcf", 30.0, 0.18, 36_864, 0.20),
    _spec("spec17.lbm", 29.0, 0.85, 65_536, 0.46),
    _spec("spec17.cam4", 10.0, 0.58, 24_576, 0.28),
    _spec("spec17.cactuBSSN", 13.0, 0.68, 32_768, 0.33),
    _spec("spec17.fotonik3d", 21.0, 0.80, 40_960, 0.30),
    _spec("spec17.roms", 15.0, 0.72, 28_672, 0.31),
    _spec("spec17.pop2", 8.0, 0.55, 16_384, 0.27),
    _spec("spec17.omnetpp", 14.0, 0.20, 20_480, 0.24),
    _spec("spec17.xalancbmk", 3.5, 0.25, 6_144, 0.18),
    _spec("spec17.gcc", 4.5, 0.33, 8_192, 0.26),
    _spec("spec17.deepsjeng", 1.1, 0.28, 2_048, 0.16),
    _spec("spec17.leela", 0.7, 0.30, 1_024, 0.12),
    _spec("spec17.exchange2", 0.2, 0.40, 256, 0.10),
    _spec("spec17.x264", 1.8, 0.62, 3_072, 0.24),
    _spec("spec17.imagick", 1.0, 0.70, 2_048, 0.20),
    _spec("spec17.nab", 2.2, 0.52, 3_072, 0.15),
    _spec("spec17.parest", 5.0, 0.48, 10_240, 0.22),
    _spec("spec17.perlbench", 0.8, 0.35, 1_024, 0.22),
    _spec("spec17.blender", 2.8, 0.45, 6_144, 0.21),
    _spec("spec17.wrf", 6.0, 0.60, 14_336, 0.26),
    _spec("spec17.xz", 7.0, 0.38, 12_288, 0.34),
    # --- TPC (transactional / analytic; skewed hot rows) ---
    _spec("tpc.tpcc64", 18.0, 0.30, 32_768, 0.38, hot_fraction=0.12),
    _spec("tpc.tpch2", 20.0, 0.65, 49_152, 0.15, hot_fraction=0.05),
    _spec("tpc.tpch6", 24.0, 0.75, 57_344, 0.12, hot_fraction=0.04),
    _spec("tpc.tpch17", 16.0, 0.55, 40_960, 0.14, hot_fraction=0.06),
    # --- MediaBench (streaming kernels, modest footprints) ---
    _spec("media.h263enc", 3.2, 0.80, 2_048, 0.35),
    _spec("media.h263dec", 2.4, 0.82, 2_048, 0.40),
    _spec("media.jpg2000enc", 5.5, 0.75, 4_096, 0.36),
    _spec("media.jpg2000dec", 4.8, 0.78, 4_096, 0.42),
    _spec("media.mpeg2enc", 4.2, 0.83, 3_072, 0.33),
    _spec("media.mpeg2dec", 3.6, 0.85, 3_072, 0.38),
    # --- YCSB (key-value serving; random access, hot keys) ---
    _spec("ycsb.a", 13.0, 0.18, 49_152, 0.45, hot_fraction=0.20),
    _spec("ycsb.b", 12.0, 0.18, 49_152, 0.08, hot_fraction=0.20),
    _spec("ycsb.c", 11.0, 0.18, 49_152, 0.00, hot_fraction=0.22),
    _spec("ycsb.d", 12.5, 0.22, 49_152, 0.10, hot_fraction=0.25),
    _spec("ycsb.e", 14.0, 0.40, 57_344, 0.06, hot_fraction=0.10),
    _spec("ycsb.f", 13.5, 0.20, 49_152, 0.30, hot_fraction=0.18),
)

_SPEC_BY_NAME = {spec.name: spec for spec in WORKLOAD_SPECS}

if len(WORKLOAD_SPECS) != 62:
    raise ConfigError(
        f"expected 62 single-core workloads, have {len(WORKLOAD_SPECS)}")


def single_core_suite() -> tuple[str, ...]:
    """Names of the 62 single-core workloads (§9.1)."""
    return tuple(spec.name for spec in WORKLOAD_SPECS)


def workload_spec(name: str) -> TraceSpec:
    try:
        return _SPEC_BY_NAME[name]
    except KeyError:
        raise ConfigError(f"unknown workload {name!r}") from None


def workload_by_name(name: str, *, requests: int = 20_000,
                     seed: int = 7) -> Trace:
    """Generate the trace of one named workload."""
    return generate_trace(workload_spec(name), requests=requests, seed=seed)


def multicore_mixes(count: int = 60, *, seed: int = 11) -> tuple[tuple[str, ...], ...]:
    """The 60 multiprogrammed 4-core workload mixes (§9.1).

    Mixes are drawn deterministically: each contains at least one
    memory-intensive workload so memory contention is always exercised,
    matching how such mixes are typically constructed.
    """
    if count <= 0:
        raise ConfigError("count must be positive")
    names = single_core_suite()
    intensive = [s.name for s in WORKLOAD_SPECS if s.mpki >= 10.0]
    rng = SeedTree(seed).generator("mixes")
    mixes = []
    for index in range(count):
        anchor = intensive[int(rng.integers(0, len(intensive)))]
        rest = [names[int(i)] for i in rng.integers(0, len(names), size=3)]
        mixes.append((anchor, *rest))
    return tuple(mixes)
