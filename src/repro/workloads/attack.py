"""RowHammer attack traces for the full-system simulator.

Synthetic memory traces that implement the attack access patterns of the
paper's threat model *as seen by the memory controller* — useful for
observing mitigation mechanisms trigger inside the system simulator (the
characterization stack attacks the device model directly; these attack the
simulated *system*).

All generators emit cache-line addresses that decode (through the MOP
mapping) to alternating rows of one bank, maximizing per-row activation
rates the way a real attacker's access pattern would.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.sim.addrmap import AddressMapper, DecodedAddress
from repro.sim.config import SystemConfig
from repro.workloads.trace import Trace


def _line_of_row(mapper: AddressMapper, row: int, *, bank: int = 0,
                 bank_group: int = 0, column_run: int = 0) -> int:
    decoded = DecodedAddress(channel=0, rank=0, bank_group=bank_group,
                             bank=bank, row=row,
                             column=column_run * AddressMapper.MOP_RUN)
    return mapper.encode(decoded)


def _attack_bubbles(config: SystemConfig, count: int,
                    serialized: bool) -> np.ndarray:
    """Attack code chains its loads through data dependencies (and memory
    barriers) so the scheduler cannot coalesce same-row accesses; in trace
    form that is one load per instruction window."""
    if not serialized:
        return np.zeros(count, dtype=np.int64)
    return np.full(count, config.instruction_window - 1, dtype=np.int64)


def double_sided_trace(config: SystemConfig, *, victim_row: int = 1000,
                       hammers: int = 20_000, serialized: bool = True,
                       name: str = "attack.double_sided") -> Trace:
    """Alternating accesses to the victim's two neighbor rows.

    Each access targets a different column run and the loads are serialized
    (dependent), so every access misses the row buffer and forces one ACT —
    the max-rate hammering of §4.3 expressed as a memory trace.
    """
    if hammers <= 0:
        raise ConfigError("hammer count must be positive")
    if not 1 <= victim_row < config.rows_per_bank - 1:
        raise ConfigError("victim row needs two neighbors")
    mapper = AddressMapper(config)
    aggressors = (victim_row - 1, victim_row + 1)
    runs = config.columns_per_row // AddressMapper.MOP_RUN
    addresses = np.empty(2 * hammers, dtype=np.int64)
    for i in range(2 * hammers):
        row = aggressors[i % 2]
        addresses[i] = _line_of_row(mapper, row,
                                    column_run=(i // 2) % runs)
    return Trace(
        name=name,
        bubbles=_attack_bubbles(config, 2 * hammers, serialized),
        is_write=np.zeros(2 * hammers, dtype=bool),
        addresses=addresses,
    )


def many_sided_trace(config: SystemConfig, *, first_row: int = 1000,
                     aggressor_rows: int = 8, hammers_per_row: int = 4_000,
                     serialized: bool = True,
                     name: str = "attack.many_sided") -> Trace:
    """TRRespass-style many-sided pattern: N aggressors hammered round-robin
    (defeats simple trackers by spreading activations)."""
    if aggressor_rows < 2:
        raise ConfigError("many-sided needs at least two aggressors")
    if hammers_per_row <= 0:
        raise ConfigError("hammer count must be positive")
    mapper = AddressMapper(config)
    rows = [first_row + 2 * i for i in range(aggressor_rows)]
    if rows[-1] >= config.rows_per_bank:
        raise ConfigError("aggressor rows exceed the bank")
    runs = config.columns_per_row // AddressMapper.MOP_RUN
    total = aggressor_rows * hammers_per_row
    addresses = np.empty(total, dtype=np.int64)
    for i in range(total):
        row = rows[i % aggressor_rows]
        addresses[i] = _line_of_row(mapper, row,
                                    column_run=(i // aggressor_rows) % runs)
    return Trace(
        name=name,
        bubbles=_attack_bubbles(config, total, serialized),
        is_write=np.zeros(total, dtype=bool),
        addresses=addresses,
    )


def row_activation_counts(config: SystemConfig, trace: Trace,
                          ) -> dict[tuple[int, int], int]:
    """(flat bank, row) -> guaranteed activation count for an attack trace
    (each access misses the row buffer by construction)."""
    mapper = AddressMapper(config)
    counts: dict[tuple[int, int], int] = {}
    previous_row: dict[int, int] = {}
    for address in trace.addresses:
        decoded = mapper.decode(int(address))
        flat = mapper.flat_bank_of(decoded)
        if previous_row.get(flat) != decoded.row:
            counts[(flat, decoded.row)] = counts.get(
                (flat, decoded.row), 0) + 1
        previous_row[flat] = decoded.row
    return counts
