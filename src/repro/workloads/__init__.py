"""Workload traces: format, synthetic generators, and benchmark suites.

The paper evaluates 62 single-core workloads and 60 4-core mixes drawn from
SPEC CPU2006/2017, TPC, MediaBench, and YCSB memory traces.  Those traces
require the original binaries and SimPoint infrastructure; this package
generates synthetic traces spanning the same behavioral space — memory
intensity (MPKI), row-buffer locality, working-set size, bank parallelism,
and read/write mix — with suite-archetype presets named after the suites
they emulate (see DESIGN.md for the substitution rationale).
"""

from repro.workloads.trace import Trace
from repro.workloads.synth import TraceSpec, generate_trace
from repro.workloads.suites import (
    multicore_mixes,
    single_core_suite,
    workload_by_name,
)
from repro.workloads.attack import double_sided_trace, many_sided_trace

__all__ = [
    "Trace",
    "TraceSpec",
    "generate_trace",
    "single_core_suite",
    "multicore_mixes",
    "workload_by_name",
    "double_sided_trace",
    "many_sided_trace",
]
