"""The memory-trace format consumed by the core model.

A trace is the post-LLC memory-request stream of 100M-instruction SimPoint
regions in the paper; here it is three parallel arrays: for each memory
request, the number of non-memory instructions preceding it (``bubbles``),
whether it is a write, and its cache-line address.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ConfigError


@dataclass
class Trace:
    """One workload's memory trace."""

    name: str
    bubbles: np.ndarray  #: int64[n] non-memory instructions before request i
    is_write: np.ndarray  #: bool[n]
    addresses: np.ndarray  #: int64[n] cache-line addresses

    def __post_init__(self) -> None:
        n = len(self.bubbles)
        if len(self.is_write) != n or len(self.addresses) != n:
            raise ConfigError("trace arrays must have equal length")
        if n == 0:
            raise ConfigError("empty trace")
        if np.any(self.bubbles < 0):
            raise ConfigError("negative bubble count")

    def __len__(self) -> int:
        return len(self.bubbles)

    @property
    def instructions(self) -> int:
        """Total instruction count (memory ops + bubbles)."""
        return int(self.bubbles.sum()) + len(self)

    @property
    def mpki(self) -> float:
        """Memory accesses per kilo-instruction."""
        return 1000.0 * len(self) / self.instructions

    @property
    def write_fraction(self) -> float:
        return float(self.is_write.mean())

    def truncated(self, max_instructions: int) -> "Trace":
        """A prefix of this trace covering about ``max_instructions``."""
        if max_instructions <= 0:
            raise ConfigError("max_instructions must be positive")
        cumulative = np.cumsum(self.bubbles + 1)
        keep = int(np.searchsorted(cumulative, max_instructions, side="right"))
        keep = max(keep, 1)
        return Trace(
            name=self.name,
            bubbles=self.bubbles[:keep],
            is_write=self.is_write[:keep],
            addresses=self.addresses[:keep],
        )

    # ------------------------------------------------------------------
    # persistence (npz round trip)
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        np.savez_compressed(
            Path(path), name=np.asarray(self.name),
            bubbles=self.bubbles, is_write=self.is_write,
            addresses=self.addresses)

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        data = np.load(Path(path), allow_pickle=False)
        return cls(
            name=str(data["name"]),
            bubbles=data["bubbles"],
            is_write=data["is_write"],
            addresses=data["addresses"],
        )
