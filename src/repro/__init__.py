"""repro: a full-stack reproduction of *Understanding RowHammer Under
Reduced Refresh Latency* (PaCRAM, HPCA 2025).

The library has three layers:

1. **Characterization stack** — a behavioral DDR4 device model
   (:mod:`repro.dram`), a software DRAM-Bender testing platform
   (:mod:`repro.bender`), and the paper's Algorithm-1 methodology
   (:mod:`repro.characterization`).
2. **System stack** — a DDR5 memory-system simulator (:mod:`repro.sim`),
   five RowHammer mitigation mechanisms (:mod:`repro.mitigations`), and
   PaCRAM itself (:mod:`repro.core`).
3. **Evaluation** — workload suites (:mod:`repro.workloads`) and the
   per-figure/table experiment builders (:mod:`repro.analysis`).

Quickstart::

    from repro import characterize_module, PaCRAMConfig

    result = characterize_module("S6", tras_factors=(1.0, 0.36), per_region=16)
    print(result.lowest_nrh(0.36))              # measured N_RH at 0.36 tRAS
    config = PaCRAMConfig.from_catalog("S6", 0.36)
    print(config.tfcri_ns)                      # 374 ms (Table 4)
"""

from repro.bender import DRAMBenderHost
from repro.characterization import (
    ModuleCharacterization,
    characterize_module,
    measure_row,
)
from repro.core import PaCRAM, PaCRAMConfig, PeriodicPaCRAM
from repro.dram import DRAMModule, Manufacturer, all_module_ids, module_spec
from repro.mitigations import make_mitigation
from repro.sim import MemorySystem, SimulationResult, SystemConfig
from repro.workloads import multicore_mixes, single_core_suite, workload_by_name

__version__ = "1.0.0"

__all__ = [
    "DRAMBenderHost",
    "ModuleCharacterization",
    "characterize_module",
    "measure_row",
    "PaCRAM",
    "PaCRAMConfig",
    "PeriodicPaCRAM",
    "DRAMModule",
    "Manufacturer",
    "all_module_ids",
    "module_spec",
    "make_mitigation",
    "MemorySystem",
    "SimulationResult",
    "SystemConfig",
    "multicore_mixes",
    "single_core_suite",
    "workload_by_name",
    "__version__",
]
