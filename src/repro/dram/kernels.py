"""Vectorized bank-level device-model kernels (the characterization fast path).

The scalar model (:mod:`repro.dram.cell_array`) evaluates one row at a time;
characterizing a bank calls it millions of times with the same
``(factor, n_pr, temperature, pattern)`` arguments and only the per-row
traits varying.  This module holds the struct-of-arrays form of that
evaluation: :class:`BankTraits` samples a whole batch of rows' traits (using
each row's *own* seed-tree generator, so the draws are bit-identical to the
per-row path) and evaluates the flip physics over row vectors.

Bit-exactness contract
----------------------
The vectorized kernels must produce *bit-identical* results to the scalar
path — the scalar path is the parity oracle (see
``tests/test_characterization_vectorized.py``).  Two rules keep that true:

* every elementwise arithmetic step replicates the scalar expression's
  exact operation order and parenthesization (IEEE-754 ``+ - * /`` are
  exactly rounded, so elementwise numpy float64 arithmetic matches Python
  float arithmetic bit-for-bit when the operation sequence matches);
* transcendentals (``log``, ``erf``) are *not* vectorized — numpy's SIMD
  implementations may differ from ``math``'s by ULPs — and instead run in
  masked scalar loops over only the rows that actually flip, sharing
  ``math.log`` / :func:`repro.dram.cell_array._phi` with the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

import numpy as np

from repro.dram.catalog import ModuleSpec
from repro.dram.cell_array import (
    _BER_BIAS_GAIN,
    _CELL_SIGMA,
    _MEDIAN_CELL_MULTIPLIER,
    RowTraits,
    _phi,
    draw_traits,
)
from repro.dram.charge import ChargeModel
from repro.dram.disturbance import DataPattern
from repro.errors import ConfigError
from repro.rng import SeedTree
from repro.units import MS


@dataclass
class EvalCounters:
    """Device-model evaluation counters for the fast path.

    ``model_evals`` counts per-row physics evaluations actually performed
    (a probe over ``k`` active rows adds ``k``); ``probe_batches`` counts
    vectorized probe calls; ``cache_hits`` counts probes served from a
    memo instead of being evaluated.  The CI smoke test bounds
    ``model_evals`` per measured row — a counter, not a wall clock, so it
    cannot flake.
    """

    model_evals: int = 0
    probe_batches: int = 0
    cache_hits: int = 0

    def evals_per_row_point(self, rows: int, points: int) -> float:
        """Average model evaluations per (row, test-point) pair."""
        total = max(1, rows * points)
        return self.model_evals / total


class BankTraits:
    """Struct-of-arrays view of many rows' traits in one bank.

    Trait values are sampled through each row's dedicated generator stream
    (``seeds.generator("row", bank, row)``) — the same draws, in the same
    order, as :class:`repro.dram.cell_array.RowPopulation` — and then laid
    out as contiguous float64 arrays for vectorized evaluation.  The
    original :class:`RowTraits` objects are kept so per-row views
    (``RowPopulation``) can be built without resampling.
    """

    def __init__(self, spec: ModuleSpec, charge: ChargeModel, bank: int,
                 rows: tuple[int, ...], traits: list[RowTraits]) -> None:
        if len(rows) != len(traits):
            raise ConfigError("rows/traits length mismatch")
        self.spec = spec
        self.charge = charge
        self.bank = bank
        self.rows = rows
        self.traits = traits
        self.index = {row: i for i, row in enumerate(rows)}
        self.cells = spec.row_bits()
        self._sigma = _CELL_SIGMA[spec.manufacturer]
        self._ber_gain = _BER_BIAS_GAIN[spec.manufacturer]
        self.base_nrh = np.array([t.base_nrh for t in traits], dtype=np.float64)
        self.sensitivity = np.array([t.sensitivity for t in traits],
                                    dtype=np.float64)
        self.sensitive_extra_drop = np.array(
            [t.sensitive_extra_drop for t in traits], dtype=np.float64)
        self.retention_strength = np.array(
            [t.retention_strength for t in traits], dtype=np.float64)
        self.worst_effectiveness = np.array(
            [t.worst_effectiveness for t in traits], dtype=np.float64)
        self.halfdouble_draw = np.array(
            [t.halfdouble_draw for t in traits], dtype=np.float64)
        patterns = traits[0].pattern_effectiveness.keys() if traits else ()
        self.pattern_effectiveness = {
            pattern: np.array([t.pattern_effectiveness[pattern]
                               for t in traits], dtype=np.float64)
            for pattern in patterns
        }

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def sample(cls, spec: ModuleSpec, charge: ChargeModel, bank: int,
               rows: tuple[int, ...], seeds: SeedTree,
               existing: dict[int, RowTraits] | None = None) -> "BankTraits":
        """Sample traits for ``rows``, reusing already-sampled traits.

        ``existing`` maps row -> traits the module already instantiated
        through the per-row path; reusing them keeps one source of truth
        (and the draws are identical either way).
        """
        traits: list[RowTraits] = []
        for row in rows:
            t = existing.get(row) if existing else None
            if t is None:
                t = draw_traits(seeds.generator("row", bank, row), spec)
            traits.append(t)
        return cls(spec, charge, bank, tuple(rows), traits)

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------
    # vectorized physics (see module docstring for the parity contract)
    # ------------------------------------------------------------------
    def _all_idx(self) -> np.ndarray:
        return np.arange(len(self.rows))

    def nrh_ratio(self, factor: float, n_pr: int = 1,
                  temperature_c: float = 80.0,
                  idx: np.ndarray | None = None) -> np.ndarray:
        """Vector form of :meth:`RowPopulation.nrh_ratio` over ``idx``."""
        if idx is None:
            idx = self._all_idx()
        # Module-level curve: scalar per call, memoized in ChargeModel.
        module_ratio = self.charge.nrh_ratio(factor, n_pr, temperature_c)
        sens = self.sensitivity[idx]
        drop = sens * (1.0 - min(module_ratio, 1.0))
        if factor < 1.0:
            # Rows with sensitive_extra_drop == 0 add an exact +0.0 here,
            # which IEEE-754 guarantees leaves `drop` unchanged.
            drop = drop + self.sensitive_extra_drop[idx] * (1.0 - factor) / 0.55
        if module_ratio >= 1.0:
            ratio = np.full(len(idx), module_ratio, dtype=np.float64)
        else:
            ratio = 1.0 - drop
        ratio = np.maximum(ratio, 0.02)
        minimum = self.spec.nominal_nrh
        base = self.base_nrh[idx]
        if minimum:
            finite = np.isfinite(base)
            if finite.any():
                floor = 0.98 * minimum * max(module_ratio, 0.02) / base
                ratio = np.where(finite, np.maximum(ratio, floor), ratio)
        return ratio

    def effective_nrh(self, factor: float = 1.0, n_pr: int = 1,
                      temperature_c: float = 80.0,
                      pattern: DataPattern | None = None,
                      idx: np.ndarray | None = None) -> np.ndarray:
        """Vector form of :meth:`RowPopulation.effective_nrh`."""
        if idx is None:
            idx = self._all_idx()
        ratio = self.nrh_ratio(factor, n_pr, temperature_c, idx)
        base = self.base_nrh[idx]
        if pattern is None:
            return base * ratio / 1.0
        worst = self.worst_effectiveness[idx]
        if (worst <= 0).any():
            raise ConfigError("non-positive pattern effectiveness")
        kappa = self.pattern_effectiveness[pattern][idx] / worst
        return base * ratio / kappa

    def hammer_flips(self, equivalent: np.ndarray, *, factor: float = 1.0,
                     n_pr: int = 1, temperature_c: float = 80.0,
                     pattern: DataPattern | None = None,
                     idx: np.ndarray | None = None) -> np.ndarray:
        """Vector form of :meth:`RowPopulation.hammer_flips`.

        ``equivalent`` is the per-aggressor double-sided dose
        (``dose.effective() / 2.0``) per row of ``idx``.
        """
        if idx is None:
            idx = self._all_idx()
        nrh = self.effective_nrh(factor, n_pr, temperature_c, pattern, idx)
        flips = np.zeros(len(idx), dtype=np.int64)
        active = np.isfinite(nrh) & (equivalent >= nrh)
        if active.any():
            sigma = self._sigma
            bias = self._ber_bias(factor)
            cells = self.cells
            for j in np.nonzero(active)[0]:
                z = (math.log(equivalent[j])
                     - math.log(_MEDIAN_CELL_MULTIPLIER * nrh[j]))
                z /= sigma
                z += bias
                count = int(cells * _phi(z))
                flips[j] = max(count, 1)
        return flips

    def retention_fails(self, *, factor: float = 1.0, n_pr: int = 1,
                        wait_ns: np.ndarray,
                        temperature_c: float = 80.0,
                        idx: np.ndarray | None = None) -> np.ndarray:
        """Which rows of ``idx`` lose retention after idling ``wait_ns``.

        The boolean predicate underneath :meth:`retention_flips` — pure
        vector arithmetic (no transcendentals), so the array kernel's
        bisection can test flips-vs-none without evaluating flip counts.
        ``retention_flips(...) > 0`` equals this exactly.
        """
        if idx is None:
            idx = self._all_idx()
        charge = self.charge
        factor = charge._clamp_factor(factor)
        strength = self.retention_strength[idx]
        margin = 1.0 if factor >= 1.0 else charge._retention_margin(factor, n_pr)
        capability = (charge._retention.weakest_row_retention_ns * strength
                      * margin / charge._temperature_retention_scale(temperature_c))
        wait = np.asarray(wait_ns, dtype=np.float64)
        if factor >= 1.0:
            return capability < wait
        limit = charge.npcr_limit(factor)
        if n_pr > limit:
            return strength <= charge._overrun_survivor_strength(n_pr, limit)
        capability = np.maximum(capability, 64 * MS * 1.02 * strength)
        return capability < wait

    def retention_flips(self, *, factor: float = 1.0, n_pr: int = 1,
                        wait_ns: np.ndarray,
                        temperature_c: float = 80.0,
                        idx: np.ndarray | None = None) -> np.ndarray:
        """Vector form of :meth:`RowPopulation.retention_flips`."""
        if idx is None:
            idx = self._all_idx()
        fails = self.retention_fails(factor=factor, n_pr=n_pr,
                                     wait_ns=wait_ns,
                                     temperature_c=temperature_c, idx=idx)
        wait = np.asarray(wait_ns, dtype=np.float64)
        flips = np.zeros(len(idx), dtype=np.int64)
        if fails.any():
            for j in np.nonzero(fails)[0]:
                severity = max(1.0, wait[j] / (64 * MS))
                flips[j] = max(1, int(1 + 2 * math.log(severity + 1.0)))
        return flips

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _ber_bias(self, factor: float) -> float:
        safe = self.charge.profile.safe_tras_factor_ber
        return self._ber_gain * max(0.0, safe - factor)
