"""DRAM organization: channel / rank / chip / bank / row / column geometry."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ModuleGeometry:
    """Physical organization of one DRAM module (rank granularity).

    The characterization platform addresses a single rank of a module; the
    system simulator composes several of these into channels.
    """

    ranks: int = 1
    banks_per_rank: int = 16
    rows_per_bank: int = 65_536
    columns_per_row: int = 1024
    device_width: int = 8  #: bits per chip per beat (x4 / x8 / x16)
    chips_per_rank: int = 8
    row_size_bytes: int = 8192  #: one DRAM row holds 8 KB of data (paper §10)

    def __post_init__(self) -> None:
        for name in ("ranks", "banks_per_rank", "rows_per_bank",
                     "columns_per_row", "device_width", "chips_per_rank",
                     "row_size_bytes"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.device_width not in (4, 8, 16):
            raise ConfigError(f"device_width must be 4, 8, or 16, got {self.device_width}")

    @property
    def total_banks(self) -> int:
        """Banks across all ranks."""
        return self.ranks * self.banks_per_rank

    @property
    def total_rows(self) -> int:
        """Rows across all banks and ranks."""
        return self.total_banks * self.rows_per_bank

    @property
    def cells_per_row(self) -> int:
        """Bits stored in one row across the rank (8 KB rows -> 65536 bits)."""
        return self.row_size_bytes * 8

    @property
    def capacity_bytes(self) -> int:
        """Total rank-level capacity in bytes."""
        return self.total_rows * self.row_size_bytes

    def valid_row(self, bank: int, row: int) -> bool:
        """Whether ``(bank, row)`` addresses a row within this geometry."""
        return 0 <= bank < self.total_banks and 0 <= row < self.rows_per_bank


def geometry_for_density(die_density_gbit: int, device_width: int) -> ModuleGeometry:
    """Geometry for a single-rank module built from dies of a given density.

    Used to instantiate the catalog's modules (4 / 8 / 16 Gb dies) and the
    Appendix-B density sweep (up to 512 Gb).  Rows per bank scale with
    density; banks are fixed at 16 as in DDR4.
    """
    if die_density_gbit <= 0:
        raise ConfigError("die density must be positive")
    # An 8 Gb x8 die has 16 banks x 64K rows x 8 Kb per row per chip.
    rows = 65_536 * die_density_gbit // 8
    if rows <= 0:
        raise ConfigError(f"density {die_density_gbit} Gb too small to model")
    return ModuleGeometry(
        ranks=1,
        banks_per_rank=16,
        rows_per_bank=rows,
        columns_per_row=1024,
        device_width=device_width,
        chips_per_rank=64 // device_width,
        row_size_bytes=8192,
    )
