"""Command-level behavioral model of one DDR4 DRAM module.

This is the device the software DRAM Bender plugs into.  It accepts the same
operations a real module would see on the command bus — row writes, timed
activate/precharge cycles, idle time — and tracks, per row: the stored data
pattern, the restoration state (latency factor and consecutive partial
restoration count), and the accumulated read-disturbance dose deposited by
neighbor activations.  Reading a row evaluates the accumulated state against
the row's cell population and returns the number of bitflips.

The model is intentionally *not* cycle accurate; it is physics accurate at
the granularity the paper's methodology observes (bitflip counts per row
after a test sequence).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.catalog import ModuleSpec, module_spec
from repro.dram.cell_array import RowPopulation
from repro.dram.charge import ChargeModel
from repro.dram.disturbance import BLAST_RADIUS, DataPattern, HammerDose, ZERO_DOSE
from repro.dram.geometry import ModuleGeometry, geometry_for_density
from repro.dram.kernels import BankTraits
from repro.dram.mapping import RowMapping, mapping_for_vendor
from repro.dram.timing import TimingParams, ddr4_timing
from repro.errors import DeviceError
from repro.rng import SeedTree

#: Half-Double activation thresholds (far aggressor dose needed, and the
#: minimum near-aggressor "seasoning" activations), in activations.
HALFDOUBLE_FAR_MIN = 25_000
HALFDOUBLE_NEAR_MIN = 8


@dataclass
class RowState:
    """Dynamic state of one DRAM row during a test."""

    pattern: DataPattern | None = None
    restore_factor: float = 1.0
    consecutive_partial: int = 0
    dose: HammerDose = field(default_factory=lambda: ZERO_DOSE)
    last_restore_ns: float = 0.0
    activations: int = 0


class DRAMModule:
    """One simulated DDR4 module (a stand-in for a physical DIMM)."""

    def __init__(self, spec: ModuleSpec | str, *,
                 geometry: ModuleGeometry | None = None,
                 seed: int = 2025, temperature_c: float = 80.0) -> None:
        if isinstance(spec, str):
            spec = module_spec(spec)
        self.spec = spec
        self.timing: TimingParams = ddr4_timing()
        self.geometry = geometry or geometry_for_density(
            spec.die_density_gbit, spec.device_width)
        self.charge = ChargeModel(spec)
        self.mapping: RowMapping = mapping_for_vendor(
            spec.manufacturer, self.geometry.rows_per_bank)
        self.temperature_c = temperature_c
        self.clock_ns: float = 0.0
        self.seed = seed
        self._seeds = SeedTree(seed).child("module", spec.module_id)
        self._rows: dict[tuple[int, int], RowPopulation] = {}
        self._states: dict[tuple[int, int], RowState] = {}
        self._trait_batches: dict[tuple[int, tuple[int, ...]], BankTraits] = {}

    # ------------------------------------------------------------------
    # row access
    # ------------------------------------------------------------------
    def row_population(self, bank: int, row: int) -> RowPopulation:
        """The (lazily instantiated) cell population of a row."""
        self._check_address(bank, row)
        key = (bank, row)
        if key not in self._rows:
            self._rows[key] = RowPopulation(
                self.spec, self.charge, bank, row, self._seeds)
        return self._rows[key]

    def bank_traits(self, bank: int, rows: tuple[int, ...]) -> BankTraits:
        """Struct-of-arrays traits for a batch of rows in one bank.

        The batch samples each row's traits from its own seed-tree stream
        (bit-identical to :meth:`row_population`), registers per-row
        populations as thin views over the batch, and is cached so repeated
        characterization sweeps over the same rows reuse it.
        """
        rows = tuple(rows)
        for row in rows:
            self._check_address(bank, row)
        key = (bank, rows)
        batch = self._trait_batches.get(key)
        if batch is not None:
            return batch
        existing = {row: self._rows[(bank, row)].traits
                    for row in rows if (bank, row) in self._rows}
        batch = BankTraits.sample(self.spec, self.charge, bank, rows,
                                  self._seeds, existing)
        for i, row in enumerate(batch.rows):
            if (bank, row) not in self._rows:
                self._rows[(bank, row)] = RowPopulation(
                    self.spec, self.charge, bank, row, self._seeds,
                    traits=batch.traits[i])
        self._trait_batches[key] = batch
        return batch

    def row_state(self, bank: int, row: int) -> RowState:
        """The dynamic state of a row (created fresh on first touch)."""
        self._check_address(bank, row)
        key = (bank, row)
        if key not in self._states:
            self._states[key] = RowState(last_restore_ns=self.clock_ns)
        return self._states[key]

    # ------------------------------------------------------------------
    # device operations
    # ------------------------------------------------------------------
    def write_row(self, bank: int, row: int, pattern: DataPattern) -> None:
        """Initialize a row with a data pattern (a full-timing write).

        Writing fully restores the row's charge, clears any accumulated
        disturbance, and resets the partial-restoration streak.
        """
        state = self.row_state(bank, row)
        state.pattern = pattern
        state.restore_factor = 1.0
        state.consecutive_partial = 0
        state.dose = ZERO_DOSE
        state.last_restore_ns = self.clock_ns
        state.activations += 1
        self._disturb_neighbors(bank, row, 1)
        timing = self.timing
        self.clock_ns += (timing.tRCD + self.geometry.columns_per_row
                          * timing.tCCD + timing.tWR + timing.tRP)

    def activate(self, bank: int, row: int, tras_ns: float | None = None) -> None:
        """One ACT + PRE cycle on a row with the given charge-restoration
        latency (defaults to nominal ``tRAS``).

        Activating a row restores its own charge (possibly partially) and
        deposits a unit of disturbance dose on its physical neighbors within
        the blast radius.
        """
        timing = self.timing
        if tras_ns is None:
            tras_ns = timing.tRAS
        if tras_ns <= 0:
            raise DeviceError(f"non-positive tRAS: {tras_ns}")
        state = self.row_state(bank, row)
        factor = min(tras_ns / timing.tRAS, 1.0)
        if factor >= 1.0:
            state.restore_factor = 1.0
            state.consecutive_partial = 0
        elif state.consecutive_partial and state.restore_factor == factor:
            state.consecutive_partial += 1
        else:
            state.restore_factor = factor
            state.consecutive_partial = 1
        state.dose = ZERO_DOSE  # restoration heals accumulated disturbance
        state.last_restore_ns = self.clock_ns
        state.activations += 1
        self._disturb_neighbors(bank, row, 1)
        self.clock_ns += tras_ns + timing.tRP

    def partial_restore(self, bank: int, row: int, tras_ns: float,
                        count: int) -> None:
        """``count`` consecutive ACT/PRE cycles on one row with the given
        charge-restoration latency (bulk form of :meth:`activate`)."""
        if count < 0:
            raise DeviceError("negative restoration count")
        if count == 0:
            return
        timing = self.timing
        factor = min(tras_ns / timing.tRAS, 1.0)
        state = self.row_state(bank, row)
        if factor >= 1.0:
            state.restore_factor = 1.0
            state.consecutive_partial = 0
        elif state.consecutive_partial and state.restore_factor == factor:
            state.consecutive_partial += count
        else:
            state.restore_factor = factor
            state.consecutive_partial = count
        state.dose = ZERO_DOSE
        state.last_restore_ns = self.clock_ns
        state.activations += count
        self._disturb_neighbors(bank, row, count)
        self.clock_ns += count * (tras_ns + timing.tRP)

    def hammer(self, bank: int, rows: tuple[int, ...], count: int) -> None:
        """Activate ``rows`` in an alternating (interleaved) manner ``count``
        times each, with full-speed nominal timing.

        Equivalent to ``count`` interleaved :meth:`activate` calls per row
        but evaluated in bulk, which keeps 100K-activation tests fast.
        """
        if count < 0:
            raise DeviceError("negative hammer count")
        if count == 0:
            return
        for row in rows:
            state = self.row_state(bank, row)
            state.restore_factor = 1.0
            state.consecutive_partial = 0
            state.dose = ZERO_DOSE
            state.last_restore_ns = self.clock_ns
            state.activations += count
            self._disturb_neighbors(bank, row, count)
        self.clock_ns += count * len(rows) * self.timing.tRC

    def elapse(self, duration_ns: float) -> None:
        """Let wall-clock time pass with the device idle."""
        if duration_ns < 0:
            raise DeviceError("cannot elapse negative time")
        self.clock_ns += duration_ns

    def read_row_bitflips(self, bank: int, row: int) -> int:
        """Read a row back and count cells that no longer match the written
        pattern.  This is Algorithm 1's ``check_for_bitflips``."""
        state = self.row_state(bank, row)
        if state.pattern is None:
            raise DeviceError(f"row ({bank}, {row}) read before initialization")
        wait_ns = max(0.0, self.clock_ns - state.last_restore_ns)
        return self.evaluate_read(
            bank, row, pattern=state.pattern, factor=state.restore_factor,
            n_pr=max(1, state.consecutive_partial), dose=state.dose,
            wait_ns=wait_ns)

    def evaluate_read(self, bank: int, row: int, *, pattern: DataPattern,
                      factor: float, n_pr: int, dose: HammerDose,
                      wait_ns: float) -> int:
        """Evaluate a read against explicit restoration/disturbance state.

        The single source of truth for turning accumulated state into a
        bitflip count: :meth:`read_row_bitflips` calls it with the tracked
        :class:`RowState`, and the compiled program path
        (:mod:`repro.bender.compile`) calls it with analytically folded
        state.  ``n_pr`` is the *effective* restoration count
        (``max(1, consecutive_partial)``).
        """
        population = self.row_population(bank, row)
        flips = population.hammer_flips(
            dose, factor=factor, n_pr=n_pr,
            temperature_c=self.temperature_c, pattern=pattern)
        flips += population.retention_flips(
            factor=factor, n_pr=n_pr, wait_ns=wait_ns,
            temperature_c=self.temperature_c)
        flips += self._halfdouble_flips(population, dose, factor, n_pr)
        return flips

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _halfdouble_flips(self, population: RowPopulation, dose: HammerDose,
                          factor: float, n_pr: int) -> int:
        if dose.far < HALFDOUBLE_FAR_MIN or dose.near < HALFDOUBLE_NEAR_MIN:
            return 0
        # Pure Half-Double regime only: heavy far dose, light near dose.
        if dose.near * 2.0 >= population.effective_nrh(factor, n_pr):
            return 0
        vulnerable = population.halfdouble_vulnerable(factor, n_pr)
        return 2 if vulnerable else 0

    def _disturb_neighbors(self, bank: int, row: int, count: int) -> None:
        for distance in range(1, BLAST_RADIUS + 1):
            for victim in self.mapping.neighbors(row, distance):
                key = (bank, victim)
                if key not in self._states:
                    continue  # untracked rows hold no test data
                state = self._states[key]
                state.dose = state.dose.add(distance, count)

    def _check_address(self, bank: int, row: int) -> None:
        if not self.geometry.valid_row(bank, row):
            raise DeviceError(
                f"address (bank={bank}, row={row}) outside geometry "
                f"{self.geometry.total_banks}x{self.geometry.rows_per_bank}")
