"""SEC-DED ECC substrate (Hamming(72, 64)) and its interaction with PaCRAM.

§10 notes that PaCRAM "can be combined with error correction mechanisms" to
absorb dynamic variability.  This module provides the substrate for that
study: a bit-exact Hamming(72, 64) single-error-correct / double-error-
detect code — the rank-level ECC used in servers — plus a word-level model
of how per-row bitflip counts translate into corrected, detected, and
silent errors.

The characterization methodology itself runs with ECC *disabled* (§4.1:
tested modules have neither rank-level nor on-die ECC), so this substrate
is used only by the ECC-interaction analyses and tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError

DATA_BITS = 64
PARITY_BITS = 8  # 7 Hamming bits + 1 overall parity (SEC-DED)
CODEWORD_BITS = DATA_BITS + PARITY_BITS

#: Positions 1..72 (1-indexed); powers of two hold parity bits.
_PARITY_POSITIONS = tuple(1 << i for i in range(7))  # 1,2,4,...,64
_DATA_POSITIONS = tuple(p for p in range(1, CODEWORD_BITS)
                        if p not in _PARITY_POSITIONS)


def encode(data: int) -> int:
    """Encode a 64-bit word into a 72-bit SEC-DED codeword."""
    if not 0 <= data < (1 << DATA_BITS):
        raise ConfigError("data word must fit in 64 bits")
    codeword = 0
    for index, position in enumerate(_DATA_POSITIONS):
        if (data >> index) & 1:
            codeword |= 1 << (position - 1)
    for parity_position in _PARITY_POSITIONS:
        parity = 0
        for position in range(1, CODEWORD_BITS):
            if position & parity_position and (codeword >> (position - 1)) & 1:
                parity ^= 1
        if parity:
            codeword |= 1 << (parity_position - 1)
    # Overall parity bit (position 72) makes the whole codeword even.
    overall = bin(codeword).count("1") & 1
    if overall:
        codeword |= 1 << (CODEWORD_BITS - 1)
    return codeword


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one codeword."""

    data: int
    corrected: bool  #: a single-bit error was corrected
    detected_uncorrectable: bool  #: a double-bit error was detected

    @property
    def clean(self) -> bool:
        return not self.corrected and not self.detected_uncorrectable


def decode(codeword: int) -> DecodeResult:
    """Decode a 72-bit codeword, correcting one flipped bit if present."""
    if not 0 <= codeword < (1 << CODEWORD_BITS):
        raise ConfigError("codeword must fit in 72 bits")
    syndrome = 0
    for parity_position in _PARITY_POSITIONS:
        parity = 0
        for position in range(1, CODEWORD_BITS):
            if position & parity_position and (codeword >> (position - 1)) & 1:
                parity ^= 1
        if parity:
            syndrome |= parity_position
    overall = bin(codeword).count("1") & 1
    corrected = False
    detected = False
    if syndrome and overall:
        # Single-bit error at `syndrome`: correct it.
        codeword ^= 1 << (syndrome - 1)
        corrected = True
    elif syndrome and not overall:
        detected = True  # double-bit error: uncorrectable
    elif not syndrome and overall:
        # The overall parity bit itself flipped: correct it.
        codeword ^= 1 << (CODEWORD_BITS - 1)
        corrected = True
    data = 0
    for index, position in enumerate(_DATA_POSITIONS):
        if (codeword >> (position - 1)) & 1:
            data |= 1 << index
    return DecodeResult(data=data, corrected=corrected,
                        detected_uncorrectable=detected)


# ---------------------------------------------------------------------------
# Row-level model: how raw bitflips translate through ECC
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class EccOutcome:
    """Expected ECC outcome for one row read."""

    corrected_words: float
    uncorrectable_words: float

    @property
    def survives(self) -> bool:
        """Whether the row reads back correctly (no uncorrectable words)."""
        return self.uncorrectable_words < 0.5


def row_outcome(bitflips: int, row_bits: int = 65_536) -> EccOutcome:
    """Expected per-row ECC outcome given ``bitflips`` random raw errors.

    Errors are assumed uniformly spread over the row's 64-bit words (the
    worst case for RowHammer is clustering, but retention failures — the
    errors PaCRAM's guardbands interact with — are spatially random).
    """
    if bitflips < 0:
        raise ConfigError("bitflip count must be non-negative")
    words = row_bits // DATA_BITS
    if bitflips == 0:
        return EccOutcome(0.0, 0.0)
    # Poisson approximation of flips per word.
    rate = bitflips / words
    p0 = math.exp(-rate)
    p1 = rate * p0
    p_multi = 1.0 - p0 - p1
    return EccOutcome(corrected_words=words * p1,
                      uncorrectable_words=words * p_multi)


def effective_failure_probability(raw_fail_fraction: float,
                                  flips_when_failing: int = 1,
                                  row_bits: int = 65_536) -> float:
    """Fraction of rows that still fail *after* SEC-DED correction.

    With the typical one-to-a-few weak cells per failing row, SEC-DED
    absorbs nearly all retention failures — the §10 argument for pairing
    PaCRAM with ECC to cover aging and variability.
    """
    if not 0.0 <= raw_fail_fraction <= 1.0:
        raise ConfigError("failure fraction must be in [0, 1]")
    outcome = row_outcome(flips_when_failing, row_bits)
    survive = 1.0 if outcome.survives else 0.0
    return raw_fail_fraction * (1.0 - survive)
