"""Manufacturer-level behavior profiles.

The paper tests chips from three major manufacturers, anonymized as Mfr. H
(SK Hynix), Mfr. M (Micron), and Mfr. S (Samsung).  Their chips react very
differently to reduced charge-restoration latency:

* **Mfr. H** — large ``tRAS`` guardband; ``N_RH`` unaffected down to
  ``0.36 tRAS`` (64 % reduction), retention failures appear at ``0.18 tRAS``.
  The only vendor whose chips exhibit Half-Double bitflips.
* **Mfr. M** — very large guardband; essentially flat down to ``0.18 tRAS``
  (82 % reduction), no retention failures in the tested range.
* **Mfr. S** — small guardband; ``N_RH`` degrades below ``0.64 tRAS``
  (36 % reduction), repeated partial restorations degrade further, and
  retention failures appear at ``0.27–0.18 tRAS``.

These numbers come straight from the paper's §5 takeaways; the per-module
curves live in :mod:`repro.dram.catalog`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigError


class Manufacturer(enum.Enum):
    """The three anonymized DRAM manufacturers in the study."""

    H = "H"  # SK Hynix
    M = "M"  # Micron
    S = "S"  # Samsung

    @classmethod
    def from_module_id(cls, module_id: str) -> "Manufacturer":
        """Infer the manufacturer from a module id like ``"H5"`` or ``"S13"``."""
        if not module_id:
            raise ConfigError("empty module id")
        letter = module_id[0].upper()
        try:
            return cls(letter)
        except ValueError:
            raise ConfigError(f"module id {module_id!r} does not start with H/M/S") from None


@dataclass(frozen=True)
class VendorProfile:
    """Manufacturer-wide calibration constants for the device model.

    Per-module ``N_RH`` ratio curves come from the catalog; this profile holds
    the behaviors the paper reports at vendor granularity.
    """

    manufacturer: Manufacturer
    #: Largest safe tRAS reduction with < 3 % N_RH impact (§5.1 red lines).
    safe_tras_factor_nrh: float
    #: Largest safe tRAS reduction with < 3 % BER impact (§5.2 red lines).
    safe_tras_factor_ber: float
    #: e-folding count of the repeated-partial-restoration decay of the
    #: restored charge level (Fig. 12).  ``None`` means no decay (flat).
    pcr_decay_restorations: float | None
    #: Relative N_RH change when temperature goes 50 -> 80 C (Takeaway 4).
    temperature_nrh_sensitivity: float
    #: Relative BER change when temperature goes 50 -> 80 C.
    temperature_ber_sensitivity: float
    #: Fraction of rows exhibiting Half-Double bitflips at nominal tRAS
    #: (Fig. 13); zero for vendors without Half-Double bitflips.
    halfdouble_row_fraction: float
    #: Multiplicative Half-Double prevalence vs tRAS factor, anchored at the
    #: tested latencies (Fig. 13 shape: dips at 0.36, spikes at 0.18).
    halfdouble_shape: dict[float, float] = field(default_factory=dict)
    #: Superlinearity exponent of BER growth as restoration weakens (§5.2).
    ber_growth_exponent: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 < self.safe_tras_factor_nrh <= 1.0:
            raise ConfigError("safe_tras_factor_nrh out of range")
        if not 0.0 < self.safe_tras_factor_ber <= 1.0:
            raise ConfigError("safe_tras_factor_ber out of range")
        if not 0.0 <= self.halfdouble_row_fraction <= 1.0:
            raise ConfigError("halfdouble_row_fraction out of range")


_PROFILES: dict[Manufacturer, VendorProfile] = {
    Manufacturer.H: VendorProfile(
        manufacturer=Manufacturer.H,
        safe_tras_factor_nrh=0.36,  # 64 % reduction (§5.1)
        safe_tras_factor_ber=0.64,  # 36 % reduction (§5.2)
        pcr_decay_restorations=None,  # flat up to 15K restorations (Fig. 12)
        temperature_nrh_sensitivity=0.0031,
        temperature_ber_sensitivity=0.01,
        halfdouble_row_fraction=0.12,
        halfdouble_shape={
            1.00: 1.00, 0.81: 0.92, 0.64: 0.80, 0.45: 0.70,
            0.36: 0.607, 0.27: 0.85, 0.18: 2.30,
        },
        ber_growth_exponent=2.2,
    ),
    Manufacturer.M: VendorProfile(
        manufacturer=Manufacturer.M,
        safe_tras_factor_nrh=0.18,  # 82 % reduction
        safe_tras_factor_ber=0.18,  # 82 % reduction
        pcr_decay_restorations=None,
        temperature_nrh_sensitivity=0.0020,
        temperature_ber_sensitivity=0.0002,
        halfdouble_row_fraction=0.0,
        halfdouble_shape={},
        ber_growth_exponent=1.2,
    ),
    Manufacturer.S: VendorProfile(
        manufacturer=Manufacturer.S,
        safe_tras_factor_nrh=0.64,  # 36 % reduction
        safe_tras_factor_ber=0.81,  # 19 % reduction
        pcr_decay_restorations=900.0,  # N_RH decays with repeated PCR (Fig. 12)
        temperature_nrh_sensitivity=0.0008,
        temperature_ber_sensitivity=0.09,
        halfdouble_row_fraction=0.0,  # no Half-Double bitflips observed (§6)
        halfdouble_shape={},
        ber_growth_exponent=2.6,
    ),
}


def vendor_profile(manufacturer: Manufacturer | str) -> VendorProfile:
    """Look up the calibration profile for a manufacturer."""
    if isinstance(manufacturer, str):
        manufacturer = Manufacturer(manufacturer.upper())
    return _PROFILES[manufacturer]
