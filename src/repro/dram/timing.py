"""DRAM timing parameters (JEDEC-style), in nanoseconds.

The characterization side of the paper runs on DDR4 modules with a nominal
charge-restoration latency ``tRAS = 33 ns``; the system-evaluation side
simulates a DDR5 memory system.  Both presets live here.

A *preventive refresh* is functionally equivalent to opening and closing a
row, so its latency is ``tRAS + tRP`` (§3 of the paper), and an ``ACT``
following an ``ACT`` to the same bank needs ``tRC = tRAS + tRP``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

#: The reduced charge-restoration latencies tested by the paper, as
#: multipliers of the nominal tRAS (§9.1): 33, 27, 21, 15, 12, 9, 6 ns.
TESTED_TRAS_FACTORS: tuple[float, ...] = (1.00, 0.81, 0.64, 0.45, 0.36, 0.27, 0.18)

#: The corresponding absolute latencies in nanoseconds for DDR4.
TESTED_TRAS_NS: tuple[float, ...] = (33.0, 27.0, 21.0, 15.0, 12.0, 9.0, 6.0)


@dataclass(frozen=True)
class TimingParams:
    """A minimal set of DRAM timing parameters, all in nanoseconds.

    Attributes mirror the JEDEC names used in the paper's background section.
    """

    standard: str
    tRAS: float  #: ACT -> PRE minimum (charge-restoration latency).
    tRP: float  #: PRE -> ACT minimum (precharge latency).
    tRCD: float  #: ACT -> RD/WR minimum.
    tCL: float  #: RD -> first data.
    tWR: float  #: last write data -> PRE.
    tRFC: float  #: REF -> next command (refresh latency).
    tREFI: float  #: periodic refresh command interval.
    tREFW: float  #: refresh window (every row refreshed once per window).
    tBL: float  #: data burst duration on the bus.
    tCCD: float  #: column-to-column minimum (different bank groups, tCCD_S).
    tRRD: float  #: ACT-to-ACT, different banks.
    tFAW: float  #: four-activate window.
    tCCD_L: float = 0.0  #: column-to-column, same bank group (0 = 2 x tCCD).

    def __post_init__(self) -> None:
        for name in ("tRAS", "tRP", "tRCD", "tCL", "tWR", "tRFC",
                     "tREFI", "tREFW", "tBL", "tCCD", "tRRD", "tFAW"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive, got {getattr(self, name)}")
        if self.tREFI >= self.tREFW:
            raise ConfigError("tREFI must be smaller than tREFW")
        if self.tCCD_L == 0.0:
            object.__setattr__(self, "tCCD_L", 2.0 * self.tCCD)
        if self.tCCD_L < self.tCCD:
            raise ConfigError("tCCD_L cannot be shorter than tCCD (tCCD_S)")

    @property
    def tRC(self) -> float:
        """Row-cycle time: minimum ACT-to-ACT delay to the same bank."""
        return self.tRAS + self.tRP

    @property
    def preventive_refresh_latency(self) -> float:
        """Latency of one preventive refresh (= open + close a row, §3)."""
        return self.tRAS + self.tRP

    def with_reduced_tras(self, factor: float) -> "TimingParams":
        """Return a copy whose ``tRAS`` is scaled by ``factor`` (0 < f <= 1).

        This models PaCRAM's partial charge restoration: only the
        charge-restoration component shrinks; ``tRP`` is unchanged (§8.3).
        """
        if not 0.0 < factor <= 1.0:
            raise ConfigError(f"tRAS factor must be in (0, 1], got {factor}")
        return replace(self, tRAS=self.tRAS * factor)


def ddr4_timing() -> TimingParams:
    """DDR4 timing used for characterization (JESD79-4C flavored).

    ``tRAS = 33 ns`` is the paper's nominal charge-restoration latency and
    ``tRP = 15 ns`` makes ``tRC = 48 ns``, which is the row-cycle time the
    paper's Table 4 ``t_FCRI`` values are computed with (e.g. module S6 at
    ``0.27 tRAS``: ``3.9K x 48 ns = 187 us``).
    """
    return TimingParams(
        standard="DDR4",
        tRAS=33.0,
        tRP=15.0,
        tRCD=14.0,
        tCL=14.0,
        tWR=15.0,
        tRFC=350.0,  # 8 Gb DDR4 (paper §2.1)
        tREFI=7800.0,  # 7.8 us
        tREFW=64_000_000.0,  # 64 ms
        tBL=3.33,
        tCCD=5.0,
        tRRD=4.9,
        tFAW=21.0,
    )


def ddr5_timing() -> TimingParams:
    """DDR5 timing used for system evaluation (JESD79-5 flavored)."""
    return TimingParams(
        standard="DDR5",
        tRAS=32.0,
        tRP=14.0,
        tRCD=14.0,
        tCL=14.0,
        tWR=15.0,
        tRFC=195.0,  # 8 Gb DDR5 (paper §2.1)
        tREFI=3900.0,  # 3.9 us
        tREFW=32_000_000.0,  # 32 ms
        tBL=2.66,
        tCCD=2.5,
        tRRD=2.5,
        tFAW=10.0,
    )
