"""Charge-restoration and data-retention physics for the device model.

The real chips' behavior under reduced charge-restoration latency is what the
paper measures; since we have no FPGA platform, this module *is* the chip:
it converts a module's published measurements (Appendix C) into continuous
physical response curves the device model evaluates.

Three coupled behaviors are modeled per module:

1. **RowHammer-threshold scaling** ``nrh_ratio(factor, n_pr)``: how much a
   victim row's ``N_RH`` shrinks when it was last restored with
   ``tRAS = factor x tRAS(nom)``, ``n_pr`` consecutive times.  Anchored to
   Table 3 (single restoration) and Table 4 (``N_PCR`` restorations).
2. **Consecutive-partial-restoration limit** ``npcr_limit(factor)``: the
   largest number of consecutive partial restorations after which the
   module's weakest row still retains data for a full refresh window
   (Table 4's ``N_PCR`` column; Fig. 11/12's retention bitflips).
3. **Retention-time scaling** (vendor level, Fig. 14): the fraction of rows
   whose weakest cell cannot retain data for a given time after partial
   restoration.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from repro.dram.catalog import MAX_TESTED_NPCR, ModuleSpec
from repro.dram.timing import TESTED_TRAS_FACTORS
from repro.dram.vendor import Manufacturer, VendorProfile, vendor_profile
from repro.errors import ConfigError
from repro.units import MS

#: Sentinel meaning "no consecutive-restoration limit observed" (the paper
#: tested up to 15K restorations without failures for these cells).
UNLIMITED_NPCR: int = 10_000_000

#: Memo-table bound; characterization grids hit a handful of distinct
#: (factor, n_pr, temperature) points, so this is never reached in practice.
_MEMO_LIMIT: int = 65_536


class Curve:
    """A piecewise-linear curve with presorted anchors.

    The calibration anchors are sorted once at construction (the dict form
    re-sorted on every call, which dominated the scalar hot path) and are
    also exposed as numpy arrays so analysis code can evaluate a whole
    vector of x-positions at once.  Scalar and vector evaluation use the
    same arithmetic — ``y0 + (x - x0) / (x1 - x0) * (y1 - y0)``, clamped
    outside the anchor range — so results are bit-identical to the original
    per-call interpolation.
    """

    __slots__ = ("xs", "ys", "xs_array", "ys_array")

    def __init__(self, anchors: dict[float, float]) -> None:
        if not anchors:
            raise ConfigError("empty anchor set")
        points = sorted(anchors.items())
        self.xs: tuple[float, ...] = tuple(x for x, _ in points)
        self.ys: tuple[float, ...] = tuple(y for _, y in points)
        self.xs_array = np.asarray(self.xs, dtype=np.float64)
        self.ys_array = np.asarray(self.ys, dtype=np.float64)

    def at(self, x: float) -> float:
        """Interpolated value at ``x`` (clamped to the anchor range)."""
        xs, ys = self.xs, self.ys
        if x <= xs[0]:
            return ys[0]
        if x >= xs[-1]:
            return ys[-1]
        # First index with xs[i] >= x; x lies in segment (i - 1, i].  When x
        # equals an interior anchor this picks the segment *ending* at x,
        # matching the original left-to-right segment scan exactly.
        i = bisect_left(xs, x)
        x0, x1 = xs[i - 1], xs[i]
        y0, y1 = ys[i - 1], ys[i]
        frac = (x - x0) / (x1 - x0)
        return y0 + frac * (y1 - y0)

    def at_many(self, x: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`at` over an array of x-positions."""
        x = np.asarray(x, dtype=np.float64)
        xs, ys = self.xs_array, self.ys_array
        i = np.clip(np.searchsorted(xs, x, side="left"), 1, len(xs) - 1)
        x0, x1 = xs[i - 1], xs[i]
        y0, y1 = ys[i - 1], ys[i]
        frac = (x - x0) / (x1 - x0)
        out = y0 + frac * (y1 - y0)
        return np.where(x <= xs[0], ys[0],
                        np.where(x >= xs[-1], ys[-1], out))


def interpolate_curve(anchors: dict[float, float], x: float) -> float:
    """Piecewise-linear interpolation through ``anchors`` (clamped outside).

    ``anchors`` maps x-positions to values; x-positions need not be sorted.
    Repeated evaluations of the same anchor set should build a
    :class:`Curve` once instead.

    >>> interpolate_curve({0.0: 0.0, 1.0: 10.0}, 0.25)
    2.5
    """
    return Curve(anchors).at(x)


@dataclass(frozen=True)
class RetentionParams:
    """Vendor-level retention calibration (drives Fig. 14).

    ``weakest_row_retention_ns`` is the module-minimum weakest-cell retention
    time at full charge and 80 C; ``tail_scale`` and ``tail_exponent`` shape
    the fraction of rows whose weakest cell falls below a given retention
    time (a sparse polynomial tail above the minimum).
    """

    weakest_row_retention_ns: float
    tail_scale: float
    tail_exponent: float
    #: Margin decay exponent per decade of consecutive partial restorations.
    pcr_margin_beta: float


_RETENTION: dict[Manufacturer, RetentionParams] = {
    # H: no failures at 256 ms even x10 at 0.27; failures appear at 0.18-ish.
    Manufacturer.H: RetentionParams(1_400 * MS, 2e-4, 2.0, 0.05),
    # M: flat; no failures at 512 ms even x10 at 0.27.
    Manufacturer.M: RetentionParams(2_600 * MS, 5e-5, 2.0, 0.0),
    # S: failures at 256 ms at 0.27, strongly dependent on restoration count.
    Manufacturer.S: RetentionParams(1_150 * MS, 4e-4, 2.4, 0.28),
}

#: Vendor-level restoration-margin anchors: the fraction of full retention
#: margin left after a single partial restoration at each tRAS factor.
#: Calibrated so the Fig. 14 observations hold (see tests).
_MARGIN_ANCHORS: dict[Manufacturer, dict[float, float]] = {
    Manufacturer.H: {1.00: 1.00, 0.81: 0.98, 0.64: 0.95, 0.45: 0.80,
                     0.36: 0.55, 0.27: 0.30, 0.18: 0.035},
    Manufacturer.M: {1.00: 1.00, 0.81: 1.00, 0.64: 0.99, 0.45: 0.97,
                     0.36: 0.94, 0.27: 0.90, 0.18: 0.80},
    Manufacturer.S: {1.00: 1.00, 0.81: 0.90, 0.64: 0.75, 0.45: 0.48,
                     0.36: 0.34, 0.27: 0.105, 0.18: 0.030},
}


class ChargeModel:
    """Per-module restoration physics, calibrated from the catalog."""

    def __init__(self, spec: ModuleSpec, profile: VendorProfile | None = None) -> None:
        self.spec = spec
        self.profile = profile or vendor_profile(spec.manufacturer)
        self._single_ratio_anchors = self._build_single_ratio_anchors()
        self._repeated_ratio_anchors = self._build_repeated_ratio_anchors()
        self._npcr_anchors = self._build_npcr_anchors()
        self._retention = _RETENTION[spec.manufacturer]
        self._margin_anchors = _MARGIN_ANCHORS[spec.manufacturer]
        # Presorted curves + small memo tables.  Characterization evaluates
        # these at a handful of (factor, n_pr, temperature) grid points but
        # millions of times; the memos make repeat lookups dict-speed while
        # staying bit-identical to a fresh interpolation.
        self._single_curve = Curve(self._single_ratio_anchors)
        self._repeated_curve = Curve(self._repeated_ratio_anchors)
        self._npcr_curve = Curve(self._npcr_anchors)
        self._margin_curve = Curve(self._margin_anchors)
        self._npcr_memo: dict[float, int] = {}
        self._ratio_memo: dict[tuple[float, int, float], float] = {}
        self._margin_memo: dict[tuple[float, int], float] = {}

    # ------------------------------------------------------------------
    # calibration-curve construction
    # ------------------------------------------------------------------
    def _build_single_ratio_anchors(self) -> dict[float, float]:
        """Table-3 normalized N_RH anchors, with retention-fail cells
        replaced by a downward extrapolation (the hammer threshold itself is
        not zero there; the *measurement* reads zero because of retention)."""
        spec = self.spec
        if not spec.vulnerable():
            return {f: 1.0 for f in TESTED_TRAS_FACTORS}
        anchors: dict[float, float] = {}
        nonzero = [(f, spec.nrh_ratio(f)) for f in TESTED_TRAS_FACTORS
                   if spec.lowest_nrh[f]]
        for factor in TESTED_TRAS_FACTORS:
            ratio = spec.nrh_ratio(factor)
            if ratio:
                anchors[factor] = ratio
                continue
            # Retention-fail cell: extrapolate the trend of the two smallest
            # non-failing factors, clamped well above zero.
            lo = sorted(nonzero)[:2]
            if len(lo) == 2:
                (f0, r0), (f1, r1) = lo
                slope = (r1 - r0) / (f1 - f0) if f1 != f0 else 0.0
                anchors[factor] = max(0.10, r0 + slope * (factor - f0))
            else:
                anchors[factor] = 0.5
        return anchors

    def _build_repeated_ratio_anchors(self) -> dict[float, float]:
        """Table-4 normalized N_RH anchors (after N_PCR restorations)."""
        spec = self.spec
        nominal = spec.nominal_nrh
        anchors: dict[float, float] = {1.00: 1.0}
        for factor, params in spec.pacram.items():
            if params is not None and nominal:
                anchors[factor] = params.nrh / nominal
            else:
                # N/A cell: repeated restoration is unsafe; the asymptotic
                # hammer threshold mirrors the single-restoration value.
                anchors[factor] = self._single_ratio_anchors[factor]
        return anchors

    def _build_npcr_anchors(self) -> dict[float, float]:
        """Consecutive-partial-restoration limits per factor (log10 space)."""
        spec = self.spec
        anchors: dict[float, float] = {1.00: math.log10(UNLIMITED_NPCR)}
        for factor, params in spec.pacram.items():
            if not spec.vulnerable():
                limit = UNLIMITED_NPCR
            elif params is None:
                limit = 0  # even one partial restoration breaks 64 ms retention
            elif params.npcr >= MAX_TESTED_NPCR:
                limit = UNLIMITED_NPCR  # no limit observed up to 15K
            else:
                limit = params.npcr
            anchors[factor] = math.log10(max(limit, 0.5))
        return anchors

    # ------------------------------------------------------------------
    # public physics
    # ------------------------------------------------------------------
    def npcr_limit(self, factor: float) -> int:
        """Max consecutive partial restorations before the module's weakest
        row loses data within a 64 ms refresh window."""
        factor = self._clamp_factor(factor)
        if factor >= 1.0 or not self.spec.vulnerable():
            return UNLIMITED_NPCR
        cached = self._npcr_memo.get(factor)
        if cached is not None:
            return cached
        log_limit = self._npcr_curve.at(factor)
        limit = min(int(10 ** log_limit), UNLIMITED_NPCR)
        if len(self._npcr_memo) < _MEMO_LIMIT:
            self._npcr_memo[factor] = limit
        return limit

    def nrh_ratio(self, factor: float, n_pr: int = 1, temperature_c: float = 80.0) -> float:
        """N_RH scaling vs nominal for a row restored ``n_pr`` consecutive
        times at ``factor x tRAS(nom)``.

        This is the module-level (weakest-row) curve; per-row jitter is
        applied by :mod:`repro.dram.cell_array`.  The value is *not* zeroed
        for retention failures — use :meth:`retention_fails` for that.
        """
        factor = self._clamp_factor(factor)
        if n_pr < 1:
            raise ConfigError(f"n_pr must be >= 1, got {n_pr}")
        key = (factor, n_pr, temperature_c)
        cached = self._ratio_memo.get(key)
        if cached is not None:
            return cached
        r1 = self._single_curve.at(factor)
        r_inf = self._repeated_curve.at(factor)
        limit = self.npcr_limit(factor)
        tau = max(1.0, min(limit, MAX_TESTED_NPCR) / 4.0)
        ratio = r_inf + (r1 - r_inf) * math.exp(-(n_pr - 1) / tau)
        ratio *= self._temperature_scale(temperature_c)
        ratio = max(ratio, 0.0)
        if len(self._ratio_memo) < _MEMO_LIMIT:
            self._ratio_memo[key] = ratio
        return ratio

    def retention_fails(self, factor: float, n_pr: int = 1,
                        wait_ns: float = 64 * MS,
                        temperature_c: float = 80.0,
                        row_strength: float = 1.0) -> bool:
        """Whether a row loses data after ``wait_ns`` of idle time following
        ``n_pr`` partial restorations at ``factor``.

        ``row_strength`` >= 1 scales the row's weakest-cell retention time
        relative to the module's weakest row (1.0 = weakest row).  Within the
        module's observed-safe envelope (``n_pr <= npcr_limit``) a refresh
        window of 64 ms is guaranteed to be retained, matching Table 4;
        beyond the limit the weakest rows start flipping (Fig. 11/12).
        """
        factor = self._clamp_factor(factor)
        capability = self._retention_capability(
            factor, n_pr, temperature_c, row_strength)
        if factor >= 1.0:
            return capability < wait_ns
        limit = self.npcr_limit(factor)
        if n_pr > limit:
            return row_strength <= self._overrun_survivor_strength(n_pr, limit)
        # Observed-safe envelope: the module retains a full 64 ms window.
        capability = max(capability, 64 * MS * 1.02 * row_strength)
        return capability < wait_ns

    def retention_fail_fraction(self, factor: float, n_pr: int,
                                wait_ns: float,
                                temperature_c: float = 80.0) -> float:
        """Fraction of rows with at least one retention bitflip (Fig. 14)."""
        factor = self._clamp_factor(factor)
        limit = self.npcr_limit(factor)
        if factor < 1.0 and n_pr > limit:
            # Beyond the safe envelope the failure front sweeps in quickly.
            overrun = n_pr / max(limit, 1)
            return min(1.0, 0.01 * overrun)
        params = self._retention
        base = self._retention_capability(factor, n_pr, temperature_c, 1.0)
        if factor < 1.0:
            base = max(base, 64 * MS * 1.02)
        if base <= 0:
            return 1.0
        excess = wait_ns / base
        if excess <= 1.0:
            return 0.0
        frac = params.tail_scale * (excess - 1.0) ** params.tail_exponent
        return min(frac, 1.0)

    def _retention_capability(self, factor: float, n_pr: int,
                              temperature_c: float, row_strength: float) -> float:
        """Longest idle time a row retains data, in nanoseconds."""
        margin = 1.0 if factor >= 1.0 else self._retention_margin(factor, n_pr)
        return (self._retention.weakest_row_retention_ns * row_strength
                * margin / self._temperature_retention_scale(temperature_c))

    def retention_margin(self, factor: float, n_pr: int = 1) -> float:
        """Public view of the vendor retention-margin curve (for analysis)."""
        return self._retention_margin(self._clamp_factor(factor), n_pr)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> list[str]:
        """Validate the calibrated physics; returns problem descriptions.

        An empty list means the model is self-consistent.  Checked:

        * retention-margin anchors (the charge proxy) lie in [0, 1] and are
          monotone nondecreasing in the tRAS factor — less restoration time
          can never leave *more* charge;
        * N_PCR limits are monotone nondecreasing in the tRAS factor;
        * N_RH ratio anchors are bounded (per-module measurements are noisy
          and may exceed 1.0 slightly, but not wildly);
        * retention parameters describe non-negative leakage.

        Per-module N_RH ratio anchors are deliberately *not* required to be
        monotone: the published Table 3/4 measurements carry experimental
        noise (e.g. ratios above 1.0 at mid factors), and the model
        reproduces them as-is.
        """
        problems: list[str] = []
        mid = self.spec.module_id

        def _monotone(anchors: dict[float, float], label: str) -> None:
            points = sorted(anchors.items())
            for (x0, y0), (x1, y1) in zip(points, points[1:]):
                if y1 < y0 - 1e-12:
                    problems.append(
                        f"{mid}: {label} not monotone: "
                        f"f({x1})={y1:.4g} < f({x0})={y0:.4g}")

        for factor, margin in self._margin_anchors.items():
            if not 0.0 <= margin <= 1.0:
                problems.append(
                    f"{mid}: margin anchor at factor {factor} out of "
                    f"[0, 1]: {margin:.4g}")
        _monotone(self._margin_anchors, "restoration-margin curve")
        _monotone(self._npcr_anchors, "N_PCR limit curve")
        for label, anchors in (("single", self._single_ratio_anchors),
                               ("repeated", self._repeated_ratio_anchors)):
            for factor, ratio in anchors.items():
                if not 0.0 <= ratio <= 1.5:
                    problems.append(
                        f"{mid}: {label}-restoration N_RH ratio at factor "
                        f"{factor} out of [0, 1.5]: {ratio:.4g}")
        params = self._retention
        if params.weakest_row_retention_ns <= 0:
            problems.append(f"{mid}: non-positive weakest-row retention")
        if params.tail_scale < 0 or params.tail_exponent <= 0:
            problems.append(f"{mid}: invalid retention tail shape")
        if params.pcr_margin_beta < 0:
            problems.append(f"{mid}: negative PCR margin decay (would mean "
                            "charge *grows* with repeated partials)")
        for factor in (0.18, 0.27, 0.36, 0.45, 0.64, 0.81, 1.0):
            for n_pr in (1, 8, 128):
                margin = self._retention_margin(factor, n_pr)
                if not 0.0 <= margin <= 1.0:
                    problems.append(
                        f"{mid}: retention margin({factor}, {n_pr}) out of "
                        f"[0, 1]: {margin:.4g}")
                ratio = self.nrh_ratio(factor, n_pr)
                if not 0.0 <= ratio <= 1.5:
                    problems.append(
                        f"{mid}: nrh_ratio({factor}, {n_pr}) out of "
                        f"[0, 1.5]: {ratio:.4g}")
            if self.npcr_limit(factor) < 0:
                problems.append(f"{mid}: negative N_PCR limit at {factor}")
        return problems

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _retention_margin(self, factor: float, n_pr: int) -> float:
        if factor >= 1.0:
            return 1.0
        key = (factor, n_pr)
        cached = self._margin_memo.get(key)
        if cached is not None:
            return cached
        margin = self._margin_curve.at(factor)
        beta = self._retention.pcr_margin_beta
        if beta > 0.0 and n_pr > 1:
            margin *= n_pr ** (-beta * (1.0 - factor))
        if len(self._margin_memo) < _MEMO_LIMIT:
            self._margin_memo[key] = margin
        return margin

    @staticmethod
    def _overrun_survivor_strength(n_pr: int, limit: int) -> float:
        """How far above the weakest row the retention-failure front has
        advanced once the consecutive-restoration limit is exceeded.

        At the boundary (overrun = 1) about the weakest ~10 % of rows fail;
        the front advances logarithmically with further overrun, matching
        Fig. 12's gradual spread of N_RH = 0 rows.
        """
        overrun = n_pr / max(limit, 1)
        return 1.12 + 0.25 * math.log10(max(overrun, 1.0))

    def _temperature_scale(self, temperature_c: float) -> float:
        """Tiny N_RH temperature dependence (Takeaway 4: < 0.31 %)."""
        sensitivity = self.profile.temperature_nrh_sensitivity
        return 1.0 - sensitivity * (temperature_c - 80.0) / 30.0

    @staticmethod
    def _temperature_retention_scale(temperature_c: float) -> float:
        """Leakage roughly doubles every 10 C (Arrhenius-like)."""
        return 2.0 ** ((temperature_c - 80.0) / 10.0)

    @staticmethod
    def _clamp_factor(factor: float) -> float:
        if factor <= 0.0:
            raise ConfigError(f"tRAS factor must be positive, got {factor}")
        return min(factor, 1.0)
