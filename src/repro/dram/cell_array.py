"""Per-row cell populations: where individual rows get their personality.

A physical DRAM row contains ~64K cells whose RowHammer flip thresholds and
retention times vary.  Sampling 64K values per row per test would be slow and
pointless; instead each row carries a small set of deterministic parameters
(drawn from the module's seed tree) that describe its cell-threshold
*distribution*, and bitflip counts are evaluated analytically from it.

Calibration targets (tests assert these):

* the minimum ``N_RH`` across a tested bank matches the module's catalog
  value within a few percent;
* the per-row ``N_RH``-reduction statistics match Fig. 8 (a small fraction of
  rows is much more sensitive to partial restoration, and the weakest rows
  are *not* the most sensitive ones);
* ``BER`` grows superlinearly as restoration weakens (Fig. 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dram.catalog import ModuleSpec
from repro.dram.charge import ChargeModel, interpolate_curve
from repro.dram.disturbance import (
    ALL_PATTERNS,
    PATTERN_BASE_EFFECTIVENESS,
    DataPattern,
    HammerDose,
)
from repro.dram.vendor import Manufacturer
from repro.errors import ConfigError
from repro.rng import SeedTree
from repro.units import MS

#: Median cell flip threshold relative to the row's weakest cell.
_MEDIAN_CELL_MULTIPLIER = 30.0
#: Lognormal sigma of cell thresholds within a row, per vendor.
_CELL_SIGMA = {Manufacturer.H: 0.85, Manufacturer.M: 0.95, Manufacturer.S: 0.75}
#: BER bias growth below the vendor's BER-safe latency (per unit factor).
_BER_BIAS_GAIN = {Manufacturer.H: 0.55, Manufacturer.M: 0.05, Manufacturer.S: 0.85}
#: Mean of the exponential "extra sensitivity" of rows to partial
#: restoration, per vendor (drives the Fig. 8 outlier fractions).
_SENSITIVITY_MEAN = {Manufacturer.H: 0.05, Manufacturer.M: 0.05, Manufacturer.S: 0.06}
#: Probability that a row belongs to the highly-sensitive subpopulation.
_SENSITIVE_ROW_PROB = 0.004


def _phi(z: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


@dataclass(frozen=True)
class RowTraits:
    """The deterministic per-row parameters sampled once per row."""

    base_nrh: float  #: N_RH at nominal tRAS, worst-case data pattern.
    sensitivity: float  #: scaling of the module's N_RH-reduction (>= ~1).
    sensitive_extra_drop: float  #: extra drop at full reduction (outliers).
    retention_strength: float  #: weakest-cell retention vs module minimum.
    pattern_effectiveness: dict[DataPattern, float]  #: per-row kappa.
    halfdouble_draw: float  #: uniform draw deciding Half-Double exposure.
    cells: int  #: cells in the row.
    worst_effectiveness: float  #: max of ``pattern_effectiveness`` (cached).


def draw_traits(rng, spec: ModuleSpec) -> RowTraits:
    """Sample one row's traits from its dedicated generator.

    This is the single definition of the draw sequence: the scalar path
    (:class:`RowPopulation`) and the bank-batch path
    (:class:`repro.dram.kernels.BankTraits`) both call it, which is what
    guarantees their traits are bit-identical.
    """
    min_nrh = spec.nominal_nrh
    if min_nrh is None:
        base_nrh = math.inf  # module exhibits no bitflips (H0)
    else:
        # Gamma-distributed offset above the module minimum; with a few
        # thousand tested rows the sample minimum lands within ~2 %.
        base_nrh = min_nrh * (1.0 + rng.gamma(2.0, 0.35))
    mean = _SENSITIVITY_MEAN[spec.manufacturer]
    sensitivity = 1.0 + rng.exponential(mean)
    if min_nrh is not None and math.isfinite(base_nrh):
        # Fig. 8: stronger rows tend to be somewhat more sensitive.
        sensitivity += 0.02 * math.log(base_nrh / min_nrh + 1.0) * rng.random()
    sensitive_extra = 0.0
    if rng.random() < _SENSITIVE_ROW_PROB:
        sensitive_extra = rng.uniform(0.25, 0.5)
    retention_strength = 1.0 + rng.gamma(1.2, 0.6)
    effectiveness = {
        pattern: base * (1.0 + 0.04 * rng.standard_normal())
        for pattern, base in PATTERN_BASE_EFFECTIVENESS.items()
    }
    return RowTraits(
        base_nrh=base_nrh,
        sensitivity=sensitivity,
        sensitive_extra_drop=sensitive_extra,
        retention_strength=retention_strength,
        pattern_effectiveness=effectiveness,
        halfdouble_draw=rng.random(),
        cells=spec.row_bits(),
        worst_effectiveness=max(effectiveness.values()),
    )


class RowPopulation:
    """Cell-level behavior of one physical DRAM row."""

    def __init__(self, spec: ModuleSpec, charge: ChargeModel,
                 bank: int, row: int, seeds: SeedTree,
                 traits: RowTraits | None = None) -> None:
        self.spec = spec
        self.charge = charge
        self.bank = bank
        self.row = row
        self.traits = (traits if traits is not None
                       else self._sample_traits(seeds))
        self._sigma = _CELL_SIGMA[spec.manufacturer]
        self._ber_gain = _BER_BIAS_GAIN[spec.manufacturer]

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _sample_traits(self, seeds: SeedTree) -> RowTraits:
        rng = seeds.generator("row", self.bank, self.row)
        return draw_traits(rng, self.spec)

    # ------------------------------------------------------------------
    # derived physics
    # ------------------------------------------------------------------
    def worst_case_pattern(self) -> DataPattern:
        """The data pattern that flips the most cells in this row."""
        eff = self.traits.pattern_effectiveness
        return max(ALL_PATTERNS, key=lambda p: eff[p])

    def nrh_ratio(self, factor: float, n_pr: int = 1,
                  temperature_c: float = 80.0) -> float:
        """This row's N_RH scaling vs its own nominal value.

        Sensitive-row outliers (Fig. 8) can drop far more than the module
        curve, but never *below* the module's weakest row at the same
        latency — in the paper's data, the per-module minimum (Table 3) and
        the outlier population (Fig. 8) coexist, so the outliers start from
        high-N_RH rows and land above the minimum.
        """
        module_ratio = self.charge.nrh_ratio(factor, n_pr, temperature_c)
        drop = self.traits.sensitivity * (1.0 - min(module_ratio, 1.0))
        if self.traits.sensitive_extra_drop and factor < 1.0:
            drop += self.traits.sensitive_extra_drop * (1.0 - factor) / 0.55
        ratio = module_ratio if module_ratio >= 1.0 else 1.0 - drop
        ratio = max(ratio, 0.02)
        minimum = self.spec.nominal_nrh
        if minimum and math.isfinite(self.traits.base_nrh):
            floor = 0.98 * minimum * max(module_ratio, 0.02) / self.traits.base_nrh
            ratio = max(ratio, floor)
        return ratio

    def effective_nrh(self, factor: float = 1.0, n_pr: int = 1,
                      temperature_c: float = 80.0,
                      pattern: DataPattern | None = None) -> float:
        """Minimum per-aggressor double-sided hammer count that flips at
        least one cell, under the given restoration state."""
        base = self.traits.base_nrh
        if not math.isfinite(base):
            return math.inf
        kappa = self._relative_effectiveness(pattern)
        return base * self.nrh_ratio(factor, n_pr, temperature_c) / kappa

    def hammer_flips(self, dose: HammerDose, *, factor: float = 1.0,
                     n_pr: int = 1, temperature_c: float = 80.0,
                     pattern: DataPattern | None = None) -> int:
        """Number of cells flipped by an accumulated hammering dose."""
        nrh = self.effective_nrh(factor, n_pr, temperature_c, pattern)
        if not math.isfinite(nrh):
            return 0
        equivalent = dose.effective() / 2.0  # per-aggressor double-sided units
        if equivalent < nrh:
            return 0
        z = (math.log(equivalent) - math.log(_MEDIAN_CELL_MULTIPLIER * nrh))
        z /= self._sigma
        z += self._ber_bias(factor)
        flips = int(self.traits.cells * _phi(z))
        return max(flips, 1)

    def retention_flips(self, *, factor: float = 1.0, n_pr: int = 1,
                        wait_ns: float = 64 * MS,
                        temperature_c: float = 80.0) -> int:
        """Cells flipped purely by charge leakage (no hammering)."""
        fails = self.charge.retention_fails(
            factor, n_pr, wait_ns=wait_ns, temperature_c=temperature_c,
            row_strength=self.traits.retention_strength)
        if not fails:
            return 0
        # Retention failures affect a handful of weak cells per row.
        severity = max(1.0, wait_ns / (64 * MS))
        return max(1, int(1 + 2 * math.log(severity + 1.0)))

    def halfdouble_vulnerable(self, factor: float, n_pr: int = 1) -> bool:
        """Whether the Half-Double pattern flips cells in this row (§6)."""
        profile = self.charge.profile
        if profile.halfdouble_row_fraction <= 0.0:
            return False
        shape = self.charge.profile.halfdouble_shape
        scale = interpolate_curve(shape, min(factor, 1.0)) if shape else 1.0
        # Weak dependence on restoration count (~1.5 % per Fig. 13 obs. 4).
        scale *= 1.0 + 0.003 * math.log(max(n_pr, 1))
        prob = min(1.0, profile.halfdouble_row_fraction * scale)
        return self.traits.halfdouble_draw < prob

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _relative_effectiveness(self, pattern: DataPattern | None) -> float:
        if pattern is None:
            return 1.0
        worst = self.traits.worst_effectiveness
        if worst <= 0:
            raise ConfigError("non-positive pattern effectiveness")
        return self.traits.pattern_effectiveness[pattern] / worst

    def _ber_bias(self, factor: float) -> float:
        """Extra BER growth below the vendor's BER-safe latency (Fig. 9)."""
        safe = self.charge.profile.safe_tras_factor_ber
        return self._ber_gain * max(0.0, safe - factor)
