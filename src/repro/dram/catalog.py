"""The tested-module catalog: the paper's Appendix C, as data.

The paper characterizes 388 DDR4 chips on 30 modules (Table 1) and reports,
for every module, the lowest observed RowHammer threshold ``N_RH`` at each
tested charge-restoration latency (Table 3) and the PaCRAM configuration
parameters — ``N_RH`` under repeated partial restoration, the maximum safe
number of consecutive partial restorations ``N_PCR``, and the full-charge-
restoration interval ``t_FCRI`` (Table 4).

This module transcribes those tables.  They serve two purposes:

1. **Calibration** — the behavioral device model uses a module's normalized
   ``N_RH``-vs-``tRAS`` curve as the ground-truth restoration physics, so the
   characterization pipeline (Algorithm 1) *measures back* the published
   values.
2. **Validation** — tests cross-check the §8.3 ``t_FCRI`` formula against the
   printed values.

All ``N_RH`` values are aggressor-row activation counts; ``0`` means the
module exhibits bitflips **without hammering** at that latency (data-retention
failure, the red cells of Table 3); ``None`` means no bitflips were observed
at all (module H0) or the configuration is not applicable (Table 4 N/A
cells).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.dram.timing import TESTED_TRAS_FACTORS
from repro.dram.vendor import Manufacturer
from repro.errors import ConfigError, UnknownModuleError
from repro.units import MS, S, US

#: Table-4 columns: the reduced latencies (nominal 1.00 is not a PaCRAM mode).
PACRAM_TRAS_FACTORS: tuple[float, ...] = (0.81, 0.64, 0.45, 0.36, 0.27, 0.18)

#: The largest number of consecutive partial restorations the paper tested.
MAX_TESTED_NPCR: int = 15_000


@dataclass(frozen=True)
class PaCRAMParams:
    """One Table-4 cell: PaCRAM parameters at one reduced latency.

    ``nrh`` is the module's lowest ``N_RH`` when victim rows receive up to
    ``npcr`` consecutive partial restorations; ``tfcri_ns`` is the published
    full-charge-restoration interval.
    """

    nrh: int
    npcr: int
    tfcri_ns: float


@dataclass(frozen=True)
class ModuleSpec:
    """Everything the paper publishes about one tested module."""

    module_id: str
    part_number: str
    form_factor: str  #: "U-DIMM" | "R-DIMM" | "SO-DIMM"
    die_density_gbit: int
    die_revision: str
    device_width: int
    date_code: str  #: WWYY, or "N/A"
    num_chips: int
    #: Table 3: lowest observed N_RH per tRAS factor.  0 = retention bitflips,
    #: None = no bitflips observed.
    lowest_nrh: dict[float, int | None]
    #: Table 4: PaCRAM parameters per reduced tRAS factor (None = N/A cell).
    pacram: dict[float, PaCRAMParams | None] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = [f for f in TESTED_TRAS_FACTORS if f not in self.lowest_nrh]
        if missing:
            raise ConfigError(f"{self.module_id}: missing Table-3 factors {missing}")
        missing = [f for f in PACRAM_TRAS_FACTORS if f not in self.pacram]
        if missing:
            raise ConfigError(f"{self.module_id}: missing Table-4 factors {missing}")

    @property
    def manufacturer(self) -> Manufacturer:
        """The module's manufacturer, inferred from its id."""
        return Manufacturer.from_module_id(self.module_id)

    @property
    def nominal_nrh(self) -> int | None:
        """Lowest N_RH at the nominal latency (None if no bitflips)."""
        return self.lowest_nrh[1.00]

    def nrh_ratio(self, factor: float) -> float | None:
        """Normalized lowest N_RH at ``factor`` (Table 3 parenthesized value).

        Returns ``None`` when the module shows no bitflips at all; ``0.0``
        when the latency causes retention failures.
        """
        nominal = self.nominal_nrh
        if nominal is None:
            return None
        value = self.lowest_nrh.get(factor)
        if value is None:
            raise ConfigError(f"{self.module_id}: untested factor {factor}")
        return value / nominal

    def vulnerable(self) -> bool:
        """Whether the module exhibits any RowHammer bitflips."""
        return self.nominal_nrh is not None

    @staticmethod
    def row_bits() -> int:
        """Cells (bits) per DRAM row: rows hold 8 KB of data (§10)."""
        return 8192 * 8


def _nrh(*values: int | None) -> dict[float, int | None]:
    """Build a Table-3 row from seven values ordered by TESTED_TRAS_FACTORS."""
    if len(values) != len(TESTED_TRAS_FACTORS):
        raise ConfigError(f"expected {len(TESTED_TRAS_FACTORS)} values, got {len(values)}")
    return dict(zip(TESTED_TRAS_FACTORS, values))


def _pacram(*cells: tuple[int, int, float] | None) -> dict[float, PaCRAMParams | None]:
    """Build a Table-4 row from six (nrh, npcr, tfcri_ns) cells or None."""
    if len(cells) != len(PACRAM_TRAS_FACTORS):
        raise ConfigError(f"expected {len(PACRAM_TRAS_FACTORS)} cells, got {len(cells)}")
    out: dict[float, PaCRAMParams | None] = {}
    for factor, cell in zip(PACRAM_TRAS_FACTORS, cells):
        out[factor] = None if cell is None else PaCRAMParams(*cell)
    return out


_NOFLIP = _nrh(None, None, None, None, None, None, None)
_NA6 = _pacram(None, None, None, None, None, None)

# Table 1 + Table 3 + Table 4, transcribed.  N_RH values are in activations
# ("56.2K" -> 56_200); t_FCRI values use the paper's printed magnitudes.
_CATALOG: dict[str, ModuleSpec] = {}


def _add(spec: ModuleSpec) -> None:
    if spec.module_id in _CATALOG:
        raise ConfigError(f"duplicate module id {spec.module_id}")
    _CATALOG[spec.module_id] = spec


# ----------------------------- Mfr. H (SK Hynix) -----------------------------
_add(ModuleSpec(
    "H0", "H5AN4G8NMFR-TFC", "SO-DIMM", 4, "M", 8, "N/A", 8,
    lowest_nrh=_NOFLIP, pacram=_NA6,
))
_add(ModuleSpec(
    "H1", "Unknown", "SO-DIMM", 4, "X", 8, "N/A", 8,
    lowest_nrh=_nrh(56_200, 53_100, 55_500, 56_200, 55_500, 45_300, 44_100),
    pacram=_pacram(
        (50_000, 15_000, 36.0 * S), (49_600, 15_000, 35.7 * S),
        (50_000, 15_000, 36.0 * S), (50_000, 15_000, 36.0 * S),
        (47_700, 15_000, 34.3 * S), (44_100, 1, 2 * MS),
    ),
))
_add(ModuleSpec(
    "H2", "H5AN4G8NAFR-TFC", "SO-DIMM", 4, "A", 8, "N/A", 8,
    lowest_nrh=_nrh(39_100, 40_600, 40_600, 39_100, 39_100, 39_100, 37_900),
    pacram=_pacram(
        (34_800, 15_000, 25.0 * S), (34_800, 15_000, 25.0 * S),
        (34_800, 15_000, 25.0 * S), (34_800, 15_000, 25.0 * S),
        (34_400, 15_000, 24.8 * S), (37_900, 1, 1 * MS),
    ),
))
_add(ModuleSpec(
    "H3", "H5AN8G4NMFR-UKC", "R-DIMM", 8, "M", 4, "N/A", 32,
    lowest_nrh=_nrh(59_800, 59_800, 59_800, 59_400, 56_200, 56_200, 55_900),
    pacram=_pacram(
        (56_200, 15_000, 40.5 * S), (57_000, 15_000, 41.1 * S),
        (56_200, 15_000, 40.5 * S), (56_200, 15_000, 40.5 * S),
        (56_200, 15_000, 40.5 * S), (55_900, 1, 2 * MS),
    ),
))
_add(ModuleSpec(
    "H4", "H5AN8G8NDJR-XNC", "R-DIMM", 8, "D", 8, "2048", 16,
    lowest_nrh=_nrh(11_700, 11_700, 11_700, 11_700, 11_700, 10_200, 0),
    pacram=_pacram(
        (10_900, 15_000, 7.9 * S), (10_900, 15_000, 7.9 * S),
        (10_900, 15_000, 7.9 * S), (10_900, 15_000, 7.9 * S),
        (10_200, 1, 489 * US), None,
    ),
))
_add(ModuleSpec(
    "H5", "H5AN8G8NDJR-XNC", "R-DIMM", 8, "D", 8, "2048", 16,
    lowest_nrh=_nrh(10_200, 10_900, 10_200, 10_900, 10_200, 10_200, 0),
    pacram=_pacram(
        (10_200, 15_000, 7.3 * S), (10_200, 15_000, 7.3 * S),
        (10_200, 15_000, 7.3 * S), (10_200, 15_000, 7.3 * S),
        (9_400, 300, 135 * MS), None,
    ),
))
_add(ModuleSpec(
    "H6", "H5AN8G4NAFR-VKC", "R-DIMM", 8, "A", 4, "N/A", 32,
    lowest_nrh=_nrh(23_800, 23_800, 23_800, 23_400, 22_300, 22_300, 18_000),
    pacram=_pacram(
        (22_700, 15_000, 16.3 * S), (22_700, 15_000, 16.3 * S),
        (22_700, 15_000, 16.3 * S), (22_300, 15_000, 16.0 * S),
        (22_300, 15_000, 16.0 * S), (18_000, 1, 864 * US),
    ),
))
_add(ModuleSpec(
    "H7", "H5ANAG8NCJR-XNC", "U-DIMM", 16, "C", 8, "2136", 16,
    lowest_nrh=_nrh(8_600, 8_600, 7_800, 8_600, 8_600, 7_000, 0),
    pacram=_pacram(
        (8_600, 15_000, 6.2 * S), (7_800, 15_000, 5.6 * S),
        (7_800, 15_000, 5.6 * S), (7_800, 15_000, 5.6 * S),
        (6_200, 15_000, 4.5 * S), None,
    ),
))
_add(ModuleSpec(
    "H8", "H5ANAG8NCJR-XNC", "U-DIMM", 16, "C", 8, "2136", 16,
    lowest_nrh=_nrh(10_500, 10_500, 10_200, 8_600, 8_600, 7_800, 0),
    pacram=_pacram(
        (7_800, 15_000, 5.6 * S), (7_800, 15_000, 5.6 * S),
        (7_800, 15_000, 5.6 * S), (7_800, 15_000, 5.6 * S),
        (6_200, 15_000, 4.5 * S), None,
    ),
))

# ------------------------------ Mfr. M (Micron) ------------------------------
_add(ModuleSpec(
    "M0", "MT40A2G4WE-083E:B", "R-DIMM", 8, "B", 4, "N/A", 16,
    lowest_nrh=_nrh(43_800, 44_500, 44_500, 44_500, 44_500, 44_500, 44_500),
    pacram=_pacram(*[(43_800, 15_000, 31.5 * S)] * 6),
))
_add(ModuleSpec(
    "M1", "MT40A2G4WE-083E:B", "R-DIMM", 8, "B", 4, "N/A", 16,
    lowest_nrh=_nrh(37_100, 37_900, 37_900, 37_900, 37_900, 37_900, 37_900),
    pacram=_pacram(
        (43_400, 15_000, 31.2 * S), (40_600, 15_000, 29.3 * S),
        (39_500, 15_000, 28.4 * S), (39_100, 15_000, 28.1 * S),
        (40_600, 15_000, 29.3 * S), (40_600, 15_000, 29.3 * S),
    ),
))
_add(ModuleSpec(
    "M2", "MT40A2G4WE-083E:B", "R-DIMM", 8, "B", 4, "N/A", 16,
    lowest_nrh=_nrh(42_600, 43_800, 44_100, 44_100, 44_100, 44_100, 44_100),
    pacram=_pacram(*[(37_100, 15_000, 26.7 * S)] * 6),
))
_add(ModuleSpec(
    "M3", "MT40A2G8SA-062E:F", "SO-DIMM", 16, "F", 8, "2237", 16,
    lowest_nrh=_nrh(6_200, 6_200, 6_200, 6_200, 6_200, 6_200, 6_200),
    pacram=_pacram(*[(5_500, 15_000, 3.9 * S)] * 6),
))
_add(ModuleSpec(
    "M4", "MT40A1G16KD-062E:E", "SO-DIMM", 16, "E", 16, "2046", 4,
    lowest_nrh=_nrh(5_100, 5_100, 5_100, 5_100, 5_100, 5_100, 5_100),
    pacram=_pacram(
        (5_900, 15_000, 4.2 * S), (5_500, 15_000, 3.9 * S),
        (5_500, 15_000, 3.9 * S), (5_500, 15_000, 3.9 * S),
        (5_500, 15_000, 3.9 * S), (5_500, 15_000, 3.9 * S),
    ),
))
_add(ModuleSpec(
    "M5", "MT40A4G4JC-062E:E", "R-DIMM", 16, "E", 4, "2014", 32,
    lowest_nrh=_nrh(5_900, 5_900, 5_900, 5_900, 5_900, 5_900, 5_500),
    pacram=_pacram(
        (6_600, 15_000, 4.8 * S), (6_200, 15_000, 4.5 * S),
        (6_200, 15_000, 4.5 * S), (6_200, 15_000, 4.5 * S),
        (6_200, 15_000, 4.5 * S), (6_200, 15_000, 4.5 * S),
    ),
))
_add(ModuleSpec(
    "M6", "MT40A1G16RC-062E:B", "SO-DIMM", 16, "B", 16, "2126", 4,
    lowest_nrh=_nrh(13_300, 13_300, 13_300, 13_300, 13_300, 13_300, 13_300),
    pacram=_pacram(*[(13_300, 15_000, 9.6 * S)] * 6),
))

# ----------------------------- Mfr. S (Samsung) ------------------------------
_add(ModuleSpec(
    "S0", "K4A4G085WF-BCTD", "U-DIMM", 4, "F", 8, "N/A", 16,
    lowest_nrh=_nrh(12_500, 11_700, 12_500, 11_700, 10_200, 6_200, 0),
    pacram=_pacram(
        (11_700, 15_000, 8.4 * S), (11_700, 15_000, 8.4 * S),
        (10_900, 15_000, 7.9 * S), (9_400, 10_000, 4.5 * S),
        (6_200, 1, 300 * US), None,
    ),
))
_add(ModuleSpec(
    "S1", "K4A4G085WF-BCTD", "U-DIMM", 4, "F", 8, "N/A", 16,
    lowest_nrh=_nrh(14_100, 14_100, 12_900, 10_900, 9_800, 7_000, 0),
    pacram=_pacram(
        (14_100, 15_000, 10.1 * S), (13_300, 15_000, 9.6 * S),
        (12_100, 15_000, 8.7 * S), (9_800, 15_000, 7.0 * S),
        (5_100, 2, 487 * US), None,
    ),
))
_add(ModuleSpec(
    "S2", "K4A4G085WE-BCPB", "SO-DIMM", 4, "E", 8, "1708", 8,
    lowest_nrh=_nrh(25_800, 26_200, 25_000, 24_200, 22_700, 19_900, 5_100),
    pacram=_pacram(
        (23_800, 15_000, 17.2 * S), (23_400, 15_000, 16.9 * S),
        (22_300, 15_000, 16.0 * S), (20_700, 15_000, 14.9 * S),
        (19_900, 1, 955 * US), (5_100, 1, 244 * US),
    ),
))
_add(ModuleSpec(
    "S3", "K4A4G085WE-BCPB", "SO-DIMM", 4, "E", 8, "1708", 8,
    lowest_nrh=_nrh(21_900, 21_900, 21_900, 20_300, 19_500, 17_600, 0),
    pacram=_pacram(
        (19_900, 15_000, 14.3 * S), (19_500, 15_000, 14.1 * S),
        (18_800, 15_000, 13.5 * S), (17_200, 15_000, 12.4 * S),
        (17_600, 1, 844 * US), None,
    ),
))
_add(ModuleSpec(
    "S4", "K4A4G085WE-BCPB", "SO-DIMM", 4, "E", 8, "1708", 8,
    lowest_nrh=_nrh(25_000, 25_000, 25_000, 24_600, 21_500, 0, 0),
    pacram=_pacram(
        (20_300, 15_000, 14.6 * S), (20_300, 15_000, 14.6 * S),
        (19_100, 15_000, 13.8 * S), (18_000, 15_000, 12.9 * S),
        None, None,
    ),
))
_add(ModuleSpec(
    "S5", "Unknown", "SO-DIMM", 4, "C", 16, "N/A", 4,
    lowest_nrh=_nrh(11_300, 10_200, 10_500, 10_200, 9_800, 9_000, 0),
    pacram=_pacram(
        (12_100, 15_000, 8.7 * S), (12_100, 15_000, 8.7 * S),
        (11_700, 15_000, 8.4 * S), (9_400, 15_000, 6.8 * S),
        (5_100, 2, 487 * US), None,
    ),
))
_add(ModuleSpec(
    "S6", "K4A8G085WD-BCTD", "U-DIMM", 8, "D", 8, "2110", 8,
    lowest_nrh=_nrh(7_800, 7_000, 7_000, 7_000, 6_200, 3_900, 0),
    pacram=_pacram(
        (7_000, 15_000, 5.1 * S), (7_000, 15_000, 5.1 * S),
        (6_200, 15_000, 4.5 * S), (3_900, 2_000, 374 * MS),
        (3_900, 1, 187 * US), None,
    ),
))
_add(ModuleSpec(
    "S7", "K4A8G085WD-BCTD", "U-DIMM", 8, "D", 8, "2110", 8,
    lowest_nrh=_nrh(7_800, 7_800, 7_000, 6_200, 5_500, 3_900, 0),
    pacram=_pacram(
        (7_800, 15_000, 5.6 * S), (7_000, 15_000, 5.1 * S),
        (5_500, 15_000, 3.9 * S), (5_500, 1, 262 * US),
        (3_900, 1, 187 * US), None,
    ),
))
_add(ModuleSpec(
    "S8", "K4A8G085WD-BCTD", "U-DIMM", 8, "D", 8, "2110", 8,
    lowest_nrh=_nrh(7_800, 6_600, 7_800, 6_200, 5_100, 3_900, 0),
    pacram=_pacram(
        (7_800, 15_000, 5.6 * S), (7_800, 15_000, 5.6 * S),
        (5_900, 15_000, 4.2 * S), (3_900, 15_000, 2.8 * S),
        (3_900, 1, 187 * US), None,
    ),
))
_add(ModuleSpec(
    "S9", "K4A8G085WD-BCTD", "U-DIMM", 8, "D", 8, "2110", 8,
    lowest_nrh=_nrh(7_800, 7_800, 7_800, 6_600, 6_200, 3_900, 0),
    pacram=_pacram(
        (8_600, 15_000, 6.2 * S), (8_600, 15_000, 6.2 * S),
        (6_600, 15_000, 4.8 * S), (4_700, 15_000, 3.4 * S),
        (3_100, 2, 300 * US), None,
    ),
))
_add(ModuleSpec(
    "S10", "K4A8G085WC-BCRC", "R-DIMM", 8, "C", 8, "1809", 16,
    lowest_nrh=_nrh(14_100, 14_100, 14_100, 13_300, 12_500, 10_200, 0),
    pacram=_pacram(
        (13_300, 15_000, 9.6 * S), (12_500, 15_000, 9.0 * S),
        (12_500, 15_000, 9.0 * S), (10_200, 15_000, 7.3 * S),
        (10_200, 1, 489 * US), None,
    ),
))
_add(ModuleSpec(
    "S11", "K4A8G085WB-BCTD", "R-DIMM", 8, "B", 8, "2053", 8,
    lowest_nrh=_nrh(28_100, 28_900, 28_100, 26_600, 27_300, 0, 0),
    pacram=_pacram(
        (26_600, 15_000, 19.1 * S), (26_600, 15_000, 19.1 * S),
        (25_800, 15_000, 18.6 * S), (25_000, 15_000, 18.0 * S),
        None, None,
    ),
))
_add(ModuleSpec(
    "S12", "K4AAG085WA-BCWE", "U-DIMM", 8, "A", 8, "2212", 8,
    lowest_nrh=_nrh(9_000, 8_200, 7_800, 9_000, 7_000, 0, 0),
    pacram=_pacram(
        (8_600, 15_000, 6.2 * S), (9_000, 15_000, 6.5 * S),
        (7_800, 15_000, 5.6 * S), (6_200, 15_000, 4.5 * S),
        None, None,
    ),
))
_add(ModuleSpec(
    "S13", "Unknown", "U-DIMM", 16, "B", 8, "2315", 8,
    lowest_nrh=_nrh(7_000, 7_800, 7_000, 6_600, 7_000, 5_900, 0),
    pacram=_pacram(
        (7_400, 15_000, 5.3 * S), (7_000, 15_000, 5.1 * S),
        (6_600, 15_000, 4.8 * S), (6_200, 15_000, 4.5 * S),
        (3_900, 5, 937 * US), None,
    ),
))


def module_spec(module_id: str) -> ModuleSpec:
    """Look up one tested module by id (e.g. ``"H5"``, ``"M2"``, ``"S6"``)."""
    try:
        return _CATALOG[module_id.upper()]
    except KeyError:
        raise UnknownModuleError(
            f"unknown module id {module_id!r}; known: {sorted(_CATALOG)}") from None


def all_module_ids() -> tuple[str, ...]:
    """All 30 tested module ids, in catalog order."""
    return tuple(_CATALOG)


def all_module_specs() -> tuple[ModuleSpec, ...]:
    """All 30 tested module specs, in catalog order."""
    return tuple(_CATALOG.values())


def modules_by_manufacturer(manufacturer: Manufacturer | str) -> tuple[ModuleSpec, ...]:
    """All modules from one manufacturer."""
    if isinstance(manufacturer, str):
        manufacturer = Manufacturer(manufacturer.upper())
    return tuple(s for s in _CATALOG.values() if s.manufacturer is manufacturer)


def total_chip_count(specs: Iterable[ModuleSpec] | None = None) -> int:
    """Total number of chips across the given specs (the paper tests 388)."""
    pool = all_module_specs() if specs is None else tuple(specs)
    return sum(s.num_chips for s in pool)


#: Representative modules used for PaCRAM-H / PaCRAM-M / PaCRAM-S (§9.1).
PACRAM_REFERENCE_MODULES: dict[Manufacturer, str] = {
    Manufacturer.H: "H5",
    Manufacturer.M: "M2",
    Manufacturer.S: "S6",
}
