"""RowPress: read disturbance from keeping a row open (§2.2 background).

RowPress (Luo et al., ISCA 2023) disturbs victim rows when an aggressor is
kept *open* for a long time rather than activated many times.  The paper
treats RowPress as background: existing mitigations prevent RowPress bitflips
when configured aggressively (equivalent to sub-1K ``N_RH``), and combining
RowHammer with RowPress lowers the effective threshold further.

This module extends the disturbance model accordingly: an aggressor
activation held open for ``t_on`` deposits more dose than a minimum-latency
activation, following the published observation that the per-activation
disturbance grows roughly logarithmically with on-time over several decades.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dram.disturbance import HammerDose
from repro.errors import ConfigError

#: Minimum aggressor-on time (an ordinary activation, tRAS-bounded), ns.
MIN_ON_TIME_NS = 36.0
#: Maximum on-time a refresh window permits (tREFW-bounded sweeps), ns.
MAX_ON_TIME_NS = 30_000_000.0
#: Dose amplification per decade of on-time beyond the minimum.  Calibrated
#: to the RowPress paper's headline: keeping the aggressor open ~7.8 us
#: (one tREFI) cuts the needed activation count by an order of magnitude.
AMPLIFICATION_PER_DECADE = 3.83


def press_amplification(t_on_ns: float) -> float:
    """Per-activation disturbance multiplier for an aggressor kept open
    ``t_on_ns`` (1.0 at the minimum on-time)."""
    if t_on_ns <= 0:
        raise ConfigError("on-time must be positive")
    clamped = min(max(t_on_ns, MIN_ON_TIME_NS), MAX_ON_TIME_NS)
    decades = math.log10(clamped / MIN_ON_TIME_NS)
    return 1.0 + AMPLIFICATION_PER_DECADE * decades


def pressed_dose(activations: int, t_on_ns: float) -> HammerDose:
    """Dose on the sandwiched victim after ``activations`` double-sided
    aggressor activations, each kept open for ``t_on_ns``."""
    if activations < 0:
        raise ConfigError("activation count must be non-negative")
    amplification = press_amplification(t_on_ns)
    return HammerDose(near=2.0 * activations * amplification, far=0.0)


@dataclass(frozen=True)
class CombinedPattern:
    """A combined RowHammer + RowPress access pattern.

    ``activations`` per aggressor row, each keeping the row open for
    ``t_on_ns``.  ``effective_hammer_count`` is the equivalent pure-hammer
    count — what a mitigation mechanism's threshold must cover.
    """

    activations: int
    t_on_ns: float

    def __post_init__(self) -> None:
        if self.activations < 0:
            raise ConfigError("activation count must be non-negative")
        if self.t_on_ns <= 0:
            raise ConfigError("on-time must be positive")

    @property
    def effective_hammer_count(self) -> float:
        return self.activations * press_amplification(self.t_on_ns)

    def dose(self) -> HammerDose:
        return pressed_dose(self.activations, self.t_on_ns)

    def duration_ns(self, trp_ns: float = 15.0) -> float:
        """Wall-clock time of the pattern (both aggressors, serialized)."""
        return 2.0 * self.activations * (self.t_on_ns + trp_ns)


def equivalent_nrh(nominal_nrh: float, t_on_ns: float) -> float:
    """The activation count at which a pressed pattern first flips a row
    whose pure-hammer threshold is ``nominal_nrh``.

    This is the quantity behind the paper's remark that RowPress-aware
    configuration is "practically equivalent to configuring for sub-1K
    N_RH values" (§2.2): long on-times divide the threshold.
    """
    if nominal_nrh <= 0:
        raise ConfigError("nominal N_RH must be positive")
    return nominal_nrh / press_amplification(t_on_ns)
