"""Read-disturbance kernels: data patterns, blast radius, access patterns.

RowHammer disturbance in the device model is *dose based*: every aggressor
activation deposits a disturbance dose on physically nearby rows, weighted by
distance (blast radius) and by the data pattern stored in the aggressor and
victim rows.  A victim cell flips once the accumulated dose exceeds its flip
threshold (see :mod:`repro.dram.cell_array`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError


class DataPattern(enum.Enum):
    """The six data patterns used by the paper's methodology (§4.3).

    Value is ``(victim_byte, aggressor_byte)``.
    """

    ROW_STRIPE = (0xFF, 0x00)  #: RS
    ROW_STRIPE_INV = (0x00, 0xFF)  #: RSI
    CHECKERBOARD = (0xAA, 0x55)  #: CB
    CHECKERBOARD_INV = (0x55, 0xAA)  #: CBI
    COLUMN_STRIPE = (0xAA, 0xAA)  #: CS
    COLUMN_STRIPE_INV = (0x55, 0x55)  #: CSI
    SOLID_ONES = (0xFF, 0xFF)  #: all 1s (retention testing, §7)
    SOLID_ZEROS = (0x00, 0x00)  #: all 0s (retention testing, §7)

    @property
    def victim_byte(self) -> int:
        return self.value[0]

    @property
    def aggressor_byte(self) -> int:
        return self.value[1]

    @property
    def short_name(self) -> str:
        return _SHORT_NAMES[self]


_SHORT_NAMES = {
    DataPattern.ROW_STRIPE: "RS",
    DataPattern.ROW_STRIPE_INV: "RSI",
    DataPattern.CHECKERBOARD: "CB",
    DataPattern.CHECKERBOARD_INV: "CBI",
    DataPattern.COLUMN_STRIPE: "CS",
    DataPattern.COLUMN_STRIPE_INV: "CSI",
    DataPattern.SOLID_ONES: "S1",
    DataPattern.SOLID_ZEROS: "S0",
}

#: Baseline coupling effectiveness of each data pattern (1.0 = strongest).
#: Row stripes are typically the most effective pattern; column stripes the
#: least (consistent with prior characterization work the paper builds on).
PATTERN_BASE_EFFECTIVENESS: dict[DataPattern, float] = {
    DataPattern.ROW_STRIPE: 1.00,
    DataPattern.ROW_STRIPE_INV: 0.97,
    DataPattern.CHECKERBOARD: 0.93,
    DataPattern.CHECKERBOARD_INV: 0.91,
    DataPattern.COLUMN_STRIPE: 0.84,
    DataPattern.COLUMN_STRIPE_INV: 0.82,
    DataPattern.SOLID_ONES: 0.74,
    DataPattern.SOLID_ZEROS: 0.73,
}

#: The six patterns Algorithm 1 sweeps when finding the worst-case pattern
#: (solid patterns are only used for retention testing, §7).
ALL_PATTERNS: tuple[DataPattern, ...] = (
    DataPattern.ROW_STRIPE,
    DataPattern.ROW_STRIPE_INV,
    DataPattern.CHECKERBOARD,
    DataPattern.CHECKERBOARD_INV,
    DataPattern.COLUMN_STRIPE,
    DataPattern.COLUMN_STRIPE_INV,
)

#: Disturbance weight by |physical distance| between aggressor and victim.
#: Distance 1 dominates; distance 2 matters for the Half-Double pattern.
#: Beyond the blast radius of 2 the coupling is negligible (§6).
BLAST_RADIUS_WEIGHTS: dict[int, float] = {1: 1.0, 2: 0.012}

#: Maximum aggressor-to-victim distance with observable disturbance.
BLAST_RADIUS: int = 2


def distance_weight(distance: int) -> float:
    """Disturbance weight for an aggressor ``distance`` rows away."""
    if distance <= 0:
        raise ConfigError(f"distance must be positive, got {distance}")
    return BLAST_RADIUS_WEIGHTS.get(distance, 0.0)


@dataclass(frozen=True)
class HammerDose:
    """Accumulated disturbance on one victim row, split by coupling distance.

    ``near`` counts effective distance-1 activations; ``far`` counts
    distance-2 activations (already *unweighted*; weights are applied when
    the dose is evaluated against cell thresholds).
    """

    near: float = 0.0
    far: float = 0.0

    def add(self, distance: int, count: float) -> "HammerDose":
        """Return a new dose with ``count`` activations at ``distance``."""
        if distance == 1:
            return HammerDose(self.near + count, self.far)
        if distance == 2:
            return HammerDose(self.near, self.far + count)
        return self

    def effective(self, far_weight: float = BLAST_RADIUS_WEIGHTS[2]) -> float:
        """Equivalent distance-1 activation count."""
        return self.near + far_weight * self.far

    @property
    def is_zero(self) -> bool:
        return self.near == 0.0 and self.far == 0.0


ZERO_DOSE = HammerDose()


def double_sided_dose(hammer_count: int) -> HammerDose:
    """Dose on the sandwiched victim after ``hammer_count`` activations of
    *each* of the two adjacent aggressors (the paper's primary pattern).

    Double-sided hammering couples the victim from both sides, so the
    effective per-pair dose is about twice a single-sided activation.  The
    paper's ``N_RH`` counts activations *per aggressor row*, which is what
    this function takes.
    """
    if hammer_count < 0:
        raise ConfigError("hammer count must be non-negative")
    return HammerDose(near=2.0 * hammer_count, far=0.0)


def half_double_dose(far_hammers: int, near_hammers: int) -> HammerDose:
    """Dose from the Half-Double pattern (§6): many activations of the far
    aggressor (distance 2) followed by a few of the near aggressor
    (distance 1)."""
    if far_hammers < 0 or near_hammers < 0:
        raise ConfigError("hammer counts must be non-negative")
    return HammerDose(near=float(near_hammers), far=float(far_hammers))
