"""DRAM device substrate.

This package models everything the paper's FPGA-based testing platform needed
real hardware for: DDR4 timing, module geometry, vendor-specific
charge-restoration physics, read-disturbance (RowHammer / Half-Double)
behavior, data-retention behavior, internal row address mapping, and a
command-level device model (:class:`~repro.dram.module.DRAMModule`) that the
software DRAM Bender (:mod:`repro.bender`) drives.

The behavioral model is calibrated to the paper's published per-module
measurements (Appendix C, Tables 3 and 4); see ``repro/dram/catalog.py``.
"""

from repro.dram.timing import TimingParams, ddr4_timing, ddr5_timing
from repro.dram.geometry import ModuleGeometry
from repro.dram.vendor import Manufacturer, VendorProfile, vendor_profile
from repro.dram.catalog import (
    ModuleSpec,
    all_module_ids,
    module_spec,
    modules_by_manufacturer,
)
from repro.dram.module import DRAMModule

__all__ = [
    "TimingParams",
    "ddr4_timing",
    "ddr5_timing",
    "ModuleGeometry",
    "Manufacturer",
    "VendorProfile",
    "vendor_profile",
    "ModuleSpec",
    "all_module_ids",
    "module_spec",
    "modules_by_manufacturer",
    "DRAMModule",
]
