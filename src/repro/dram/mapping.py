"""Internal DRAM row address mapping (logical <-> physical).

DRAM manufacturers remap logical row addresses to physical locations for
post-manufacturing repair and layout efficiency; RowHammer experiments must
reverse-engineer this mapping to find the true physical neighbors of a victim
row (§4.3).  We model the two schemes commonly found in real chips:

* **sequential** — physical position equals the logical address.
* **mirrored-pairs** — within blocks of 2^k rows, pairs of adjacent logical
  addresses are swapped/XOR-scrambled (the classic "address bit 3 flip"
  scheme reverse-engineered in prior work).

The testing methodology never assumes knowledge of the scheme: the
characterization code calls :meth:`RowMapping.neighbors`, which mimics the
reverse-engineering outcome.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.vendor import Manufacturer
from repro.errors import ConfigError


@dataclass(frozen=True)
class RowMapping:
    """Bijective logical<->physical row mapping within one bank."""

    rows_per_bank: int
    scramble_mask: int = 0  #: XOR mask applied to the low logical bits.

    def __post_init__(self) -> None:
        if self.rows_per_bank <= 0:
            raise ConfigError("rows_per_bank must be positive")
        if not 0 <= self.scramble_mask < self.rows_per_bank:
            raise ConfigError("scramble mask out of range")

    def logical_to_physical(self, row: int) -> int:
        """Physical position of logical row ``row``."""
        self._check(row)
        return row ^ self.scramble_mask

    def physical_to_logical(self, position: int) -> int:
        """Logical address of physical position ``position`` (involution)."""
        self._check(position)
        return position ^ self.scramble_mask

    def neighbors(self, row: int, distance: int = 1) -> tuple[int, ...]:
        """Logical addresses of the physical neighbors of ``row``.

        Returns the rows at physical distance ``distance`` on both sides;
        rows at the edge of the bank have only one neighbor.
        """
        if distance <= 0:
            raise ConfigError("distance must be positive")
        physical = self.logical_to_physical(row)
        out = []
        for offset in (-distance, distance):
            pos = physical + offset
            if 0 <= pos < self.rows_per_bank:
                out.append(self.physical_to_logical(pos))
        return tuple(out)

    def physical_distance(self, row_a: int, row_b: int) -> int:
        """Physical distance between two logical rows."""
        return abs(self.logical_to_physical(row_a) - self.logical_to_physical(row_b))

    def _check(self, row: int) -> None:
        if not 0 <= row < self.rows_per_bank:
            raise ConfigError(f"row {row} outside bank of {self.rows_per_bank} rows")


def mapping_for_vendor(manufacturer: Manufacturer, rows_per_bank: int) -> RowMapping:
    """The (modeled) internal mapping scheme each manufacturer uses.

    Mfr. S parts in our model use a scrambled low-address scheme (logical
    neighbors are not physical neighbors); Mfrs. H and M use sequential
    mapping.  The characterization pipeline works identically either way
    because it always resolves neighbors through the mapping.
    """
    if manufacturer is Manufacturer.S:
        return RowMapping(rows_per_bank=rows_per_bank, scramble_mask=0b110)
    return RowMapping(rows_per_bank=rows_per_bank, scramble_mask=0)
