"""Exception hierarchy for the repro library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors like :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class TimingViolation(ReproError):
    """A DRAM command was issued before its governing timing expired."""


class DeviceError(ReproError):
    """An operation was attempted on a DRAM device in an invalid state."""


class ProgramError(ReproError):
    """A DRAM-Bender test program is malformed or used incorrectly."""


class CharacterizationError(ReproError):
    """A characterization routine was invoked with invalid parameters."""


class SimulationError(ReproError):
    """The memory-system simulator reached an inconsistent state."""


class ExecutionError(ReproError):
    """A campaign or sweep finished with permanently failed points.

    Raised by the parallel execution engine after every point has been
    attempted; the per-point error ledger (``errors.jsonl``) holds the
    details of each failed attempt.
    """


class ProtocolViolation(ReproError):
    """A runtime invariant of the DRAM protocol or device physics was broken.

    Raised by :class:`repro.validation.ProtocolChecker` in ``strict`` mode
    when an issued command violates a JEDEC timing constraint, a refresh
    deadline is missed, or PaCRAM's N_PCR/t_FCRI safety envelope is
    exceeded.  In ``tolerant`` mode the same events are appended to a
    ``violations.jsonl`` ledger instead.
    """

    def __init__(self, message: str, *, rule: str = "",
                 time_ns: float = 0.0) -> None:
        super().__init__(message)
        self.rule = rule
        self.time_ns = time_ns


class UnknownModuleError(ReproError):
    """A module id was requested that is not in the tested-module catalog."""
