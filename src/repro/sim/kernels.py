"""Batched system-simulation fast path (bit-exact with the scalar oracle).

:meth:`repro.sim.system.MemorySystem.run` drains requests one
``service_one()`` at a time: every pick rescans both queues, every request
materializes a ``Request`` dataclass plus a ``DecodedAddress``, and every
idle step round-trips ``next_arrival_ns()`` / ``advance_to()``.  This
module replaces that per-request Python-object churn with a batched drain
loop over lightweight array-backed records:

* :class:`BatchCore` pre-decodes a core's whole trace with one vectorized
  address-map pass and replays the instruction-window model over plain
  Python lists, emitting ``__slots__`` records instead of dataclasses;
* :func:`service_batch` keeps the read/write queues sorted by arrival so
  each scheduling decision touches only the arrived prefix, forwards reads
  through a per-address write index, caches the next periodic-refresh
  boundary, and services every request schedulable before the next
  arrival/refresh/mitigation boundary without re-entering the per-call
  ``service_one`` machinery.

The fast path drives the *same* controller state — bank/rank/channel
timelines, energy model, mitigation plugin, refresh policy, and command
observer — through the same operations in the same order, so results
(including observer event streams) are bit-identical to the scalar path.
The scalar loop remains the parity oracle, exactly like the scalar device
kernel of :mod:`repro.dram.kernels` (PR 3); ``--check-protocol`` runs
force it.

This tier still dispatches the mitigation per activation — one plugin
call per ACT — which is what makes it the reference point for the epoch
dispatch of :mod:`repro.sim.arraykernel`: `bench_system_scaling` times
:func:`service_batch` against ``service_array`` on a mitigation-heavy
attack and asserts the epoch tier's aggregate kernel-level margin.
Keep it that way; speeding this baseline is pointless unless the same
trick is structurally unavailable to the array tier.
"""

from __future__ import annotations

from bisect import bisect_right, insort_right
from collections import deque
from operator import attrgetter
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SimulationError
from repro.sim.commands import ActCommand, CasCommand, PreCommand
from repro.sim.core import CoreModel
from repro.sim.energy import E_READ_NJ, E_WRITE_NJ
from repro.sim.stats import CoreStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import MemorySystem, SimulationResult

#: The selectable system-simulation kernels (the ``sim`` stage of
#: :data:`repro.exec.STAGE_KERNELS`).  ``array`` is the structure-of-arrays
#: drain loop of :mod:`repro.sim.arraykernel`.
SIM_KERNELS = ("scalar", "batched", "array")


def set_default_sim_kernel(kernel: str) -> None:
    """Deprecated shim: set the default policy's sim-stage override.

    Kernel selection lives in :mod:`repro.exec`; this survives for callers
    of the pre-policy knob and is equivalent to
    ``default_policy().sim_kernel = kernel``.
    """
    from repro.exec import (
        default_policy,
        validate_stage_kernel,
        warn_deprecated_flag,
    )

    warn_deprecated_flag("set_default_sim_kernel",
                         "repro.exec.set_default_policy")
    default_policy().sim_kernel = validate_stage_kernel("sim", kernel)


def default_sim_kernel() -> str:
    """The kernel simulations use when ``kernel``/``sim_kernel`` is None."""
    from repro.exec import resolve_kernel

    return resolve_kernel("sim")


def resolve_sim_kernel(kernel: str | None) -> str:
    """Validate a kernel name; ``None`` resolves through the default
    :class:`repro.exec.ExecutionPolicy`."""
    from repro.exec import resolve_kernel

    return resolve_kernel("sim", kernel)


class Rec:
    """One in-flight memory request, stripped to what scheduling reads.

    Replaces ``Request`` + ``DecodedAddress`` (two dataclasses and an enum
    per request) with a single ``__slots__`` record whose DRAM coordinates
    were decoded up front by :class:`BatchCore`.
    """

    __slots__ = ("core", "address", "is_read", "arrival_ns", "completion_ns",
                 "position", "row", "flat", "rank_index", "channel",
                 "bank_group")

    def __init__(self, core: int, address: int, is_read: bool,
                 arrival_ns: float, position: int, row: int, flat: int,
                 rank_index: int, channel: int, bank_group: int) -> None:
        self.core = core
        self.address = address
        self.is_read = is_read
        self.arrival_ns = arrival_ns
        self.completion_ns = -1.0
        self.position = position
        self.row = row
        self.flat = flat
        self.rank_index = rank_index
        self.channel = channel
        self.bank_group = bank_group


class BatchCore:
    """Array-backed replica of :class:`repro.sim.core.CoreModel`.

    The whole trace is decoded to DRAM coordinates in one vectorized pass
    (the scalar model calls ``mapper.decode`` per request), and the pump
    loop walks plain Python lists.  Arrival times are computed with the
    exact expression order of the scalar model, so emitted timestamps are
    bit-identical.
    """

    __slots__ = ("core_id", "_clock_ghz", "_cycle", "_width", "_window",
                 "_n", "_bubbles", "_addresses", "_is_read", "_rows",
                 "_flats", "_rank_idx", "_channels", "_groups", "_index",
                 "_next_position", "_frontend_ns", "_issue_floor_ns",
                 "_inflight", "_last_completion_ns")

    def __init__(self, core: CoreModel) -> None:
        config = core.config
        mapper = core.mapper
        trace = core.trace
        self.core_id = core.core_id
        self._clock_ghz = config.core_clock_ghz
        self._cycle = config.core_cycle_ns
        self._width = config.issue_width
        self._window = config.instruction_window
        self._n = len(trace)
        self._bubbles = trace.bubbles.tolist()
        addresses = (trace.addresses.astype(np.int64, copy=False)
                     + core.address_offset)
        self._addresses = addresses.tolist()
        self._is_read = np.logical_not(trace.is_write).tolist()
        # Vectorized MOP decode: the same shift/mask chain as
        # AddressMapper.decode, applied to the whole trace at once.
        value = addresses % mapper.total_lines
        value >>= mapper._col_low_bits
        channel = value & (config.channels - 1)
        value >>= mapper._channel_bits
        bank = value & (config.banks_per_group - 1)
        value >>= mapper._bank_bits
        group = value & (config.bank_groups - 1)
        value >>= mapper._group_bits
        rank = value & (config.ranks - 1)
        value >>= mapper._rank_bits
        value >>= mapper._col_high_bits
        rank_channel = rank + config.ranks * channel
        flat = bank + config.banks_per_group * (
            group + config.bank_groups * rank_channel)
        self._rows = value.tolist()
        self._flats = flat.tolist()
        self._rank_idx = rank_channel.tolist()
        self._channels = channel.tolist()
        self._groups = group.tolist()
        self._index = 0
        self._next_position = 0
        self._frontend_ns = 0.0
        self._issue_floor_ns = 0.0
        self._inflight: deque[Rec] = deque()
        self._last_completion_ns = 0.0

    def pump(self) -> list[Rec]:
        """Emit every request whose issue time is now determined."""
        out: list[Rec] = []
        i = self._index
        n = self._n
        if i >= n:
            return out
        bubbles = self._bubbles
        cycle = self._cycle
        width = self._width
        window = self._window
        step = cycle / width
        inflight = self._inflight
        next_position = self._next_position
        frontend = self._frontend_ns
        floor = self._issue_floor_ns
        last_completion = self._last_completion_ns
        core_id = self.core_id
        addresses = self._addresses
        is_read = self._is_read
        rows = self._rows
        flats = self._flats
        rank_idx = self._rank_idx
        channels = self._channels
        groups = self._groups
        while i < n:
            b = bubbles[i]
            position = next_position + b
            if inflight and position - inflight[0].position >= window:
                head = inflight[0]
                completion = head.completion_ns
                if completion < 0.0:
                    break  # stalled: resume after the head load completes
                if completion > floor:
                    floor = completion
                inflight.popleft()
                if completion > last_completion:
                    last_completion = completion
                continue
            fetch_done = frontend + b * cycle / width
            arrival = fetch_done if fetch_done > floor else floor
            read = is_read[i]
            rec = Rec(core_id, addresses[i], read, arrival, position,
                      rows[i], flats[i], rank_idx[i], channels[i], groups[i])
            if read:
                inflight.append(rec)
            out.append(rec)
            frontend = fetch_done + step
            next_position = position + 1
            i += 1
        self._index = i
        self._next_position = next_position
        self._frontend_ns = frontend
        self._issue_floor_ns = floor
        self._last_completion_ns = last_completion
        return out

    def note_completion(self, rec: Rec) -> None:
        if rec.completion_ns > self._last_completion_ns:
            self._last_completion_ns = rec.completion_ns

    def finished(self) -> bool:
        if self._index < self._n:
            return False
        for rec in self._inflight:
            if rec.completion_ns < 0:
                return False
        return True

    def stats(self) -> CoreStats:
        if not self.finished():
            raise SimulationError(f"core {self.core_id} has not finished")
        elapsed = max(self._frontend_ns, self._last_completion_ns)
        return CoreStats(core=self.core_id,
                         instructions=self._next_position,
                         elapsed_ns=elapsed,
                         core_clock_ghz=self._clock_ghz)


_ARRIVAL = attrgetter("arrival_ns")


def run_batched(system: "MemorySystem") -> "SimulationResult":
    """Run a :class:`MemorySystem` through the batched drain loop."""
    cores = [BatchCore(core) for core in system.cores]
    core_stats = service_batch(system, cores)
    return system._collect(core_stats)


def service_batch(system: "MemorySystem",
                  cores: list[BatchCore]) -> list[CoreStats]:
    """Drain every core's trace through the controller in one call.

    Mirrors ``MemorySystem._run_scalar`` + ``MemoryController.service_one``
    / ``_service`` operation for operation; see the module docstring for
    the exactness contract.
    """
    ctrl = system.controller
    config = system.config
    timing = ctrl.timing
    tRAS = timing.tRAS
    tRP = timing.tRP
    tRCD = timing.tRCD
    tCL = timing.tCL
    tBL = timing.tBL
    tWR = timing.tWR
    tFAW = timing.tFAW
    tCCD = timing.tCCD
    tCCD_L = timing.tCCD_L
    forward_latency = ctrl.FORWARD_LATENCY_NS
    banks = ctrl.banks
    ranks = ctrl.ranks
    channels = ctrl.channels
    observer = ctrl.observer
    run_mitigation = ctrl._run_mitigation
    act_penalty = ctrl.mitigation.act_penalty_ns
    energy = ctrl.energy
    act_e = energy.act_energy(tRAS)
    stats = ctrl.stats
    latency_add = system._latency.add
    high_mark = config.write_queue_depth * config.write_high_watermark
    low_mark = config.write_queue_depth * config.write_low_watermark
    # Local accumulators seeded from (and flushed back to) the shared
    # state: the addition sequence per counter matches the scalar path.
    stat_reads = stats.reads
    stat_writes = stats.writes
    stat_forwarded = stats.forwarded_reads
    stat_hits = stats.row_hits
    stat_misses = stats.row_misses
    stat_acts = stats.activations
    activation_nj = energy.activation_nj
    read_nj = energy.read_nj
    write_nj = energy.write_nj

    read_queue: list[Rec] = []
    write_queue: list[Rec] = []
    #: Pending queued writes by address, for read forwarding.
    writes_by_addr: dict[int, list[Rec]] = {}
    draining = ctrl._draining_writes
    next_refresh = min(rank.next_refresh_ns for rank in ranks)

    def enqueue_all(recs: list[Rec]) -> None:
        # insort_right keeps equal arrivals in insertion (enqueue) order,
        # which is exactly the scalar queue's FCFS tie-break.
        for rec in recs:
            if rec.is_read:
                insort_right(read_queue, rec, key=_ARRIVAL)
            else:
                insort_right(write_queue, rec, key=_ARRIVAL)
                writes_by_addr.setdefault(rec.address, []).append(rec)

    for core in cores:
        enqueue_all(core.pump())

    stall_guard = 0
    while True:
        now = ctrl.now_ns
        if now >= next_refresh:
            ctrl._apply_periodic_refresh(now)
            next_refresh = min(rank.next_refresh_ns for rank in ranks)
        wlen = len(write_queue)
        if wlen >= high_mark:
            draining = True
        elif wlen <= low_mark:
            draining = False
        # --- pick (FR-FCFS over the arrived prefix) -------------------
        writes_end = bisect_right(write_queue, now, key=_ARRIVAL) if wlen else 0
        if draining and writes_end:
            queue = write_queue
            end = writes_end
        else:
            reads_end = (bisect_right(read_queue, now, key=_ARRIVAL)
                         if read_queue else 0)
            if reads_end:
                queue = read_queue
                end = reads_end
            elif writes_end:
                queue = write_queue
                end = writes_end
            else:
                # Nothing arrived: advance to the earliest queued arrival
                # (the sorted queues expose it in O(1)), else pump/finish.
                if read_queue or write_queue:
                    best = None
                    if read_queue:
                        best = read_queue[0].arrival_ns
                    if write_queue:
                        head = write_queue[0].arrival_ns
                        if best is None or head < best:
                            best = head
                    if best > now:
                        ctrl.now_ns = best
                    continue
                if all(core.finished() for core in cores):
                    break
                produced = 0
                for core in cores:
                    recs = core.pump()
                    produced += len(recs)
                    enqueue_all(recs)
                stall_guard += 1
                if produced == 0 and stall_guard > 2:
                    raise SimulationError(
                        "deadlock: cores unfinished but no requests pending")
                continue
        pick = 0
        for i in range(end):
            rec = queue[i]
            if banks[rec.flat].open_row == rec.row:
                pick = i
                break
        rec = queue[pick]
        del queue[pick]
        arrival = rec.arrival_ns
        serviced_read = rec.is_read
        if serviced_read:
            # --- read forwarding out of the write queue ---------------
            pending = writes_by_addr.get(rec.address)
            forwarded = False
            if pending:
                for write in pending:
                    if write.arrival_ns <= arrival:
                        forwarded = True
                        break
            if forwarded:
                rec.completion_ns = ((now if now > arrival else arrival)
                                     + forward_latency)
                stat_reads += 1
                stat_forwarded += 1
        else:
            writes_by_addr[rec.address].remove(rec)
            forwarded = False
        if not forwarded:
            # --- service (command timing) -----------------------------
            flat = rec.flat
            bank = banks[flat]
            earliest = now
            if arrival > earliest:
                earliest = arrival
            if bank.ready_ns > earliest:
                earliest = bank.ready_ns
            row = rec.row
            if bank.open_row == row:
                stat_hits += 1
                cas_start = earliest
            else:
                stat_misses += 1
                act_start = earliest
                closes_row = bank.open_row is not None
                if closes_row:
                    pre_start = bank.act_ns + tRAS
                    if earliest > pre_start:
                        pre_start = earliest
                    act_start = pre_start + tRP
                rank = ranks[rec.rank_index]
                faw = rank.faw_constraint(act_start, tFAW)
                if faw > act_start:
                    act_start = faw
                rank.record_act(act_start)
                if observer is not None:
                    if closes_row:
                        observer.on_command(PreCommand(flat, pre_start))
                    observer.on_command(ActCommand(
                        flat, rec.rank_index, rec.channel, rec.bank_group,
                        row, act_start))
                bank.open_row = row
                bank.act_ns = act_start
                stat_acts += 1
                activation_nj += act_e
                cas_start = act_start + tRCD
                run_mitigation(flat, row, act_start)
                # Mitigation actions may have pushed the bank's ready time.
                if bank.ready_ns > cas_start:
                    cas_start = bank.ready_ns
            channel = channels[rec.channel]
            cas_start = channel.cas_constraint(cas_start, rec.bank_group,
                                               tCCD, tCCD_L)
            if observer is not None:
                observer.on_command(CasCommand(
                    flat, rec.channel, rec.bank_group, row, cas_start,
                    not serviced_read))
            if serviced_read:
                stat_reads += 1
                read_nj += E_READ_NJ
                data_done = channel.reserve_bus(cas_start + tCL, tBL)
            else:
                stat_writes += 1
                write_nj += E_WRITE_NJ
                data_done = channel.reserve_bus(cas_start + tCL, tBL) + tWR
            rec.completion_ns = data_done
            blocked = cas_start + tCCD + act_penalty
            if blocked > bank.ready_ns:
                bank.ready_ns = blocked
            if cas_start > now:
                ctrl.now_ns = cas_start
        stall_guard = 0
        if serviced_read:
            latency_add(rec.completion_ns - arrival)
            core = cores[rec.core]
            core.note_completion(rec)
            recs = core.pump()
            if recs:
                enqueue_all(recs)

    stats.reads = stat_reads
    stats.writes = stat_writes
    stats.forwarded_reads = stat_forwarded
    stats.row_hits = stat_hits
    stats.row_misses = stat_misses
    stats.activations = stat_acts
    energy.activation_nj = activation_nj
    energy.read_nj = read_nj
    energy.write_nj = write_nj
    ctrl._draining_writes = draining
    return [core.stats() for core in cores]
