"""DRAM command events emitted by the memory controller for observers.

The controller models timing analytically — it never materializes a command
stream.  For runtime validation (:mod:`repro.validation`) it optionally
*narrates* what it does as a sequence of lightweight command events: every
activation, precharge, column access, periodic refresh, preventive refresh,
and mitigation request is reported to an attached
:class:`CommandObserver`.  With no observer attached nothing is
constructed, so the instrumented paths cost a single ``is not None`` check.

Events carry the controller's own computed issue times; an observer
re-validates them against an independent model of the DDR state machine.
Timestamps are simulation nanoseconds.  Events are emitted in program
order, which is *almost* time order — a bus-constrained CAS can be pushed
past a periodic refresh that is reported later — so observers must keep
per-resource state rather than assume a globally sorted stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable


@dataclass(frozen=True)
class ActCommand:
    """A row activation (demand ACT) on one bank."""

    flat_bank: int
    rank: int
    channel: int
    bank_group: int
    row: int
    time_ns: float


@dataclass(frozen=True)
class PreCommand:
    """An explicit precharge closing ``flat_bank``'s open row."""

    flat_bank: int
    time_ns: float


@dataclass(frozen=True)
class CasCommand:
    """A column access (RD or WR) on an open row."""

    flat_bank: int
    channel: int
    bank_group: int
    row: int
    time_ns: float
    is_write: bool


@dataclass(frozen=True)
class RefCommand:
    """One periodic all-bank refresh command on a rank."""

    rank: int
    time_ns: float
    trfc_ns: float


@dataclass(frozen=True)
class PreventiveRefreshCmd:
    """One victim row's preventive charge restoration.

    ``row`` is ``-1`` when the victim is resolved inside the DRAM chip
    (RFM / PRAC back-off) and the controller cannot name it.  ``full``
    mirrors the refresh-latency policy's decision: ``False`` means a
    PaCRAM partial restoration at ``tras_ns < tRAS``.
    """

    flat_bank: int
    row: int
    time_ns: float
    tras_ns: float
    full: bool


@dataclass(frozen=True)
class MetadataCmd:
    """Mitigation metadata traffic occupying a bank (Hydra's RCT)."""

    flat_bank: int
    time_ns: float
    duration_ns: float
    reads: int
    writes: int


@dataclass(frozen=True)
class MitigationRequest:
    """What a mitigation asked the controller to do on one activation.

    Observers cross-check requests against the executed
    :class:`PreventiveRefreshCmd` stream: a controller that drops or delays
    a requested refresh leaves the request unmatched.  ``victims`` holds
    resolved victim row numbers for controller-side refreshes and is empty
    for in-DRAM (RFM) requests, where ``victim_count`` still carries the
    expected number of restored rows.
    """

    flat_bank: int
    aggressor_row: int
    kind: str  #: "refresh" | "rfm" | "metadata"
    victims: tuple[int, ...]
    victim_count: int
    time_ns: float


Command = (ActCommand | PreCommand | CasCommand | RefCommand
           | PreventiveRefreshCmd | MetadataCmd | MitigationRequest)


@runtime_checkable
class CommandObserver(Protocol):
    """Anything that can watch the controller's command stream."""

    def on_command(self, command: Command) -> None:
        """Observe one command event (called in emission order)."""

    def finalize(self, end_ns: float) -> None:
        """The simulation ended at ``end_ns``; run end-of-stream checks."""
