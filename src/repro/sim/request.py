"""Memory requests flowing from cores into the controller."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.sim.addrmap import DecodedAddress


class RequestType(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass
class Request:
    """One cache-line-sized memory request."""

    core: int
    address: int
    type: RequestType
    arrival_ns: float
    decoded: DecodedAddress
    #: Position of the owning instruction in the core's trace (reads only);
    #: used by the core model to retire the instruction window.
    position: int = -1
    completion_ns: float = field(default=-1.0)

    @property
    def is_read(self) -> bool:
        return self.type is RequestType.READ

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Request(core={self.core}, {self.type.value}, "
                f"row={self.decoded.row}, t={self.arrival_ns:.0f})")
