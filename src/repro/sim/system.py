"""The full simulated system: cores + memory controller + event loop."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.mitigations.base import MitigationMechanism
from repro.sim.addrmap import AddressMapper
from repro.sim.config import SystemConfig
from repro.sim.commands import CommandObserver
from repro.sim.controller import MemoryController, RefreshLatencyPolicy
from repro.sim.core import CoreModel
from repro.sim.stats import (
    ControllerStats,
    CoreStats,
    LatencyAccumulator,
    LatencySummary,
)
from repro.workloads.trace import Trace


@dataclass
class SimulationResult:
    """Everything a benchmark needs from one simulation run."""

    core_stats: list[CoreStats]
    controller_stats: ControllerStats
    elapsed_ns: float
    preventive_busy_fraction: float
    energy_nj: float
    energy_breakdown: dict[str, float]
    read_latency: LatencySummary
    #: Protocol violations observed by an attached checker (empty when the
    #: run was unchecked or clean); filled in by the run orchestration.
    protocol_violations: list = field(default_factory=list)

    @property
    def ipc(self) -> dict[int, float]:
        return {s.core: s.ipc for s in self.core_stats}

    @property
    def mean_ipc(self) -> float:
        values = [s.ipc for s in self.core_stats]
        return sum(values) / len(values)

    @property
    def total_instructions(self) -> int:
        return sum(s.instructions for s in self.core_stats)


class MemorySystem:
    """Glues cores, address mapping, controller, and plugins together."""

    #: Per-core offset separating address spaces of co-running workloads
    #: (the OS would map each workload to disjoint physical frames).
    CORE_ADDRESS_STRIDE = 1 << 22  # cache lines (256 MB at 64 B lines)

    def __init__(self, config: SystemConfig, traces: list[Trace], *,
                 mitigation: MitigationMechanism | None = None,
                 policy: RefreshLatencyPolicy | None = None,
                 observer: CommandObserver | None = None) -> None:
        if not traces:
            raise SimulationError("need at least one workload trace")
        if len(traces) > config.num_cores:
            raise SimulationError(
                f"{len(traces)} traces for {config.num_cores} cores")
        self.config = config
        self.mapper = AddressMapper(config)
        self.controller = MemoryController(config, mitigation, policy,
                                           observer)
        self.cores = [
            CoreModel(i, trace, config, self.mapper,
                      address_offset=i * self.CORE_ADDRESS_STRIDE)
            for i, trace in enumerate(traces)
        ]
        self._latency = LatencyAccumulator()

    def run(self, kernel: str | None = None) -> SimulationResult:
        """Simulate until every core has drained its trace.

        ``kernel`` selects the drain-loop implementation: ``"scalar"`` is
        the per-request oracle below, ``"batched"`` the bit-exact fast path
        in :mod:`repro.sim.kernels`, ``"array"`` the structure-of-arrays
        drain loop in :mod:`repro.sim.arraykernel`.  ``None`` resolves
        through the default :class:`repro.exec.ExecutionPolicy` — with an
        observer attached, the oracle is the safe default and the fast
        paths must be requested explicitly.
        """
        from repro.exec import resolve_kernel

        kernel = resolve_kernel(
            "sim", kernel, observer=self.controller.observer is not None)
        if kernel == "array":
            from repro.sim.arraykernel import run_array
            return run_array(self)
        if kernel == "batched":
            from repro.sim.kernels import run_batched
            return run_batched(self)
        return self._run_scalar()

    def _run_scalar(self) -> SimulationResult:
        controller = self.controller
        for core in self.cores:
            self._enqueue_all(core.pump())
        stall_guard = 0
        while True:
            request = controller.service_one()
            if request is not None:
                stall_guard = 0
                if request.is_read:
                    self._latency.add(
                        request.completion_ns - request.arrival_ns)
                    core = self.cores[request.core]
                    core.note_completion(request)
                    self._enqueue_all(core.pump())
                continue
            # Nothing arrived yet: advance time (one scan covers every
            # request sharing the next timestamp) or finish.
            if controller.advance_to_next_arrival():
                continue
            if all(core.finished() for core in self.cores):
                break
            # No queued work but cores unfinished: pump everyone once.
            produced = 0
            for core in self.cores:
                requests = core.pump()
                produced += len(requests)
                self._enqueue_all(requests)
            stall_guard += 1
            if produced == 0 and stall_guard > 2:
                raise SimulationError(
                    "deadlock: cores unfinished but no requests pending")
        return self._collect([core.stats() for core in self.cores])

    def _enqueue_all(self, requests: list) -> None:
        for request in requests:
            self.controller.enqueue(request)

    def _collect(self, core_stats: list[CoreStats]) -> SimulationResult:
        controller = self.controller
        elapsed = max(s.elapsed_ns for s in core_stats)
        if elapsed <= 0:
            raise SimulationError("zero elapsed time")
        if controller.observer is not None:
            controller.observer.finalize(elapsed)
        controller.energy.finalize_background(elapsed)
        energy = controller.energy
        breakdown = {
            "activation": energy.activation_nj,
            "read": energy.read_nj,
            "write": energy.write_nj,
            "periodic_refresh": energy.periodic_refresh_nj,
            "preventive_refresh": energy.preventive_refresh_nj,
            "metadata": energy.metadata_nj,
            "background": energy.background_nj,
        }
        return SimulationResult(
            core_stats=core_stats,
            controller_stats=controller.stats,
            elapsed_ns=elapsed,
            preventive_busy_fraction=controller.preventive_busy_fraction(elapsed),
            energy_nj=energy.total_nj,
            energy_breakdown=breakdown,
            read_latency=self._latency.summary(),
        )
