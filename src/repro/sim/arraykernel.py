"""Structure-of-arrays system-simulation drain loop (the sim ``array`` tier).

The batched kernel (:mod:`repro.sim.kernels`) already avoids per-request
dataclass churn, but still pays for one ``__slots__`` record per request,
attribute-keyed ``insort``/``bisect`` calls, and a method call into the
bank/rank/channel timeline objects for every timing constraint.  This
module keeps the whole simulation state columnar:

* :class:`ArrayCore` precomputes each request's frontend fetch time and
  retirement position once per trace (the frontend chain is independent
  of load completions — window stalls gate *emission*, not the chain), so
  the per-request pump work collapses to a window check, one ``max``, and
  a direct ``insort`` into the shared queues;
* a queued request is one self-contained tuple ``(arrival, rid, flat,
  row, is_read, address, core, rank, channel, group)`` whose native
  ordering reproduces the scalar queue's arrival-then-FCFS order (rids
  increase in enqueue order), so ``insort``/``bisect`` run without key
  callables, the FR-FCFS scan indexes plain tuples, and the only
  per-request column is the completion-time list the cores poll;
* bank / rank / channel timing state is held in flat lists, with the
  timeline methods (``faw_constraint``, ``cas_constraint``,
  ``reserve_bus``, ``occupy``) and the controller's mitigation-action and
  periodic-refresh executors inlined over them in the scalar expression
  order, then flushed back to the controller objects on exit.

Same contract as the batched kernel: the same operations in the same
order on the same plugin objects, so results — stats, energies, latency
histogram, observer event streams — are bit-identical to the scalar
oracle (the parity suites assert it).
"""

from __future__ import annotations

from bisect import bisect_right, insort_right
from collections import deque
from itertools import repeat
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SimulationError
from repro.mitigations.base import (
    MetadataAccess,
    PreventiveRefresh,
    RfmCommand,
)
from repro.sim.commands import (
    ActCommand,
    CasCommand,
    MetadataCmd,
    MitigationRequest,
    PreCommand,
    PreventiveRefreshCmd,
    RefCommand,
)
from repro.sim.core import CoreModel
from repro.sim.energy import (
    E_ACT_BASE_NJ,
    E_READ_NJ,
    E_RESTORE_PER_NS,
    E_WRITE_NJ,
)
from repro.sim.stats import CoreStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import MemorySystem, SimulationResult

_INF = float("inf")


class SharedQueues:
    """The queues and per-request completion column shared by all cores."""

    __slots__ = ("read_queue", "write_queue", "writes_by_addr", "completion")

    def __init__(self) -> None:
        #: Entries: (arrival, rid, flat, row, is_read, address, core,
        #: rank, channel, group).  Rids are globally unique and increase
        #: in enqueue order, so native tuple ordering is arrival-then-FCFS
        #: — the scalar queue's tie-break — and the scheduling fields ride
        #: along without a per-request record.
        self.read_queue: list[tuple] = []
        self.write_queue: list[tuple] = []
        #: Pending queued writes per address as (arrival, rid) pairs, in
        #: enqueue order, for read forwarding.
        self.writes_by_addr: dict[int, list[tuple[float, int]]] = {}
        #: Completion time per rid (−1.0 while in flight) — the one
        #: per-request column, polled by the cores' window model.
        self.completion: list[float] = []


class ArrayCore:
    """Columnar replica of :class:`repro.sim.core.CoreModel`.

    Beyond :class:`repro.sim.kernels.BatchCore`'s vectorized decode, the
    whole frontend timing chain is precomputed: ``fetch_done[i]`` depends
    only on the bubble counts (the window stall pauses *emission*, never
    the chain), so it is accumulated once — float-op order identical to
    the per-pump accumulation — and :meth:`pump` just applies the issue
    floor and insorts straight into the shared queues.
    """

    __slots__ = ("core_id", "_clock_ghz", "_window", "_n", "_tails",
                 "_fetch_done", "_positions", "_final_frontend",
                 "_index", "_issue_floor_ns", "_inflight",
                 "_last_completion_ns", "_shared", "_stall_rid")

    def __init__(self, core: CoreModel, shared: SharedQueues) -> None:
        config = core.config
        mapper = core.mapper
        trace = core.trace
        self.core_id = core.core_id
        self._clock_ghz = config.core_clock_ghz
        self._window = config.instruction_window
        self._n = len(trace)
        self._shared = shared
        bubbles = trace.bubbles
        addresses = (trace.addresses.astype(np.int64, copy=False)
                     + core.address_offset)
        # Same vectorized MOP decode as BatchCore (one pass per trace).
        value = addresses % mapper.total_lines
        value >>= mapper._col_low_bits
        channel = value & (config.channels - 1)
        value >>= mapper._channel_bits
        bank = value & (config.banks_per_group - 1)
        value >>= mapper._bank_bits
        group = value & (config.bank_groups - 1)
        value >>= mapper._group_bits
        rank = value & (config.ranks - 1)
        value >>= mapper._rank_bits
        value >>= mapper._col_high_bits
        rank_channel = rank + config.ranks * channel
        flat = bank + config.banks_per_group * (
            group + config.bank_groups * rank_channel)
        # The static tail of each queue entry — (flat, row, is_read,
        # address, core, rank, channel, group) — zipped once, so the pump
        # builds an entry with a single concat instead of eight column
        # reads.
        self._tails = list(zip(
            flat.tolist(), value.tolist(),
            np.logical_not(trace.is_write).tolist(), addresses.tolist(),
            repeat(self.core_id), rank_channel.tolist(), channel.tolist(),
            group.tolist()))
        # position_i = i + sum(bubbles[:i+1]) — integer arithmetic, exact.
        self._positions = (np.cumsum(bubbles)
                           + np.arange(self._n, dtype=np.int64)).tolist()
        # The frontend chain alternates two additions per request —
        # fetch_done = frontend + b*cycle/width; frontend = fetch_done +
        # step — so the running value is the prefix sum of the interleaved
        # term sequence [t_0, step, t_1, step, ...].  np.cumsum (ufunc
        # accumulate) adds strictly left to right, which is exactly the
        # scalar accumulation order, so the precomputed chain is
        # bit-identical to the per-pump one.
        cycle = config.core_cycle_ns
        width = config.issue_width
        step = cycle / width
        terms = np.empty(2 * self._n, dtype=np.float64)
        terms[0::2] = bubbles * cycle / width
        terms[1::2] = step
        chain = np.cumsum(terms)
        self._fetch_done = chain[0::2].tolist()
        self._final_frontend = float(chain[-1]) if self._n else 0.0
        self._index = 0
        self._issue_floor_ns = 0.0
        #: (position, rid) of in-flight reads, oldest first.
        self._inflight: deque[tuple[int, int]] = deque()
        self._last_completion_ns = 0.0
        #: Rid of the read this core is window-stalled on (-1 when the
        #: trace is drained).  A completion of any other rid cannot
        #: unblock emission, so the drain loop skips the pump call.
        self._stall_rid = -1

    def pump(self) -> int:
        """Emit every request whose issue time is now determined.

        Emitted requests go straight into the shared queues (the per-core
        emission order is the enqueue order, exactly as when the scalar
        core returns a batch that is enqueued in order).  Returns how many
        requests were emitted.
        """
        i = self._index
        n = self._n
        if i >= n:
            return 0
        inflight = self._inflight
        shared = self._shared
        completion = shared.completion
        positions = self._positions
        if inflight:
            # Cheap pre-check: after any pump, the core is either drained
            # or window-stalled on its oldest read — so most pumps find
            # that read still in flight and can skip the full prologue.
            head_position, head_rid = inflight[0]
            if (positions[i] - head_position >= self._window
                    and completion[head_rid] < 0.0):
                return 0
        read_queue = shared.read_queue
        write_queue = shared.write_queue
        writes_by_addr = shared.writes_by_addr
        fetch_done = self._fetch_done
        window = self._window
        floor = self._issue_floor_ns
        last_completion = self._last_completion_ns
        tails = self._tails
        emitted = 0
        stall = -1
        while i < n:
            position = positions[i]
            if inflight:
                head_position, head_rid = inflight[0]
                if position - head_position >= window:
                    done = completion[head_rid]
                    if done < 0.0:
                        stall = head_rid
                        break  # stalled: resume after the head completes
                    if done > floor:
                        floor = done
                    inflight.popleft()
                    if done > last_completion:
                        last_completion = done
                    continue
            done = fetch_done[i]
            arrival = done if done > floor else floor
            rid = len(completion)
            completion.append(-1.0)
            tail = tails[i]
            entry = (arrival, rid) + tail
            if tail[2]:  # is_read
                inflight.append((position, rid))
                insort_right(read_queue, entry)
            else:
                insort_right(write_queue, entry)
                address = tail[3]
                pending = writes_by_addr.get(address)
                if pending is None:
                    writes_by_addr[address] = [(arrival, rid)]
                else:
                    pending.append((arrival, rid))
            emitted += 1
            i += 1
        self._index = i
        self._issue_floor_ns = floor
        self._last_completion_ns = last_completion
        self._stall_rid = stall
        return emitted

    def note_completion(self, completion_ns: float) -> None:
        if completion_ns > self._last_completion_ns:
            self._last_completion_ns = completion_ns

    def finished(self) -> bool:
        if self._index < self._n:
            return False
        completion = self._shared.completion
        for _, rid in self._inflight:
            if completion[rid] < 0:
                return False
        return True

    def stats(self) -> CoreStats:
        if not self.finished():
            raise SimulationError(f"core {self.core_id} has not finished")
        elapsed = max(self._final_frontend, self._last_completion_ns)
        instructions = self._positions[-1] + 1 if self._n else 0
        return CoreStats(core=self.core_id,
                         instructions=instructions,
                         elapsed_ns=elapsed,
                         core_clock_ghz=self._clock_ghz)


def run_array(system: "MemorySystem") -> "SimulationResult":
    """Run a :class:`MemorySystem` through the SoA drain loop."""
    shared = SharedQueues()
    cores = [ArrayCore(core, shared) for core in system.cores]
    core_stats = service_array(system, cores, shared)
    return system._collect(core_stats)


def service_array(system: "MemorySystem", cores: list[ArrayCore],
                  shared: SharedQueues) -> list[CoreStats]:
    """Drain every core's trace through the SoA controller state.

    Mirrors :func:`repro.sim.kernels.service_batch` — itself a mirror of
    ``MemorySystem._run_scalar`` + ``MemoryController.service_one`` — with
    the timeline objects' state unpacked into flat lists and every timing
    method inlined in its exact expression order.  All state is flushed
    back to the controller objects before returning.
    """
    ctrl = system.controller
    config = system.config
    timing = ctrl.timing
    tRAS = timing.tRAS
    tRP = timing.tRP
    tRCD = timing.tRCD
    tCL = timing.tCL
    tBL = timing.tBL
    tWR = timing.tWR
    tFAW = timing.tFAW
    tCCD = timing.tCCD
    tCCD_L = timing.tCCD_L
    tRFC = timing.tRFC
    tREFI = timing.tREFI
    tREFW = timing.tREFW
    forward_latency = ctrl.FORWARD_LATENCY_NS
    observer = ctrl.observer
    mitigation = ctrl.mitigation
    on_activation = mitigation.on_activation
    act_penalty = mitigation.act_penalty_ns
    policy = ctrl.policy
    preventive_tras_ns = policy.preventive_tras_ns
    rows_per_bank = config.rows_per_bank
    rows_per_ref = ctrl._rows_per_periodic_refresh
    banks_per_rank = config.banks_per_rank
    metadata_per_access = tRP + tRCD + tCL + tBL
    energy = ctrl.energy
    act_e = energy.act_energy(tRAS)
    stats = ctrl.stats
    high_mark = config.write_queue_depth * config.write_high_watermark
    low_mark = config.write_queue_depth * config.write_low_watermark

    # --- columnar controller state (flushed back at the end) ----------
    bank_open = [b.open_row for b in ctrl.banks]
    bank_ready = [b.ready_ns for b in ctrl.banks]
    bank_act = [b.act_ns for b in ctrl.banks]
    bank_prev_busy = [b.preventive_busy_ns for b in ctrl.banks]
    bank_refresh_busy = [b.refresh_busy_ns for b in ctrl.banks]
    rank_next_ref = [r.next_refresh_ns for r in ctrl.ranks]
    rank_acts = [r.recent_acts for r in ctrl.ranks]
    chan_bus_free = [c.bus_free_ns for c in ctrl.channels]
    chan_last_cas = [c.last_cas_ns for c in ctrl.channels]
    chan_last_group = [c.last_cas_group for c in ctrl.channels]
    now = ctrl.now_ns
    next_window = ctrl._next_refresh_window_ns
    draining = ctrl._draining_writes
    next_refresh = min(rank_next_ref)

    # Local accumulators seeded from (and flushed back to) the shared
    # state: the addition sequence per counter matches the scalar path.
    stat_reads = stats.reads
    stat_writes = stats.writes
    stat_forwarded = stats.forwarded_reads
    stat_hits = stats.row_hits
    stat_misses = stats.row_misses
    stat_acts = stats.activations
    stat_periodic = stats.periodic_refreshes
    stat_prev_rows = stats.preventive_refresh_rows
    stat_prev_full = stats.preventive_refresh_full
    stat_prev_partial = stats.preventive_refresh_partial
    stat_rfm = stats.rfm_commands
    stat_backoff = stats.backoff_events
    stat_meta_reads = stats.metadata_reads
    stat_meta_writes = stats.metadata_writes
    activation_nj = energy.activation_nj
    read_nj = energy.read_nj
    write_nj = energy.write_nj
    periodic_nj = energy.periodic_refresh_nj
    preventive_nj = energy.preventive_refresh_nj
    metadata_nj = energy.metadata_nj
    latency = system._latency
    #: Raw read latencies, folded into the value histogram at flush time
    #: (np.unique); the histogram content and count are exactly what
    #: per-read ``LatencyAccumulator.add`` calls would produce, and
    #: ``summary()`` sorts its items so insertion order is immaterial.
    lat_values: list[float] = []

    read_queue = shared.read_queue
    write_queue = shared.write_queue
    writes_by_addr = shared.writes_by_addr
    completion_c = shared.completion

    for core in cores:
        core.pump()

    stall_guard = 0
    while True:
        if now >= next_refresh:
            # Inlined MemoryController._apply_periodic_refresh.
            for ri in range(len(rank_next_ref)):
                while rank_next_ref[ri] <= now:
                    start = rank_next_ref[ri]
                    scale = policy.periodic_refresh_scale()
                    trfc = tRFC * scale
                    if observer is not None:
                        observer.on_command(RefCommand(ri, start, trfc))
                    ref_tras = tRAS * scale
                    if ref_tras <= 0:
                        raise SimulationError(
                            "non-positive tRAS in energy model")
                    ref_e = rows_per_ref * (E_ACT_BASE_NJ
                                            + E_RESTORE_PER_NS * ref_tras)
                    lo = ri * banks_per_rank
                    for fb in range(lo, lo + banks_per_rank):
                        ready = bank_ready[fb]
                        busy_from = ready if ready > start else start
                        bank_ready[fb] = busy_from + trfc
                        bank_refresh_busy[fb] += trfc
                        bank_open[fb] = None
                        periodic_nj += ref_e
                    stat_periodic += 1
                    rank_next_ref[ri] += tREFI
            next_refresh = min(rank_next_ref)
        # --- arrival gate ---------------------------------------------
        # Nothing is serviceable before the earliest queued arrival, so
        # jump straight there off the O(1) queue heads — the batched
        # kernel's empty-bisect advance pass disappears.  Refresh is
        # re-checked after the jump (the scalar loop applies refreshes
        # due at the pre-advance time first; the duplicated check keeps
        # that event order).
        if read_queue:
            next_arrival = read_queue[0][0]
            if write_queue:
                head = write_queue[0][0]
                if head < next_arrival:
                    next_arrival = head
        elif write_queue:
            next_arrival = write_queue[0][0]
        else:
            if all(core.finished() for core in cores):
                break
            produced = 0
            for core in cores:
                produced += core.pump()
            stall_guard += 1
            if produced == 0 and stall_guard > 2:
                raise SimulationError(
                    "deadlock: cores unfinished but no requests pending")
            continue
        if next_arrival > now:
            now = next_arrival
            if now >= next_refresh:
                # Inlined MemoryController._apply_periodic_refresh (same
                # block as the loop top, at the post-advance time).
                for ri in range(len(rank_next_ref)):
                    while rank_next_ref[ri] <= now:
                        start = rank_next_ref[ri]
                        scale = policy.periodic_refresh_scale()
                        trfc = tRFC * scale
                        if observer is not None:
                            observer.on_command(RefCommand(ri, start, trfc))
                        ref_tras = tRAS * scale
                        if ref_tras <= 0:
                            raise SimulationError(
                                "non-positive tRAS in energy model")
                        ref_e = rows_per_ref * (E_ACT_BASE_NJ
                                                + E_RESTORE_PER_NS * ref_tras)
                        lo = ri * banks_per_rank
                        for fb in range(lo, lo + banks_per_rank):
                            ready = bank_ready[fb]
                            busy_from = ready if ready > start else start
                            bank_ready[fb] = busy_from + trfc
                            bank_refresh_busy[fb] += trfc
                            bank_open[fb] = None
                            periodic_nj += ref_e
                        stat_periodic += 1
                        rank_next_ref[ri] += tREFI
                next_refresh = min(rank_next_ref)
        wlen = len(write_queue)
        if wlen >= high_mark:
            draining = True
        elif wlen <= low_mark:
            draining = False
        # --- pick (FR-FCFS over the arrived prefix) -------------------
        # Probe after every entry with arrival <= now: rids are finite, so
        # (now, inf) sorts after every (now, rid, ...) tuple.  At least
        # one entry has arrived (the gate above), so exactly one bisect
        # runs in the common case and the fallback never probes an
        # un-arrived queue twice.
        probe = (now, _INF)
        if draining and wlen:
            queue = write_queue
            end = bisect_right(write_queue, probe)
            if not end:
                queue = read_queue
                end = bisect_right(read_queue, probe)
        else:
            queue = read_queue
            end = (bisect_right(read_queue, probe)
                   if read_queue else 0)
            if not end:
                queue = write_queue
                end = bisect_right(write_queue, probe)
        if end > 1:
            for pick in range(end):
                entry = queue[pick]
                if bank_open[entry[2]] == entry[3]:
                    break
            else:
                pick = 0
                entry = queue[0]
            del queue[pick]
        else:
            entry = queue[0]
            del queue[0]
        (arrival, rid, flat, row, serviced_read, address,
         core_i, ri, ci, group) = entry
        if serviced_read:
            # --- read forwarding out of the write queue ---------------
            forwarded = False
            if writes_by_addr:
                pending = writes_by_addr.get(address)
                if pending:
                    for w in pending:
                        if w[0] <= arrival:
                            forwarded = True
                            break
            if forwarded:
                completion = ((now if now > arrival else arrival)
                              + forward_latency)
                completion_c[rid] = completion
                stat_reads += 1
                stat_forwarded += 1
        else:
            writes_by_addr[address].remove((arrival, rid))
            forwarded = False
        if not forwarded:
            # --- service (command timing) -----------------------------
            earliest = now
            if arrival > earliest:
                earliest = arrival
            ready = bank_ready[flat]
            if ready > earliest:
                earliest = ready
            if bank_open[flat] == row:
                stat_hits += 1
                cas_start = earliest
            else:
                stat_misses += 1
                act_start = earliest
                closes_row = bank_open[flat] is not None
                if closes_row:
                    pre_start = bank_act[flat] + tRAS
                    if earliest > pre_start:
                        pre_start = earliest
                    act_start = pre_start + tRP
                # Inlined RankTimeline.faw_constraint + record_act.
                acts = rank_acts[ri]
                cutoff = act_start - tFAW
                recent = [t for t in acts if t > cutoff]
                rank_acts[ri] = acts = recent[-8:]
                if len(recent) >= 4:
                    faw = recent[-4] + tFAW
                    if faw > act_start:
                        act_start = faw
                acts.append(act_start)
                if len(acts) > 8:
                    del acts[0]
                if observer is not None:
                    if closes_row:
                        observer.on_command(PreCommand(flat, pre_start))
                    observer.on_command(ActCommand(
                        flat, ri, ci, group, row, act_start))
                bank_open[flat] = row
                bank_act[flat] = act_start
                stat_acts += 1
                activation_nj += act_e
                cas_start = act_start + tRCD
                # Inlined MemoryController._run_mitigation + action
                # executors, over the columnar bank state.
                if act_start >= next_window:
                    mitigation.on_refresh_window(act_start)
                    next_window += tREFW
                actions = on_activation(flat, row, act_start)
                if actions:
                    for action in actions:
                        if isinstance(action, PreventiveRefresh):
                            fb = action.flat_bank
                            aggressor = action.aggressor_row
                            victims = [aggressor + d
                                       for d in action.victim_offsets
                                       if 0 <= aggressor + d < rows_per_bank]
                            if observer is not None:
                                observer.on_command(MitigationRequest(
                                    fb, aggressor, "refresh", tuple(victims),
                                    len(victims), act_start))
                            ready = bank_ready[fb]
                            start = ready if ready > now else now
                            duration = 0.0
                            for victim in victims:
                                tras_ns, full = preventive_tras_ns(
                                    fb, victim, start)
                                if observer is not None:
                                    observer.on_command(PreventiveRefreshCmd(
                                        fb, victim, start + duration, tras_ns,
                                        full))
                                duration += tras_ns + tRP
                                if tras_ns <= 0:
                                    raise SimulationError(
                                        "non-positive tRAS in energy model")
                                preventive_nj += 1 * (
                                    E_ACT_BASE_NJ
                                    + E_RESTORE_PER_NS * tras_ns)
                                stat_prev_rows += 1
                                if full:
                                    stat_prev_full += 1
                                else:
                                    stat_prev_partial += 1
                            bank_ready[fb] = start + duration
                            bank_prev_busy[fb] += duration
                            bank_open[fb] = None
                        elif isinstance(action, RfmCommand):
                            fb = action.flat_bank
                            if observer is not None:
                                observer.on_command(MitigationRequest(
                                    fb, -1, "rfm", (), action.victim_rows,
                                    act_start))
                            ready = bank_ready[fb]
                            start = ready if ready > now else now
                            duration = 0.0
                            for _ in range(action.victim_rows):
                                tras_ns, full = preventive_tras_ns(
                                    fb, -1, start)
                                if observer is not None:
                                    observer.on_command(PreventiveRefreshCmd(
                                        fb, -1, start + duration, tras_ns,
                                        full))
                                duration += tras_ns + tRP
                                if tras_ns <= 0:
                                    raise SimulationError(
                                        "non-positive tRAS in energy model")
                                preventive_nj += 1 * (
                                    E_ACT_BASE_NJ
                                    + E_RESTORE_PER_NS * tras_ns)
                                stat_prev_rows += 1
                                if full:
                                    stat_prev_full += 1
                                else:
                                    stat_prev_partial += 1
                            stat_rfm += 1
                            if action.is_backoff:
                                stat_backoff += 1
                            bank_ready[fb] = start + duration
                            bank_prev_busy[fb] += duration
                            bank_open[fb] = None
                        elif isinstance(action, MetadataAccess):
                            fb = action.flat_bank
                            ready = bank_ready[fb]
                            start = ready if ready > now else now
                            total = ((action.reads + action.writes)
                                     * metadata_per_access)
                            if observer is not None:
                                observer.on_command(MetadataCmd(
                                    fb, start, total, action.reads,
                                    action.writes))
                            bank_ready[fb] = start + total
                            bank_open[fb] = None
                            stat_meta_reads += action.reads
                            stat_meta_writes += action.writes
                            metadata_nj += (action.reads * E_READ_NJ
                                            + action.writes * E_WRITE_NJ)
                        else:  # pragma: no cover - exhaustive over Action
                            raise SimulationError(
                                f"unknown mitigation action {action!r}")
                    # Mitigation actions may have pushed the bank's ready
                    # time.
                    ready = bank_ready[flat]
                    if ready > cas_start:
                        cas_start = ready
            # Inlined ChannelTimeline.cas_constraint.
            spacing = tCCD_L if group == chan_last_group[ci] else tCCD
            constrained = chan_last_cas[ci] + spacing
            if constrained > cas_start:
                cas_start = constrained
            chan_last_cas[ci] = cas_start
            chan_last_group[ci] = group
            if observer is not None:
                observer.on_command(CasCommand(
                    flat, ci, group, row, cas_start, not serviced_read))
            # Inlined ChannelTimeline.reserve_bus.
            burst_earliest = cas_start + tCL
            bus_free = chan_bus_free[ci]
            burst_start = (burst_earliest if burst_earliest > bus_free
                           else bus_free)
            data_done = burst_start + tBL
            chan_bus_free[ci] = data_done
            if serviced_read:
                stat_reads += 1
                read_nj += E_READ_NJ
            else:
                stat_writes += 1
                write_nj += E_WRITE_NJ
                data_done += tWR
            completion_c[rid] = data_done
            blocked = cas_start + tCCD + act_penalty
            if blocked > bank_ready[flat]:
                bank_ready[flat] = blocked
            if cas_start > now:
                now = cas_start
        stall_guard = 0
        if serviced_read:
            done = completion_c[rid]
            lat_values.append(done - arrival)
            core = cores[core_i]
            if done > core._last_completion_ns:
                core._last_completion_ns = done
            if rid == core._stall_rid:
                core.pump()

    # --- flush columnar state back to the shared objects --------------
    for fb, bank in enumerate(ctrl.banks):
        bank.open_row = bank_open[fb]
        bank.ready_ns = bank_ready[fb]
        bank.act_ns = bank_act[fb]
        bank.preventive_busy_ns = bank_prev_busy[fb]
        bank.refresh_busy_ns = bank_refresh_busy[fb]
    for ri, rank in enumerate(ctrl.ranks):
        rank.next_refresh_ns = rank_next_ref[ri]
        rank.recent_acts = rank_acts[ri]
    for ci, channel in enumerate(ctrl.channels):
        channel.bus_free_ns = chan_bus_free[ci]
        channel.last_cas_ns = chan_last_cas[ci]
        channel.last_cas_group = chan_last_group[ci]
    stats.reads = stat_reads
    stats.writes = stat_writes
    stats.forwarded_reads = stat_forwarded
    stats.row_hits = stat_hits
    stats.row_misses = stat_misses
    stats.activations = stat_acts
    stats.periodic_refreshes = stat_periodic
    stats.preventive_refresh_rows = stat_prev_rows
    stats.preventive_refresh_full = stat_prev_full
    stats.preventive_refresh_partial = stat_prev_partial
    stats.rfm_commands = stat_rfm
    stats.backoff_events = stat_backoff
    stats.metadata_reads = stat_meta_reads
    stats.metadata_writes = stat_meta_writes
    energy.activation_nj = activation_nj
    energy.read_nj = read_nj
    energy.write_nj = write_nj
    energy.periodic_refresh_nj = periodic_nj
    energy.preventive_refresh_nj = preventive_nj
    energy.metadata_nj = metadata_nj
    if lat_values:
        lat_counts = latency._counts
        lat_get = lat_counts.get
        values, counts = np.unique(np.asarray(lat_values),
                                   return_counts=True)
        for value, occurrences in zip(values.tolist(), counts.tolist()):
            lat_counts[value] = lat_get(value, 0) + occurrences
        latency.count += len(lat_values)
    ctrl.now_ns = now
    ctrl._next_refresh_window_ns = next_window
    ctrl._draining_writes = draining
    return [core.stats() for core in cores]
