"""Structure-of-arrays system-simulation drain loop (the sim ``array`` tier).

The batched kernel (:mod:`repro.sim.kernels`) already avoids per-request
dataclass churn, but still pays for one ``__slots__`` record per request,
attribute-keyed ``insort``/``bisect`` calls, one Python mitigation call per
activation, and a method call into the bank/rank/channel timeline objects
for every timing constraint.  This module keeps the whole simulation state
columnar and dispatches the shared per-request costs in bulk:

* :class:`ArrayCore` precomputes each request's frontend fetch time and
  retirement position once per trace (the frontend chain is independent
  of load completions — window stalls gate *emission*, not the chain);
  the per-core emission cursors live in parallel lists inside
  :func:`service_array`, so resuming a window-stalled core after a read
  completion runs one small closure over flat lists instead of a method
  with an attribute-bound prologue;
* a queued request is one self-contained tuple ``(arrival, rid, flat,
  row, is_read, address, core, rank, channel, group)`` whose native
  ordering reproduces the scalar queue's arrival-then-FCFS order (rids
  increase in enqueue order).  The FR-FCFS pick reads the two queue heads
  directly and only falls back to a ``bisect`` scan when more than one
  request has actually arrived — the common case (short queues, sparse
  arrivals) never builds a probe tuple at all;
* **epoch mitigation dispatch**: between action boundaries the kernel
  asks the mechanism for its :meth:`~repro.mitigations.base.
  MitigationMechanism.epoch_credit` — how many upcoming activations are
  guaranteed action-free — buffers that many activations as plain column
  appends (or a bare count for trace-free mechanisms like NoMitigation
  and PARA), and flushes them through ``on_activation_epoch`` in one
  call.  Only the boundary activation after the credit runs the scalar
  ``on_activation`` step, so every decision that can produce an action is
  made by the exact scalar code path, in order, on the same state and
  rng stream;
* bank / rank / channel timing state is held in flat lists, with the
  timeline methods (``faw_constraint``, ``cas_constraint``,
  ``reserve_bus``, ``occupy``) and the controller's mitigation-action and
  periodic-refresh executors inlined over them in the scalar expression
  order, then flushed back to the controller objects on exit.  The tFAW
  window check collapses to one comparison against the fourth-newest ACT
  time (per-rank ACT starts are strictly increasing, so the bounded
  recent-ACT list is always sorted and the in-window filter is implied
  by the comparison itself);
* per-request latency bookkeeping folds once per run through the
  ``np.unique`` accumulator (value-histogram) pattern rather than one
  ``LatencyAccumulator.add`` call per read.

A note on numpy in the hot loop: the request queues are bounded by the
instruction window and queue depth (tens of entries), and at that size
C-level ``bisect``/``insort`` on native tuples beats ``np.searchsorted``
(which pays ~1us of per-call machinery regardless of array size).  The
numpy wins live where work amortizes: whole-trace decode and frontend
prefix sums at core construction, per-epoch ``np.unique`` aggregation in
the mitigation tables, and the end-of-run latency fold.

Same contract as the batched kernel: the same operations in the same
order on the same plugin objects, so results — stats, energies, latency
histogram, observer event streams — are bit-identical to the scalar
oracle (the parity suites assert it).
"""

from __future__ import annotations

from bisect import bisect_right, insort_right
from collections import deque
from itertools import repeat
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SimulationError
from repro.mitigations.base import (
    MetadataAccess,
    PreventiveRefresh,
    RfmCommand,
)
from repro.sim.commands import (
    ActCommand,
    CasCommand,
    MetadataCmd,
    MitigationRequest,
    PreCommand,
    PreventiveRefreshCmd,
    RefCommand,
)
from repro.sim.core import CoreModel
from repro.sim.energy import (
    E_ACT_BASE_NJ,
    E_READ_NJ,
    E_RESTORE_PER_NS,
    E_WRITE_NJ,
)
from repro.sim.stats import CoreStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import MemorySystem, SimulationResult

_INF = float("inf")


class SharedQueues:
    """The queues and per-request completion column shared by all cores."""

    __slots__ = ("read_queue", "write_queue", "writes_by_addr", "completion")

    def __init__(self) -> None:
        #: Entries: (arrival, rid, flat, row, is_read, address, core,
        #: rank, channel, group).  Rids are globally unique and increase
        #: in enqueue order, so native tuple ordering is arrival-then-FCFS
        #: — the scalar queue's tie-break — and the scheduling fields ride
        #: along without a per-request record.
        self.read_queue: list[tuple] = []
        self.write_queue: list[tuple] = []
        #: Pending queued writes per address as (arrival, rid) pairs, in
        #: enqueue order, for read forwarding.
        self.writes_by_addr: dict[int, list[tuple[float, int]]] = {}
        #: Completion time per rid (−1.0 while in flight) — the one
        #: per-request column, polled by the cores' window model.
        self.completion: list[float] = []


class ArrayCore:
    """Columnar replica of :class:`repro.sim.core.CoreModel`.

    Beyond :class:`repro.sim.kernels.BatchCore`'s vectorized decode, the
    whole frontend timing chain is precomputed: ``fetch_done[i]`` depends
    only on the bubble counts (the window stall pauses *emission*, never
    the chain), so it is accumulated once — float-op order identical to
    the per-pump accumulation.  Emission itself (window checks, issue
    floor, insort into the shared queues) is run by
    :func:`service_array`'s pump closure over flat per-core state; the
    final cursor values are written back here so :meth:`stats` sees them.
    """

    __slots__ = ("core_id", "_clock_ghz", "_window", "_n", "_tails",
                 "_fetch_done", "_positions", "_final_frontend",
                 "_index", "_issue_floor_ns", "_inflight",
                 "_last_completion_ns", "_shared", "_stall_rid")

    def __init__(self, core: CoreModel, shared: SharedQueues) -> None:
        config = core.config
        mapper = core.mapper
        trace = core.trace
        self.core_id = core.core_id
        self._clock_ghz = config.core_clock_ghz
        self._window = config.instruction_window
        self._n = len(trace)
        self._shared = shared
        bubbles = trace.bubbles
        addresses = (trace.addresses.astype(np.int64, copy=False)
                     + core.address_offset)
        # Same vectorized MOP decode as BatchCore (one pass per trace).
        value = addresses % mapper.total_lines
        value >>= mapper._col_low_bits
        channel = value & (config.channels - 1)
        value >>= mapper._channel_bits
        bank = value & (config.banks_per_group - 1)
        value >>= mapper._bank_bits
        group = value & (config.bank_groups - 1)
        value >>= mapper._group_bits
        rank = value & (config.ranks - 1)
        value >>= mapper._rank_bits
        value >>= mapper._col_high_bits
        rank_channel = rank + config.ranks * channel
        flat = bank + config.banks_per_group * (
            group + config.bank_groups * rank_channel)
        # The static tail of each queue entry — (flat, row, is_read,
        # address, core, rank, channel, group) — zipped once, so emission
        # builds an entry with a single concat instead of eight column
        # reads.
        self._tails = list(zip(
            flat.tolist(), value.tolist(),
            np.logical_not(trace.is_write).tolist(), addresses.tolist(),
            repeat(self.core_id), rank_channel.tolist(), channel.tolist(),
            group.tolist()))
        # position_i = i + sum(bubbles[:i+1]) — integer arithmetic, exact.
        self._positions = (np.cumsum(bubbles)
                           + np.arange(self._n, dtype=np.int64)).tolist()
        # The frontend chain alternates two additions per request —
        # fetch_done = frontend + b*cycle/width; frontend = fetch_done +
        # step — so the running value is the prefix sum of the interleaved
        # term sequence [t_0, step, t_1, step, ...].  np.cumsum (ufunc
        # accumulate) adds strictly left to right, which is exactly the
        # scalar accumulation order, so the precomputed chain is
        # bit-identical to the per-pump one.
        cycle = config.core_cycle_ns
        width = config.issue_width
        step = cycle / width
        terms = np.empty(2 * self._n, dtype=np.float64)
        terms[0::2] = bubbles * cycle / width
        terms[1::2] = step
        chain = np.cumsum(terms)
        self._fetch_done = chain[0::2].tolist()
        self._final_frontend = float(chain[-1]) if self._n else 0.0
        self._index = 0
        self._issue_floor_ns = 0.0
        #: (position, rid) of in-flight reads, oldest first.
        self._inflight: deque[tuple[int, int]] = deque()
        self._last_completion_ns = 0.0
        #: Rid of the read this core is window-stalled on (-1 when the
        #: trace is drained).  A completion of any other rid cannot
        #: unblock emission, so the drain loop skips the pump entirely.
        self._stall_rid = -1

    def finished(self) -> bool:
        if self._index < self._n:
            return False
        completion = self._shared.completion
        for _, rid in self._inflight:
            if completion[rid] < 0:
                return False
        return True

    def stats(self) -> CoreStats:
        if not self.finished():
            raise SimulationError(f"core {self.core_id} has not finished")
        elapsed = max(self._final_frontend, self._last_completion_ns)
        instructions = self._positions[-1] + 1 if self._n else 0
        return CoreStats(core=self.core_id,
                         instructions=instructions,
                         elapsed_ns=elapsed,
                         core_clock_ghz=self._clock_ghz)


def run_array(system: "MemorySystem") -> "SimulationResult":
    """Run a :class:`MemorySystem` through the SoA drain loop."""
    shared = SharedQueues()
    cores = [ArrayCore(core, shared) for core in system.cores]
    core_stats = service_array(system, cores, shared)
    return system._collect(core_stats)


def service_array(system: "MemorySystem", cores: list[ArrayCore],
                  shared: SharedQueues) -> list[CoreStats]:
    """Drain every core's trace through the SoA controller state.

    Mirrors :func:`repro.sim.kernels.service_batch` — itself a mirror of
    ``MemorySystem._run_scalar`` + ``MemoryController.service_one`` — with
    the timeline objects' state unpacked into flat lists, every timing
    method inlined in its exact expression order, and mitigation calls
    batched into credit-guaranteed epochs.  All state is flushed back to
    the controller objects before returning.
    """
    ctrl = system.controller
    config = system.config
    timing = ctrl.timing
    tRAS = timing.tRAS
    tRP = timing.tRP
    tRCD = timing.tRCD
    tCL = timing.tCL
    tBL = timing.tBL
    tWR = timing.tWR
    tFAW = timing.tFAW
    tCCD = timing.tCCD
    tCCD_L = timing.tCCD_L
    tRFC = timing.tRFC
    tREFI = timing.tREFI
    tREFW = timing.tREFW
    forward_latency = ctrl.FORWARD_LATENCY_NS
    observer = ctrl.observer
    mitigation = ctrl.mitigation
    on_activation = mitigation.on_activation
    on_activation_epoch = mitigation.on_activation_epoch
    epoch_credit = mitigation.epoch_credit
    on_refresh_window = mitigation.on_refresh_window
    epoch_trace = mitigation.epoch_needs_trace
    epoch_rows_on = epoch_trace and mitigation.epoch_needs_rows
    epoch_times_on = epoch_trace and mitigation.epoch_needs_times
    act_penalty = mitigation.act_penalty_ns
    policy = ctrl.policy
    preventive_tras_ns = policy.preventive_tras_ns
    rows_per_bank = config.rows_per_bank
    rows_per_ref = ctrl._rows_per_periodic_refresh
    banks_per_rank = config.banks_per_rank
    metadata_per_access = tRP + tRCD + tCL + tBL
    energy = ctrl.energy
    act_e = energy.act_energy(tRAS)
    stats = ctrl.stats
    high_mark = config.write_queue_depth * config.write_high_watermark
    low_mark = config.write_queue_depth * config.write_low_watermark

    # --- columnar controller state (flushed back at the end) ----------
    bank_open = [b.open_row for b in ctrl.banks]
    bank_ready = [b.ready_ns for b in ctrl.banks]
    bank_act = [b.act_ns for b in ctrl.banks]
    bank_prev_busy = [b.preventive_busy_ns for b in ctrl.banks]
    bank_refresh_busy = [b.refresh_busy_ns for b in ctrl.banks]
    rank_next_ref = [r.next_refresh_ns for r in ctrl.ranks]
    rank_acts = [r.recent_acts for r in ctrl.ranks]
    chan_bus_free = [c.bus_free_ns for c in ctrl.channels]
    chan_last_cas = [c.last_cas_ns for c in ctrl.channels]
    chan_last_group = [c.last_cas_group for c in ctrl.channels]
    now = ctrl.now_ns
    next_window = ctrl._next_refresh_window_ns
    draining = ctrl._draining_writes
    next_refresh = min(rank_next_ref)

    # Local accumulators seeded from (and flushed back to) the shared
    # state: the addition sequence per counter matches the scalar path.
    stat_reads = stats.reads
    stat_writes = stats.writes
    stat_forwarded = stats.forwarded_reads
    stat_hits = stats.row_hits
    stat_misses = stats.row_misses
    stat_acts = stats.activations
    stat_periodic = stats.periodic_refreshes
    stat_prev_rows = stats.preventive_refresh_rows
    stat_prev_full = stats.preventive_refresh_full
    stat_prev_partial = stats.preventive_refresh_partial
    stat_rfm = stats.rfm_commands
    stat_backoff = stats.backoff_events
    stat_meta_reads = stats.metadata_reads
    stat_meta_writes = stats.metadata_writes
    activation_nj = energy.activation_nj
    read_nj = energy.read_nj
    write_nj = energy.write_nj
    periodic_nj = energy.periodic_refresh_nj
    preventive_nj = energy.preventive_refresh_nj
    metadata_nj = energy.metadata_nj
    latency = system._latency
    #: Raw read latencies, folded into the value histogram at flush time
    #: (np.unique); the histogram content and count are exactly what
    #: per-read ``LatencyAccumulator.add`` calls would produce, and
    #: ``summary()`` sorts its items so insertion order is immaterial.
    lat_values: list[float] = []
    lat_append = lat_values.append

    read_queue = shared.read_queue
    write_queue = shared.write_queue
    writes_by_addr = shared.writes_by_addr
    completion_c = shared.completion

    # --- per-core emission state, SoA ---------------------------------
    # All cursors live in parallel lists so the pump closure below binds
    # everything it touches as default arguments (true locals — no cell
    # lookups, no per-call attribute prologue).  Final values are written
    # back to the ArrayCore objects after the drain.
    n_cores = len(cores)
    core_index = [c._index for c in cores]
    core_n = [c._n for c in cores]
    core_floor = [c._issue_floor_ns for c in cores]
    core_lastc = [c._last_completion_ns for c in cores]
    core_stall = [c._stall_rid for c in cores]
    core_inflight = [c._inflight for c in cores]
    core_positions = [c._positions for c in cores]
    core_fetch = [c._fetch_done for c in cores]
    core_tails = [c._tails for c in cores]
    window = config.instruction_window

    def _pump_core(c, *, core_index=core_index, core_n=core_n,
                   core_floor=core_floor, core_lastc=core_lastc,
                   core_stall=core_stall, core_inflight=core_inflight,
                   core_positions=core_positions, core_fetch=core_fetch,
                   core_tails=core_tails, completion=completion_c,
                   read_queue=read_queue, write_queue=write_queue,
                   writes_by_addr=writes_by_addr, window=window,
                   insort_right=insort_right):
        """Emit core ``c``'s requests until it stalls or drains.

        Identical walk to the scalar core's pump: requests whose issue
        time is determined go straight into the shared queues in emission
        order.  Returns how many requests were emitted.  Only the initial
        fill and the idle re-pump call this; the completion path runs the
        same walk inlined on the drain loop's own locals.
        """
        i = core_index[c]
        n = core_n[c]
        if i >= n:
            return 0
        inflight = core_inflight[c]
        positions = core_positions[c]
        fetch_done = core_fetch[c]
        tails = core_tails[c]
        floor = core_floor[c]
        last_completion = core_lastc[c]
        emitted = 0
        stall = -1
        while i < n:
            position = positions[i]
            if inflight:
                head_position, head_rid = inflight[0]
                if position - head_position >= window:
                    done = completion[head_rid]
                    if done < 0.0:
                        stall = head_rid
                        break  # stalled: resume after the head completes
                    if done > floor:
                        floor = done
                    inflight.popleft()
                    if done > last_completion:
                        last_completion = done
                    continue
            done = fetch_done[i]
            arrival = done if done > floor else floor
            rid = len(completion)
            completion.append(-1.0)
            tail = tails[i]
            entry = (arrival, rid) + tail
            if tail[2]:  # is_read
                inflight.append((position, rid))
                insort_right(read_queue, entry)
            else:
                insort_right(write_queue, entry)
                address = tail[3]
                pending = writes_by_addr.get(address)
                if pending is None:
                    writes_by_addr[address] = [(arrival, rid)]
                else:
                    pending.append((arrival, rid))
            emitted += 1
            i += 1
        core_index[c] = i
        core_floor[c] = floor
        core_lastc[c] = last_completion
        core_stall[c] = stall
        return emitted

    def _apply_refresh(now, periodic_nj, stat_periodic, *,
                       rank_next_ref=rank_next_ref, policy=policy,
                       observer=observer, tRFC=tRFC, tRAS=tRAS,
                       tREFI=tREFI, rows_per_ref=rows_per_ref,
                       banks_per_rank=banks_per_rank,
                       bank_ready=bank_ready, bank_open=bank_open,
                       bank_refresh_busy=bank_refresh_busy):
        """Inlined MemoryController._apply_periodic_refresh (cold path)."""
        for ri in range(len(rank_next_ref)):
            while rank_next_ref[ri] <= now:
                start = rank_next_ref[ri]
                scale = policy.periodic_refresh_scale()
                trfc = tRFC * scale
                if observer is not None:
                    observer.on_command(RefCommand(ri, start, trfc))
                ref_tras = tRAS * scale
                if ref_tras <= 0:
                    raise SimulationError(
                        "non-positive tRAS in energy model")
                ref_e = rows_per_ref * (E_ACT_BASE_NJ
                                        + E_RESTORE_PER_NS * ref_tras)
                lo = ri * banks_per_rank
                for fb in range(lo, lo + banks_per_rank):
                    ready = bank_ready[fb]
                    busy_from = ready if ready > start else start
                    bank_ready[fb] = busy_from + trfc
                    bank_refresh_busy[fb] += trfc
                    bank_open[fb] = None
                    periodic_nj += ref_e
                stat_periodic += 1
                rank_next_ref[ri] += tREFI
        return min(rank_next_ref), periodic_nj, stat_periodic

    # --- mitigation epoch buffers -------------------------------------
    # While the mechanism's credit lasts, activations are buffered here
    # (plain appends; a bare count when the mechanism is trace-free) and
    # flushed through on_activation_epoch in one call at the boundary.
    # Columns the mechanism declared it never reads (epoch_needs_rows /
    # epoch_needs_times) are not buffered at all — one fewer append per
    # activation — and flush as None.
    epoch_banks: list[int] = []
    epoch_rows: list[int] = []
    epoch_times: list[float] = []
    eb_append = epoch_banks.append
    er_append = epoch_rows.append
    et_append = epoch_times.append

    def _flush_epoch(n, *, on_activation_epoch=on_activation_epoch,
                     epoch_trace=epoch_trace, epoch_banks=epoch_banks,
                     epoch_rows=epoch_rows, epoch_times=epoch_times,
                     epoch_rows_on=epoch_rows_on,
                     epoch_times_on=epoch_times_on):
        """Flush ``n`` buffered activations through the epoch API.

        The buffered run is inside the mechanism's credited action-free
        window, so a trigger here means the mechanism over-promised —
        that is a contract violation, not a recoverable state.
        """
        if epoch_trace:
            triggers, actions = on_activation_epoch(
                epoch_banks,
                epoch_rows if epoch_rows_on else None,
                epoch_times if epoch_times_on else None)
            epoch_banks.clear()
            epoch_rows.clear()
            epoch_times.clear()
        else:
            triggers, actions = on_activation_epoch(None, None, None,
                                                    count=n)
        if triggers or actions:
            raise SimulationError(
                f"{type(mitigation).__name__} produced actions inside a "
                "credit-guaranteed epoch (epoch_credit over-promised)")

    epoch_left = epoch_credit()
    epoch_n = 0

    for c in range(n_cores):
        _pump_core(c)

    stall_guard = 0
    fast_entry = None
    while True:
        if fast_entry is not None:
            # Pre-picked by the bottom-of-loop fast path: the queues held
            # exactly this one (read) entry, no refresh falls before its
            # service time, and ``now`` has already been advanced -- the
            # gate/watermark/pick stages below would all be no-ops.
            entry = fast_entry
            fast_entry = None
        else:
            if now >= next_refresh:
                next_refresh, periodic_nj, stat_periodic = _apply_refresh(
                    now, periodic_nj, stat_periodic)
            # --- arrival gate -----------------------------------------
            # Nothing is serviceable before the earliest queued arrival,
            # so jump straight there off the O(1) queue heads.  Refresh
            # is re-checked after the jump (the scalar loop applies
            # refreshes due at the pre-advance time first; the duplicated
            # check keeps that event order).
            rhead = read_queue[0][0] if read_queue else _INF
            whead = write_queue[0][0] if write_queue else _INF
            if rhead <= whead:
                if rhead == _INF:
                    # Both queues empty: every emitted request is
                    # serviced (its completion is set), so a core is
                    # finished iff its cursor reached the end of its
                    # trace.
                    if all(core_index[c] >= core_n[c]
                           for c in range(n_cores)):
                        break
                    produced = 0
                    for c in range(n_cores):
                        produced += _pump_core(c)
                    stall_guard += 1
                    if produced == 0 and stall_guard > 2:
                        raise SimulationError(
                            "deadlock: cores unfinished but no requests "
                            "pending")
                    continue
                next_arrival = rhead
            else:
                next_arrival = whead
            if next_arrival > now:
                now = next_arrival
                if now >= next_refresh:
                    next_refresh, periodic_nj, stat_periodic = (
                        _apply_refresh(now, periodic_nj, stat_periodic))
            wlen = len(write_queue)
            if wlen >= high_mark:
                draining = True
            elif wlen <= low_mark:
                draining = False
            # --- pick (FR-FCFS over the arrived prefix) ---------------
            # The gate guarantees at least one head has arrived.  Queue
            # preference first (write drain, else reads), then a row-hit
            # scan over the arrived prefix -- but only when a second
            # entry has actually arrived; the common case services the
            # head directly without a probe tuple or bisect.
            if draining and whead <= now:
                queue = write_queue
            elif rhead <= now:
                queue = read_queue
            else:
                queue = write_queue
            if len(queue) > 1 and queue[1][0] <= now:
                end = bisect_right(queue, (now, _INF))
                for pick in range(end):
                    entry = queue[pick]
                    if bank_open[entry[2]] == entry[3]:
                        break
                else:
                    pick = 0
                entry = queue.pop(pick)
            else:
                entry = queue.pop(0)
        (arrival, rid, flat, row, serviced_read, address,
         core_i, ri, ci, group) = entry
        if serviced_read:
            # --- read forwarding out of the write queue ---------------
            forwarded = False
            if writes_by_addr:
                pending = writes_by_addr.get(address)
                if pending:
                    for w in pending:
                        if w[0] <= arrival:
                            forwarded = True
                            break
            if forwarded:
                data_done = ((now if now > arrival else arrival)
                             + forward_latency)
                completion_c[rid] = data_done
                stat_reads += 1
                stat_forwarded += 1
        else:
            writes_by_addr[address].remove((arrival, rid))
            forwarded = False
        if not forwarded:
            # --- service (command timing) -----------------------------
            earliest = now
            if arrival > earliest:
                earliest = arrival
            ready = bank_ready[flat]
            if ready > earliest:
                earliest = ready
            if bank_open[flat] == row:
                stat_hits += 1
                cas_start = earliest
            else:
                stat_misses += 1
                act_start = earliest
                closes_row = bank_open[flat] is not None
                if closes_row:
                    pre_start = bank_act[flat] + tRAS
                    if earliest > pre_start:
                        pre_start = earliest
                    act_start = pre_start + tRP
                # Inlined RankTimeline.faw_constraint + record_act.  ACT
                # starts per rank are strictly increasing (the next ACT
                # begins after the previous CAS), so the recent-ACT list
                # is always sorted and the constraint reduces to the
                # fourth-newest entry: it binds iff acts[-4] + tFAW >
                # act_start, which is exactly "at least four ACTs within
                # the window" — entries older than the window can never
                # satisfy the comparison.  The list keeps the newest <= 8
                # entries (a superset suffix of the scalar's in-window
                # trim with the identical tail), constraint-equivalent
                # for every future query.
                acts = rank_acts[ri]
                if len(acts) >= 4:
                    faw = acts[-4] + tFAW
                    if faw > act_start:
                        act_start = faw
                acts.append(act_start)
                if len(acts) > 8:
                    del acts[0]
                if observer is not None:
                    if closes_row:
                        observer.on_command(PreCommand(flat, pre_start))
                    observer.on_command(ActCommand(
                        flat, ri, ci, group, row, act_start))
                bank_open[flat] = row
                bank_act[flat] = act_start
                stat_acts += 1
                activation_nj += act_e
                cas_start = act_start + tRCD
                # Inlined MemoryController._run_mitigation, batched into
                # credit-guaranteed epochs: buffered activations cannot
                # produce actions, so only the boundary step below runs
                # Python mitigation code.
                if act_start >= next_window:
                    if epoch_n:
                        _flush_epoch(epoch_n)
                        epoch_n = 0
                    on_refresh_window(act_start)
                    next_window += tREFW
                    epoch_left = epoch_credit()
                if epoch_left:
                    epoch_left -= 1
                    epoch_n += 1
                    if epoch_trace:
                        eb_append(flat)
                        if epoch_rows_on:
                            er_append(row)
                        if epoch_times_on:
                            et_append(act_start)
                else:
                    if epoch_n:
                        _flush_epoch(epoch_n)
                        epoch_n = 0
                    actions = on_activation(flat, row, act_start)
                    epoch_left = epoch_credit()
                    if actions:
                        for action in actions:
                            if isinstance(action, PreventiveRefresh):
                                fb = action.flat_bank
                                aggressor = action.aggressor_row
                                victims = [
                                    aggressor + d
                                    for d in action.victim_offsets
                                    if 0 <= aggressor + d < rows_per_bank]
                                if observer is not None:
                                    observer.on_command(MitigationRequest(
                                        fb, aggressor, "refresh",
                                        tuple(victims), len(victims),
                                        act_start))
                                ready = bank_ready[fb]
                                start = ready if ready > now else now
                                duration = 0.0
                                for victim in victims:
                                    tras_ns, full = preventive_tras_ns(
                                        fb, victim, start)
                                    if observer is not None:
                                        observer.on_command(
                                            PreventiveRefreshCmd(
                                                fb, victim,
                                                start + duration, tras_ns,
                                                full))
                                    duration += tras_ns + tRP
                                    if tras_ns <= 0:
                                        raise SimulationError(
                                            "non-positive tRAS in energy "
                                            "model")
                                    preventive_nj += 1 * (
                                        E_ACT_BASE_NJ
                                        + E_RESTORE_PER_NS * tras_ns)
                                    stat_prev_rows += 1
                                    if full:
                                        stat_prev_full += 1
                                    else:
                                        stat_prev_partial += 1
                                bank_ready[fb] = start + duration
                                bank_prev_busy[fb] += duration
                                bank_open[fb] = None
                            elif isinstance(action, RfmCommand):
                                fb = action.flat_bank
                                if observer is not None:
                                    observer.on_command(MitigationRequest(
                                        fb, -1, "rfm", (),
                                        action.victim_rows, act_start))
                                ready = bank_ready[fb]
                                start = ready if ready > now else now
                                duration = 0.0
                                for _ in range(action.victim_rows):
                                    tras_ns, full = preventive_tras_ns(
                                        fb, -1, start)
                                    if observer is not None:
                                        observer.on_command(
                                            PreventiveRefreshCmd(
                                                fb, -1, start + duration,
                                                tras_ns, full))
                                    duration += tras_ns + tRP
                                    if tras_ns <= 0:
                                        raise SimulationError(
                                            "non-positive tRAS in energy "
                                            "model")
                                    preventive_nj += 1 * (
                                        E_ACT_BASE_NJ
                                        + E_RESTORE_PER_NS * tras_ns)
                                    stat_prev_rows += 1
                                    if full:
                                        stat_prev_full += 1
                                    else:
                                        stat_prev_partial += 1
                                stat_rfm += 1
                                if action.is_backoff:
                                    stat_backoff += 1
                                bank_ready[fb] = start + duration
                                bank_prev_busy[fb] += duration
                                bank_open[fb] = None
                            elif isinstance(action, MetadataAccess):
                                fb = action.flat_bank
                                ready = bank_ready[fb]
                                start = ready if ready > now else now
                                total = ((action.reads + action.writes)
                                         * metadata_per_access)
                                if observer is not None:
                                    observer.on_command(MetadataCmd(
                                        fb, start, total, action.reads,
                                        action.writes))
                                bank_ready[fb] = start + total
                                bank_open[fb] = None
                                stat_meta_reads += action.reads
                                stat_meta_writes += action.writes
                                metadata_nj += (
                                    action.reads * E_READ_NJ
                                    + action.writes * E_WRITE_NJ)
                            else:  # pragma: no cover - exhaustive
                                raise SimulationError(
                                    f"unknown mitigation action "
                                    f"{action!r}")
                        # Mitigation actions may have pushed the bank's
                        # ready time.
                        ready = bank_ready[flat]
                        if ready > cas_start:
                            cas_start = ready
            # Inlined ChannelTimeline.cas_constraint.
            spacing = tCCD_L if group == chan_last_group[ci] else tCCD
            constrained = chan_last_cas[ci] + spacing
            if constrained > cas_start:
                cas_start = constrained
            chan_last_cas[ci] = cas_start
            chan_last_group[ci] = group
            if observer is not None:
                observer.on_command(CasCommand(
                    flat, ci, group, row, cas_start, not serviced_read))
            # Inlined ChannelTimeline.reserve_bus.
            burst_earliest = cas_start + tCL
            bus_free = chan_bus_free[ci]
            burst_start = (burst_earliest if burst_earliest > bus_free
                           else bus_free)
            data_done = burst_start + tBL
            chan_bus_free[ci] = data_done
            if serviced_read:
                stat_reads += 1
                read_nj += E_READ_NJ
            else:
                stat_writes += 1
                write_nj += E_WRITE_NJ
                data_done += tWR
            completion_c[rid] = data_done
            blocked = cas_start + tCCD + act_penalty
            if blocked > bank_ready[flat]:
                bank_ready[flat] = blocked
            if cas_start > now:
                now = cas_start
        stall_guard = 0
        if serviced_read:
            lat_append(data_done - arrival)
            if data_done > core_lastc[core_i]:
                core_lastc[core_i] = data_done
            if rid == core_stall[core_i]:
                # --- resume the window-stalled core (pump, inlined) ---
                # Same walk as _pump_core, on the loop's own locals: the
                # serviced read was the core's window stall, so this runs
                # once per stalled completion — the hottest pump site.
                i = core_index[core_i]
                n = core_n[core_i]
                inflight = core_inflight[core_i]
                positions = core_positions[core_i]
                fetch_done = core_fetch[core_i]
                tails = core_tails[core_i]
                floor = core_floor[core_i]
                last_completion = core_lastc[core_i]
                stall = -1
                while i < n:
                    position = positions[i]
                    if inflight:
                        head_position, head_rid = inflight[0]
                        if position - head_position >= window:
                            done = completion_c[head_rid]
                            if done < 0.0:
                                stall = head_rid
                                break
                            if done > floor:
                                floor = done
                            inflight.popleft()
                            if done > last_completion:
                                last_completion = done
                            continue
                    done = fetch_done[i]
                    emit_arrival = done if done > floor else floor
                    emit_rid = len(completion_c)
                    completion_c.append(-1.0)
                    tail = tails[i]
                    emit_entry = (emit_arrival, emit_rid) + tail
                    if tail[2]:  # is_read
                        inflight.append((position, emit_rid))
                        # Per-core arrivals are nondecreasing, so with
                        # one producer the common case extends the tail;
                        # insort only when another core's entry sits
                        # behind this arrival.
                        if not read_queue or emit_entry >= read_queue[-1]:
                            read_queue.append(emit_entry)
                        else:
                            insort_right(read_queue, emit_entry)
                    else:
                        insort_right(write_queue, emit_entry)
                        emit_addr = tail[3]
                        pending = writes_by_addr.get(emit_addr)
                        if pending is None:
                            writes_by_addr[emit_addr] = [
                                (emit_arrival, emit_rid)]
                        else:
                            pending.append((emit_arrival, emit_rid))
                    i += 1
                core_index[core_i] = i
                core_floor[core_i] = floor
                core_lastc[core_i] = last_completion
                core_stall[core_i] = stall
        # --- fast-path pre-pick ---------------------------------------
        # Window-serialized cores leave exactly one read queued after the
        # pump; when no write is pending and no refresh falls before its
        # service time, the next iteration's gate, watermark, and FR-FCFS
        # scan are all no-ops — pre-pick the entry and skip them.
        if len(read_queue) == 1 and not write_queue:
            head = read_queue[0]
            jump = head[0]
            if jump < now:
                jump = now
            if jump < next_refresh:
                now = jump
                del read_queue[0]
                draining = False
                fast_entry = head

    # Any trailing credit-covered activations still need to reach the
    # mechanism before its counters are read.
    if epoch_n:
        _flush_epoch(epoch_n)

    # --- flush columnar state back to the shared objects --------------
    for fb, bank in enumerate(ctrl.banks):
        bank.open_row = bank_open[fb]
        bank.ready_ns = bank_ready[fb]
        bank.act_ns = bank_act[fb]
        bank.preventive_busy_ns = bank_prev_busy[fb]
        bank.refresh_busy_ns = bank_refresh_busy[fb]
    for ri, rank in enumerate(ctrl.ranks):
        rank.next_refresh_ns = rank_next_ref[ri]
        rank.recent_acts = rank_acts[ri]
    for ci, channel in enumerate(ctrl.channels):
        channel.bus_free_ns = chan_bus_free[ci]
        channel.last_cas_ns = chan_last_cas[ci]
        channel.last_cas_group = chan_last_group[ci]
    for c, core in enumerate(cores):
        core._index = core_index[c]
        core._issue_floor_ns = core_floor[c]
        core._last_completion_ns = core_lastc[c]
        core._stall_rid = core_stall[c]
    stats.reads = stat_reads
    stats.writes = stat_writes
    stats.forwarded_reads = stat_forwarded
    stats.row_hits = stat_hits
    stats.row_misses = stat_misses
    stats.activations = stat_acts
    stats.periodic_refreshes = stat_periodic
    stats.preventive_refresh_rows = stat_prev_rows
    stats.preventive_refresh_full = stat_prev_full
    stats.preventive_refresh_partial = stat_prev_partial
    stats.rfm_commands = stat_rfm
    stats.backoff_events = stat_backoff
    stats.metadata_reads = stat_meta_reads
    stats.metadata_writes = stat_meta_writes
    energy.activation_nj = activation_nj
    energy.read_nj = read_nj
    energy.write_nj = write_nj
    energy.periodic_refresh_nj = periodic_nj
    energy.preventive_refresh_nj = preventive_nj
    energy.metadata_nj = metadata_nj
    if lat_values:
        lat_counts = latency._counts
        lat_get = lat_counts.get
        values, counts = np.unique(np.asarray(lat_values),
                                   return_counts=True)
        for value, occurrences in zip(values.tolist(), counts.tolist()):
            lat_counts[value] = lat_get(value, 0) + occurrences
        latency.count += len(lat_values)
    ctrl.now_ns = now
    ctrl._next_refresh_window_ns = next_window
    ctrl._draining_writes = draining
    return [core.stats() for core in cores]
