"""Physical-address-to-DRAM-coordinate mapping.

The paper's controller uses MOP (Minimalist Open-Page) mapping: consecutive
cache lines map to a small run of columns in one row, then interleave across
channels, bank groups, banks, and ranks before advancing the row — giving
both row-buffer locality for short bursts and bank-level parallelism across
streams.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.config import SystemConfig


@dataclass(frozen=True)
class DecodedAddress:
    """DRAM coordinates of one cache-line address."""

    channel: int
    rank: int
    bank_group: int
    bank: int
    row: int
    column: int


def _bits(value: int) -> int:
    """Number of bits needed to index ``value`` positions (value = 2^k)."""
    if value <= 0 or value & (value - 1):
        raise ConfigError(f"{value} must be a positive power of two")
    return value.bit_length() - 1


class AddressMapper:
    """MOP bit-sliced mapping between line addresses and DRAM coordinates.

    Line-address bit layout, LSB first::

        [col_low (mop run)] [channel] [bank] [bank_group] [rank] [col_high] [row]
    """

    MOP_RUN = 4  #: consecutive cache lines kept in the same row

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self._col_low_bits = _bits(self.MOP_RUN)
        self._channel_bits = _bits(config.channels)
        self._bank_bits = _bits(config.banks_per_group)
        self._group_bits = _bits(config.bank_groups)
        self._rank_bits = _bits(config.ranks)
        if config.columns_per_row < self.MOP_RUN:
            raise ConfigError("columns_per_row smaller than the MOP run")
        self._col_high_bits = _bits(config.columns_per_row // self.MOP_RUN)
        self._row_bits = _bits(config.rows_per_bank)

    @property
    def total_lines(self) -> int:
        """Number of distinct cache-line addresses in the address space."""
        return (self.config.capacity_bytes // self.config.cache_line_bytes)

    def decode(self, line_address: int) -> DecodedAddress:
        """DRAM coordinates of a cache-line address (wraps modulo capacity)."""
        value = line_address % self.total_lines
        value, col_low = divmod(value, 1 << self._col_low_bits)
        value, channel = divmod(value, 1 << self._channel_bits)
        value, bank = divmod(value, 1 << self._bank_bits)
        value, group = divmod(value, 1 << self._group_bits)
        value, rank = divmod(value, 1 << self._rank_bits)
        value, col_high = divmod(value, 1 << self._col_high_bits)
        row = value
        column = (col_high << self._col_low_bits) | col_low
        return DecodedAddress(channel=channel, rank=rank, bank_group=group,
                              bank=bank, row=row, column=column)

    def encode(self, decoded: DecodedAddress) -> int:
        """Inverse of :meth:`decode` (exact round trip)."""
        col_low = decoded.column & (self.MOP_RUN - 1)
        col_high = decoded.column >> self._col_low_bits
        value = decoded.row
        value = (value << self._col_high_bits) | col_high
        value = (value << self._rank_bits) | decoded.rank
        value = (value << self._group_bits) | decoded.bank_group
        value = (value << self._bank_bits) | decoded.bank
        value = (value << self._channel_bits) | decoded.channel
        value = (value << self._col_low_bits) | col_low
        return value

    def flat_bank_count(self) -> int:
        return self.config.total_banks

    def flat_bank_of(self, decoded: DecodedAddress) -> int:
        """Instance-method flat bank index (independent of module state)."""
        config = self.config
        return decoded.bank + config.banks_per_group * (
            decoded.bank_group + config.bank_groups * (
                decoded.rank + config.ranks * decoded.channel))
