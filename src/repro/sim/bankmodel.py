"""Per-bank and per-rank timing state for the event-driven controller."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError

#: Tolerance for float round-off when comparing command start times against
#: a bank's ready time.  Timing parameters are tens of nanoseconds, so a
#: microsecond-long simulation accumulates error far below a femtosecond;
#: a fraction of a nanosecond is orders of magnitude above any legitimate
#: round-off while still catching real scheduling bugs.
OCCUPY_EPSILON_NS = 1e-6


@dataclass
class BankTimeline:
    """Timing state of one DRAM bank.

    ``ready_ns`` is the earliest time the next command may start on this
    bank; ``open_row`` tracks the row buffer; ``act_ns`` is the time of the
    last activation (for the tRAS ready-to-precharge constraint).
    """

    open_row: int | None = None
    ready_ns: float = 0.0
    act_ns: float = float("-inf")
    #: Busy time attributable to preventive refreshes (Fig. 3 metric).
    preventive_busy_ns: float = 0.0
    #: Busy time attributable to periodic refreshes.
    refresh_busy_ns: float = 0.0
    activations: int = 0

    def block_until(self, time_ns: float) -> None:
        """Push the bank's earliest-next-command time forward."""
        if time_ns > self.ready_ns:
            self.ready_ns = time_ns

    def occupy(self, start_ns: float, duration_ns: float, *,
               preventive: bool = False, refresh: bool = False) -> float:
        """Reserve the bank for an operation; returns the end time."""
        if duration_ns < 0:
            raise SimulationError("negative occupancy")
        if start_ns < self.ready_ns - OCCUPY_EPSILON_NS:
            raise SimulationError(
                f"bank occupied at {start_ns} while busy until {self.ready_ns}")
        # Within round-off of ready: clamp up so the reservation never
        # shrinks, instead of failing a long simulation on float noise.
        start_ns = max(start_ns, self.ready_ns)
        end = start_ns + duration_ns
        self.ready_ns = end
        if preventive:
            self.preventive_busy_ns += duration_ns
        if refresh:
            self.refresh_busy_ns += duration_ns
        return end


@dataclass
class RankTimeline:
    """Rank-level shared state: periodic refresh schedule and ACT window."""

    next_refresh_ns: float = 0.0
    #: Times of recent activations (for the four-activate window, tFAW).
    recent_acts: list[float] = field(default_factory=list)

    def faw_constraint(self, now_ns: float, tfaw_ns: float) -> float:
        """Earliest time a new ACT may issue under the tFAW constraint."""
        recent = [t for t in self.recent_acts if t > now_ns - tfaw_ns]
        self.recent_acts = recent[-8:]
        if len(recent) < 4:
            return now_ns
        return recent[-4] + tfaw_ns

    def record_act(self, time_ns: float) -> None:
        self.recent_acts.append(time_ns)
        if len(self.recent_acts) > 8:
            del self.recent_acts[0]


@dataclass
class ChannelTimeline:
    """Channel-level shared state: the data bus serializes transfers, and
    back-to-back CAS commands to the *same* bank group need the long
    column-to-column spacing (tCCD_L vs tCCD_S)."""

    bus_free_ns: float = 0.0
    last_cas_ns: float = float("-inf")
    last_cas_group: int = -1

    def reserve_bus(self, earliest_ns: float, burst_ns: float) -> float:
        """Reserve a data burst; returns when the data transfer completes."""
        start = max(earliest_ns, self.bus_free_ns)
        self.bus_free_ns = start + burst_ns
        return start + burst_ns

    def cas_constraint(self, earliest_ns: float, bank_group: int,
                       tccd_s_ns: float, tccd_l_ns: float) -> float:
        """Earliest CAS issue time honoring tCCD_S/tCCD_L, recording it."""
        spacing = tccd_l_ns if bank_group == self.last_cas_group else tccd_s_ns
        start = max(earliest_ns, self.last_cas_ns + spacing)
        self.last_cas_ns = start
        self.last_cas_group = bank_group
        return start
