"""Simulation statistics: controller counters, per-core IPC, speedups."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass
class ControllerStats:
    """Counters accumulated by the memory controller."""

    reads: int = 0
    writes: int = 0
    forwarded_reads: int = 0  #: reads served from the write queue
    row_hits: int = 0
    row_misses: int = 0
    activations: int = 0
    periodic_refreshes: int = 0
    preventive_refresh_rows: int = 0
    preventive_refresh_full: int = 0  #: rows refreshed with nominal latency
    preventive_refresh_partial: int = 0  #: rows refreshed with reduced latency
    rfm_commands: int = 0
    backoff_events: int = 0
    metadata_reads: int = 0
    metadata_writes: int = 0

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


@dataclass
class CoreStats:
    """One core's retirement outcome."""

    core: int
    instructions: int
    elapsed_ns: float
    core_clock_ghz: float

    @property
    def cycles(self) -> float:
        return self.elapsed_ns * self.core_clock_ghz

    @property
    def ipc(self) -> float:
        if self.cycles <= 0:
            raise SimulationError("core retired instructions in zero time")
        return self.instructions / self.cycles


def weighted_speedup(ipcs: dict[int, float], baseline_ipcs: dict[int, float]) -> float:
    """Multi-programmed weighted speedup: sum_i IPC_i / IPC_i^baseline.

    The baseline is each workload's IPC when run alone (or, in the paper's
    normalized plots, under the reference configuration).
    """
    if set(ipcs) != set(baseline_ipcs):
        raise SimulationError("IPC dictionaries cover different cores")
    if not ipcs:
        raise SimulationError("empty IPC set")
    total = 0.0
    for core, ipc in ipcs.items():
        base = baseline_ipcs[core]
        if base <= 0:
            raise SimulationError(f"non-positive baseline IPC for core {core}")
        total += ipc / base
    return total


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of memory read latencies (ns)."""

    count: int
    mean_ns: float
    p50_ns: float
    p99_ns: float
    max_ns: float

    @classmethod
    def from_values(cls, values: list[float]) -> "LatencySummary":
        if not values:
            return cls(count=0, mean_ns=0.0, p50_ns=0.0, p99_ns=0.0,
                       max_ns=0.0)
        ordered = sorted(values)
        n = len(ordered)
        return cls(
            count=n,
            mean_ns=sum(ordered) / n,
            p50_ns=ordered[n // 2],
            p99_ns=ordered[min(n - 1, (n * 99) // 100)],
            max_ns=ordered[-1],
        )


@dataclass
class BusyBreakdown:
    """Fractions of bank-time spent on each blocking activity (Fig. 3)."""

    preventive_fraction: float = 0.0
    periodic_fraction: float = 0.0

    def __post_init__(self) -> None:
        for value in (self.preventive_fraction, self.periodic_fraction):
            if value < 0:
                raise SimulationError("negative busy fraction")
