"""Simulation statistics: controller counters, per-core IPC, speedups."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass
class ControllerStats:
    """Counters accumulated by the memory controller."""

    reads: int = 0
    writes: int = 0
    forwarded_reads: int = 0  #: reads served from the write queue
    row_hits: int = 0
    row_misses: int = 0
    activations: int = 0
    periodic_refreshes: int = 0
    preventive_refresh_rows: int = 0
    preventive_refresh_full: int = 0  #: rows refreshed with nominal latency
    preventive_refresh_partial: int = 0  #: rows refreshed with reduced latency
    rfm_commands: int = 0
    backoff_events: int = 0
    metadata_reads: int = 0
    metadata_writes: int = 0

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


@dataclass
class CoreStats:
    """One core's retirement outcome."""

    core: int
    instructions: int
    elapsed_ns: float
    core_clock_ghz: float

    @property
    def cycles(self) -> float:
        return self.elapsed_ns * self.core_clock_ghz

    @property
    def ipc(self) -> float:
        if self.cycles <= 0:
            raise SimulationError("core retired instructions in zero time")
        return self.instructions / self.cycles


def weighted_speedup(ipcs: dict[int, float], baseline_ipcs: dict[int, float]) -> float:
    """Multi-programmed weighted speedup: sum_i IPC_i / IPC_i^baseline.

    The baseline is each workload's IPC when run alone (or, in the paper's
    normalized plots, under the reference configuration).
    """
    if set(ipcs) != set(baseline_ipcs):
        raise SimulationError("IPC dictionaries cover different cores")
    if not ipcs:
        raise SimulationError("empty IPC set")
    total = 0.0
    for core, ipc in ipcs.items():
        base = baseline_ipcs[core]
        if base <= 0:
            raise SimulationError(f"non-positive baseline IPC for core {core}")
        total += ipc / base
    return total


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of memory read latencies (ns)."""

    count: int
    mean_ns: float
    p50_ns: float
    p99_ns: float
    max_ns: float

    @classmethod
    def from_values(cls, values: list[float]) -> "LatencySummary":
        accumulator = LatencyAccumulator()
        for value in values:
            accumulator.add(value)
        return accumulator.summary()


class LatencyAccumulator:
    """Streaming latency statistics with memory bounded by *distinct* values.

    Read latencies in a timing simulation are combinations of a handful of
    timing parameters, so the number of distinct values grows far slower
    than the number of reads — a value histogram keeps exact count, mean,
    percentiles, and max without retaining the raw per-read list (which
    previously grew without bound over long traces).

    :meth:`summary` reproduces :meth:`LatencySummary.from_values` bit for
    bit: the mean is accumulated by adding each occurrence in sorted order
    (exactly what ``sum(sorted(values))`` does), and percentiles index the
    sorted multiset through cumulative counts.
    """

    __slots__ = ("_counts", "count")

    def __init__(self) -> None:
        self._counts: dict[float, int] = {}
        self.count = 0

    def add(self, value_ns: float) -> None:
        counts = self._counts
        counts[value_ns] = counts.get(value_ns, 0) + 1
        self.count += 1

    def distinct(self) -> int:
        """Number of histogram bins currently held."""
        return len(self._counts)

    def summary(self) -> LatencySummary:
        n = self.count
        if n == 0:
            return LatencySummary(count=0, mean_ns=0.0, p50_ns=0.0,
                                  p99_ns=0.0, max_ns=0.0)
        items = sorted(self._counts.items())
        p50_index = n // 2
        p99_index = min(n - 1, (n * 99) // 100)
        total = 0.0
        p50 = p99 = items[0][0]
        seen = 0
        for value, occurrences in items:
            if occurrences == 1:
                total += value
            else:
                for _ in range(occurrences):
                    total += value
            if seen <= p50_index:
                p50 = value
            if seen <= p99_index:
                p99 = value
            seen += occurrences
        return LatencySummary(count=n, mean_ns=total / n, p50_ns=p50,
                              p99_ns=p99, max_ns=items[-1][0])


@dataclass
class BusyBreakdown:
    """Fractions of bank-time spent on each blocking activity (Fig. 3)."""

    preventive_fraction: float = 0.0
    periodic_fraction: float = 0.0

    def __post_init__(self) -> None:
        for value in (self.preventive_fraction, self.periodic_fraction):
            if value < 0:
                raise SimulationError("negative busy fraction")
