"""Configuration files for simulations (the artifact's A.6 interface).

The paper's artifact exposes its customization knobs through configuration
files and ``Ram_scripts/utils_runs.py`` (MITIGATION_LIST, NRH_VALUES,
``latency_factor_vrr``, ``latency_factor_rfc``, workload mixes).  This
module provides the equivalent: a JSON configuration schema that fully
describes one evaluation — system, mitigations, thresholds, PaCRAM latency
factors, and workloads — plus a loader that materializes the objects.
"""

from __future__ import annotations

import difflib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigError
from repro.mitigations import MITIGATION_CLASSES
from repro.sim.config import SystemConfig
from repro.workloads.suites import single_core_suite

#: Keys accepted at the top level of an evaluation config file.
_KNOWN_KEYS = {
    "mitigations", "nrh_values", "pacram_vendors", "workloads",
    "requests", "num_cores", "latency_factor_vrr", "latency_factor_rfc",
    "check_protocol",
}


@dataclass(frozen=True)
class EvaluationConfig:
    """A fully-described evaluation, loadable from JSON."""

    mitigations: tuple[str, ...] = ("PARA", "RFM", "PRAC", "Hydra", "Graphene")
    nrh_values: tuple[int, ...] = (1024, 512, 256, 128, 64, 32)
    pacram_vendors: tuple[str | None, ...] = (None, "H", "M", "S")
    workloads: tuple[str, ...] = field(
        default_factory=lambda: single_core_suite()[:4])
    requests: int = 2_000
    num_cores: int = 1
    #: Preventive-refresh latency factor (the artifact's latency_factor_vrr);
    #: None means "use each vendor's best-observed factor".
    latency_factor_vrr: float | None = None
    #: Periodic-refresh latency factor (latency_factor_rfc, Appendix B).
    latency_factor_rfc: float = 1.0
    #: Protocol-checker mode for every run ("off" | "tolerant" | "strict").
    check_protocol: str = "off"

    def __post_init__(self) -> None:
        unknown = [m for m in self.mitigations if m not in MITIGATION_CLASSES]
        if unknown:
            raise ConfigError(f"unknown mitigations: {unknown}")
        for label, values in (("mitigations", self.mitigations),
                              ("workloads", self.workloads)):
            duplicates = sorted({v for v in values if values.count(v) > 1})
            if duplicates:
                raise ConfigError(
                    f"duplicate {label}: {duplicates} (each entry would be "
                    "evaluated twice and overwrite the other's results)")
        # Lazy import: the validation layer builds on the simulator, so a
        # module-level import here would be circular.
        from repro.validation.checker import CHECK_MODES
        if self.check_protocol not in CHECK_MODES:
            raise ConfigError(
                f"check_protocol must be one of {CHECK_MODES}, "
                f"got {self.check_protocol!r}")
        if any(nrh <= 0 for nrh in self.nrh_values):
            raise ConfigError("N_RH values must be positive")
        for vendor in self.pacram_vendors:
            if vendor is not None and vendor not in ("H", "M", "S"):
                raise ConfigError(f"unknown PaCRAM vendor {vendor!r}")
        if self.requests <= 0 or self.num_cores <= 0:
            raise ConfigError("requests and num_cores must be positive")
        if self.latency_factor_vrr is not None and not (
                0.0 < self.latency_factor_vrr <= 1.0):
            raise ConfigError("latency_factor_vrr must be in (0, 1]")
        if not 0.0 < self.latency_factor_rfc <= 1.0:
            raise ConfigError("latency_factor_rfc must be in (0, 1]")

    # ------------------------------------------------------------------
    def system_config(self) -> SystemConfig:
        return SystemConfig(num_cores=self.num_cores)

    def sweep_grid(self):
        """The equivalent :class:`repro.analysis.sweeprunner.SweepGrid`.

        Imported lazily: the analysis layer builds on the simulator, so a
        module-level import here would be circular.
        """
        from repro.analysis.sweeprunner import SweepGrid
        return SweepGrid(
            mitigations=self.mitigations,
            nrh_values=self.nrh_values,
            pacram_vendors=self.pacram_vendors,
            workload_sets=tuple((name,) for name in self.workloads),
            requests=self.requests,
            check_protocol=self.check_protocol,
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, raw: dict) -> "EvaluationConfig":
        unknown = set(raw) - _KNOWN_KEYS
        if unknown:
            parts = []
            for key in sorted(unknown):
                close = difflib.get_close_matches(key, _KNOWN_KEYS, n=1)
                hint = f" (did you mean {close[0]!r}?)" if close else ""
                parts.append(f"{key!r}{hint}")
            raise ConfigError(
                f"unknown config keys: {', '.join(parts)}; "
                f"known keys: {sorted(_KNOWN_KEYS)}")
        kwargs: dict = {}
        for key in ("mitigations", "workloads"):
            if key in raw:
                kwargs[key] = tuple(raw[key])
        if "nrh_values" in raw:
            kwargs["nrh_values"] = tuple(int(v) for v in raw["nrh_values"])
        if "pacram_vendors" in raw:
            kwargs["pacram_vendors"] = tuple(
                None if v in (None, "none") else str(v)
                for v in raw["pacram_vendors"])
        for key in ("requests", "num_cores"):
            if key in raw:
                kwargs[key] = int(raw[key])
        for key in ("latency_factor_vrr", "latency_factor_rfc"):
            if key in raw and raw[key] is not None:
                kwargs[key] = float(raw[key])
        if "check_protocol" in raw:
            kwargs["check_protocol"] = str(raw["check_protocol"])
        return cls(**kwargs)

    @staticmethod
    def _reject_duplicate_keys(pairs: list) -> dict:
        """JSON object hook: a repeated key means the later value silently
        wins with a plain ``json.loads`` — make it a hard error instead."""
        seen: dict = {}
        for key, value in pairs:
            if key in seen:
                raise ConfigError(f"duplicate config key {key!r}")
            seen[key] = value
        return seen

    @classmethod
    def load(cls, path: str | Path) -> "EvaluationConfig":
        try:
            raw = json.loads(Path(path).read_text(),
                             object_pairs_hook=cls._reject_duplicate_keys)
        except json.JSONDecodeError as error:
            raise ConfigError(f"malformed config file {path}: {error}") from None
        if not isinstance(raw, dict):
            raise ConfigError("config file must hold a JSON object")
        return cls.from_dict(raw)

    def save(self, path: str | Path) -> None:
        payload = {
            "mitigations": list(self.mitigations),
            "nrh_values": list(self.nrh_values),
            "pacram_vendors": ["none" if v is None else v
                               for v in self.pacram_vendors],
            "workloads": list(self.workloads),
            "requests": self.requests,
            "num_cores": self.num_cores,
            "latency_factor_vrr": self.latency_factor_vrr,
            "latency_factor_rfc": self.latency_factor_rfc,
            "check_protocol": self.check_protocol,
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")
