"""DRAM energy accounting (DRAMPower-flavored constants).

Absolute joules are approximate; what the paper's Fig. 18 compares — and
what this model preserves — is the *relative* energy across configurations:
preventive-refresh energy scales with the charge-restoration latency used,
and background energy scales with execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError

#: Energy of the non-restoration part of one ACT+PRE cycle (nJ).
E_ACT_BASE_NJ = 1.0
#: Restoration energy per nanosecond the row stays under restoration (nJ/ns).
E_RESTORE_PER_NS = 0.045
#: Read / write burst energy (nJ per 64 B cache line).
E_READ_NJ = 1.5
E_WRITE_NJ = 1.7
#: Background power per rank (W = nJ/ns * 1e0); covers standby + clocking.
P_BACKGROUND_W_PER_RANK = 0.30


@dataclass
class EnergyModel:
    """Accumulates DRAM energy by component, in nanojoules."""

    ranks: int = 2
    activation_nj: float = 0.0
    read_nj: float = 0.0
    write_nj: float = 0.0
    periodic_refresh_nj: float = 0.0
    preventive_refresh_nj: float = 0.0
    metadata_nj: float = 0.0
    background_nj: float = field(default=0.0)

    def act_energy(self, tras_ns: float) -> float:
        """Energy of one ACT+PRE cycle with the given restoration time."""
        if tras_ns <= 0:
            raise SimulationError("non-positive tRAS in energy model")
        return E_ACT_BASE_NJ + E_RESTORE_PER_NS * tras_ns

    # ------------------------------------------------------------------
    def add_activation(self, tras_ns: float) -> None:
        self.activation_nj += self.act_energy(tras_ns)

    def add_read(self) -> None:
        self.read_nj += E_READ_NJ

    def add_write(self) -> None:
        self.write_nj += E_WRITE_NJ

    def add_periodic_refresh(self, rows: int, tras_ns: float) -> None:
        self.periodic_refresh_nj += rows * self.act_energy(tras_ns)

    def add_preventive_refresh(self, rows: int, tras_ns: float) -> None:
        self.preventive_refresh_nj += rows * self.act_energy(tras_ns)

    def add_metadata_access(self, reads: int, writes: int) -> None:
        self.metadata_nj += reads * E_READ_NJ + writes * E_WRITE_NJ

    def finalize_background(self, elapsed_ns: float) -> None:
        """Charge background power for the whole run (call once at the end)."""
        if elapsed_ns < 0:
            raise SimulationError("negative elapsed time")
        self.background_nj = P_BACKGROUND_W_PER_RANK * self.ranks * elapsed_ns

    @property
    def total_nj(self) -> float:
        return (self.activation_nj + self.read_nj + self.write_nj
                + self.periodic_refresh_nj + self.preventive_refresh_nj
                + self.metadata_nj + self.background_nj)
