"""Trace-driven core model (Table 2: 4-wide, 128-entry instruction window).

The model captures what matters for memory-system studies: the frontend
consumes non-memory instructions at ``issue_width`` per cycle, loads occupy
the instruction window until their data returns (bounding memory-level
parallelism to the window size), and stores retire immediately through the
write buffer.  Instructions-per-cycle then reflects both compute throughput
and memory stalls — including stalls caused by banks busy with preventive
refreshes, which is the effect the paper measures.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.sim.addrmap import AddressMapper
from repro.sim.config import SystemConfig
from repro.sim.request import Request, RequestType
from repro.sim.stats import CoreStats
from repro.workloads.trace import Trace


class CoreModel:
    """One core replaying a memory trace."""

    def __init__(self, core_id: int, trace: Trace, config: SystemConfig,
                 mapper: AddressMapper, address_offset: int = 0) -> None:
        self.core_id = core_id
        self.trace = trace
        self.config = config
        self.mapper = mapper
        self.address_offset = address_offset
        self._index = 0
        self._next_position = 0  #: instruction position of the next trace entry
        self._frontend_ns = 0.0
        self._issue_floor_ns = 0.0  #: earliest issue after a window stall
        self._inflight: deque[Request] = deque()  #: outstanding reads, in order
        self._last_completion_ns = 0.0

    # ------------------------------------------------------------------
    def pump(self) -> list[Request]:
        """Emit every request whose issue time is now determined.

        Stops when the instruction window is full behind an unserviced load;
        call again after that load completes.
        """
        out: list[Request] = []
        trace = self.trace
        cycle = self.config.core_cycle_ns
        width = self.config.issue_width
        window = self.config.instruction_window
        while self._index < len(trace):
            bubbles = int(trace.bubbles[self._index])
            position = self._next_position + bubbles
            if self._window_occupancy(position) >= window:
                # Retirement is in-order: the oldest load occupies its window
                # slot until its data returns, and the blocked instruction
                # enters the window no earlier than that retirement.
                head = self._inflight[0]
                if head.completion_ns < 0:
                    break  # stalled: resume after the head load completes
                self._issue_floor_ns = max(self._issue_floor_ns,
                                           head.completion_ns)
                self._retire_head()
                continue
            fetch_done = self._frontend_ns + bubbles * cycle / width
            arrival = max(fetch_done, self._issue_floor_ns)
            request = self._make_request(position, arrival)
            if request.is_read:
                self._inflight.append(request)
            out.append(request)
            self._frontend_ns = fetch_done + cycle / width
            self._next_position = position + 1
            self._index += 1
        return out

    def _make_request(self, position: int, arrival_ns: float) -> Request:
        address = int(self.trace.addresses[self._index]) + self.address_offset
        is_write = bool(self.trace.is_write[self._index])
        decoded = self.mapper.decode(address)
        return Request(
            core=self.core_id, address=address,
            type=RequestType.WRITE if is_write else RequestType.READ,
            arrival_ns=arrival_ns, decoded=decoded, position=position)

    def _window_occupancy(self, position: int) -> int:
        if not self._inflight:
            return 0
        return position - self._inflight[0].position

    def _retire_head(self) -> None:
        head = self._inflight.popleft()
        if head.completion_ns < 0:
            raise SimulationError("retiring an unserviced load")
        self._last_completion_ns = max(self._last_completion_ns,
                                       head.completion_ns)

    # ------------------------------------------------------------------
    def note_completion(self, request: Request) -> None:
        """Record a serviced read (the controller filled completion_ns)."""
        if request.completion_ns < 0:
            raise SimulationError("completion notification without a time")
        self._last_completion_ns = max(self._last_completion_ns,
                                       request.completion_ns)

    def waiting_for_memory(self) -> bool:
        """True when the window is full behind an unserviced load."""
        if self._index >= len(self.trace) or not self._inflight:
            return False
        bubbles = int(self.trace.bubbles[self._index])
        position = self._next_position + bubbles
        head = self._inflight[0]
        return (position - head.position >= self.config.instruction_window
                and head.completion_ns < 0)

    def trace_exhausted(self) -> bool:
        return self._index >= len(self.trace)

    def finished(self) -> bool:
        """All instructions issued and all loads returned."""
        if not self.trace_exhausted():
            return False
        return all(r.completion_ns >= 0 for r in self._inflight)

    def finish_time_ns(self) -> float:
        # Every serviced load's completion has already been folded into
        # _last_completion_ns (note_completion / _retire_head), so the
        # in-flight window never needs to be rescanned here.
        return max(self._frontend_ns, self._last_completion_ns)

    def stats(self) -> CoreStats:
        if not self.finished():
            raise SimulationError(f"core {self.core_id} has not finished")
        return CoreStats(
            core=self.core_id,
            instructions=self._next_position,
            elapsed_ns=self.finish_time_ns(),
            core_clock_ghz=self.config.core_clock_ghz)
