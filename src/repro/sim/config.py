"""Simulated system configuration (the paper's Table 2)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.timing import TimingParams, ddr5_timing
from repro.errors import ConfigError


@dataclass(frozen=True)
class SystemConfig:
    """Table 2: processor, DRAM organization, and memory-controller knobs."""

    # Processor.
    num_cores: int = 4
    core_clock_ghz: float = 3.2
    issue_width: int = 4
    instruction_window: int = 128

    # DRAM organization (DDR5, 1 channel, 2 ranks, 8 BG x 2 banks, 64K rows).
    channels: int = 1
    ranks: int = 2
    bank_groups: int = 8
    banks_per_group: int = 2
    rows_per_bank: int = 65_536
    columns_per_row: int = 128  #: cache lines per row (8 KB row / 64 B line)
    cache_line_bytes: int = 64

    # Memory controller.
    read_queue_depth: int = 64
    write_queue_depth: int = 64
    #: Write-drain watermarks (fractions of the write-queue depth).
    write_high_watermark: float = 0.75
    write_low_watermark: float = 0.25

    timing: TimingParams = field(default_factory=ddr5_timing)

    def __post_init__(self) -> None:
        for name in ("num_cores", "channels", "ranks", "bank_groups",
                     "banks_per_group", "rows_per_bank", "columns_per_row",
                     "read_queue_depth", "write_queue_depth",
                     "issue_width", "instruction_window"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if not 0.0 < self.write_low_watermark < self.write_high_watermark <= 1.0:
            raise ConfigError("write watermarks must satisfy 0 < low < high <= 1")

    @property
    def banks_per_rank(self) -> int:
        return self.bank_groups * self.banks_per_group

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks * self.banks_per_rank

    @property
    def core_cycle_ns(self) -> float:
        return 1.0 / self.core_clock_ghz

    @property
    def row_bytes(self) -> int:
        return self.columns_per_row * self.cache_line_bytes

    @property
    def capacity_bytes(self) -> int:
        return self.total_banks * self.rows_per_bank * self.row_bytes
