"""Event-driven DDR5 memory-system simulator (the Ramulator 2.0 stand-in).

Models the evaluated system of Table 2: out-of-order-ish cores with a
128-entry instruction window feeding a FR-FCFS memory controller over a
single DDR5 channel with 2 ranks x 8 bank groups x 2 banks, with periodic
refresh, RowHammer-mitigation plugins (:mod:`repro.mitigations`), and the
PaCRAM refresh-latency policy (:mod:`repro.core`) layered on top.

The simulator is request/command-granular rather than cycle-by-cycle: each
serviced request analytically reserves bank, rank, and data-bus time, which
preserves the interference effects the paper measures (preventive refreshes
blocking banks) while staying fast enough for multi-configuration sweeps in
pure Python.
"""

from repro.sim.commands import Command, CommandObserver
from repro.sim.config import SystemConfig
from repro.sim.configloader import EvaluationConfig
from repro.sim.request import Request, RequestType
from repro.sim.addrmap import AddressMapper, DecodedAddress
from repro.sim.controller import MemoryController, RefreshLatencyPolicy
from repro.sim.core import CoreModel
from repro.sim.system import MemorySystem, SimulationResult
from repro.sim.stats import ControllerStats, weighted_speedup

__all__ = [
    "Command",
    "CommandObserver",
    "SystemConfig",
    "EvaluationConfig",
    "Request",
    "RequestType",
    "AddressMapper",
    "DecodedAddress",
    "MemoryController",
    "RefreshLatencyPolicy",
    "CoreModel",
    "MemorySystem",
    "SimulationResult",
    "ControllerStats",
    "weighted_speedup",
]
