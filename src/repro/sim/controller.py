"""FR-FCFS memory controller with mitigation and refresh-latency plugins.

Scheduling follows FR-FCFS: among arrived requests, row-buffer hits win,
ties broken by age; writes are buffered and drained when the write queue
crosses its high watermark or no reads are pending.  Every row activation is
reported to the RowHammer mitigation plugin, whose preventive actions the
controller executes — asking the :class:`RefreshLatencyPolicy` (PaCRAM, or
the nominal default) for the charge-restoration latency of each preventive
refresh.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.mitigations.base import (
    MetadataAccess,
    MitigationMechanism,
    NoMitigation,
    PreventiveRefresh,
    RfmCommand,
)
from repro.sim.bankmodel import BankTimeline, ChannelTimeline, RankTimeline
from repro.sim.commands import (
    ActCommand,
    CasCommand,
    CommandObserver,
    MetadataCmd,
    MitigationRequest,
    PreCommand,
    PreventiveRefreshCmd,
    RefCommand,
)
from repro.sim.config import SystemConfig
from repro.sim.energy import EnergyModel
from repro.sim.request import Request
from repro.sim.stats import ControllerStats


class RefreshLatencyPolicy:
    """Default refresh-latency policy: nominal latency for everything.

    PaCRAM (:class:`repro.core.pacram.PaCRAM`) subclasses this to return
    reduced latencies and to scale the mitigation's configured ``N_RH``.
    """

    def __init__(self, config: SystemConfig) -> None:
        self.config = config

    def preventive_tras_ns(self, flat_bank: int, row: int,
                           now_ns: float) -> tuple[float, bool]:
        """(charge-restoration latency, is_full_restoration) for one
        preventive refresh of ``row``."""
        return self.config.timing.tRAS, True

    def periodic_refresh_scale(self) -> float:
        """Scaling of the periodic-refresh latency (Appendix B extension)."""
        return 1.0

    def nrh_scale(self) -> float:
        """Factor by which the mitigation's N_RH must be scaled down to stay
        secure under this policy's reduced latencies (§8.2)."""
        return 1.0

    def partial_restoration_limit(self) -> int | None:
        """Max consecutive partial restorations a row may legally receive.

        ``None`` means this policy never issues partial restorations, so an
        observer should treat *any* partial restoration as a violation.
        PaCRAM overrides this with its ``N_PCR`` bound (§8.3).
        """
        return None


class MemoryController:
    """One memory controller driving all channels of the system."""

    def __init__(self, config: SystemConfig,
                 mitigation: MitigationMechanism | None = None,
                 policy: RefreshLatencyPolicy | None = None,
                 observer: CommandObserver | None = None) -> None:
        self.config = config
        self.timing = config.timing
        self.mitigation = mitigation or NoMitigation()
        self.policy = policy or RefreshLatencyPolicy(config)
        #: Optional command-stream observer (``repro.validation``).  ``None``
        #: keeps every instrumented path at a single pointer check.
        self.observer = observer
        self.stats = ControllerStats()
        self.energy = EnergyModel(ranks=config.channels * config.ranks)
        self.banks = [BankTimeline() for _ in range(config.total_banks)]
        self.ranks = [RankTimeline() for _ in range(config.channels * config.ranks)]
        self.channels = [ChannelTimeline() for _ in range(config.channels)]
        self.read_queue: list[Request] = []
        self.write_queue: list[Request] = []
        self.now_ns = 0.0
        self._draining_writes = False
        self._next_refresh_window_ns = self.timing.tREFW
        self._rows_per_periodic_refresh = self._rows_per_ref()
        for rank in self.ranks:
            rank.next_refresh_ns = self.timing.tREFI

    # ------------------------------------------------------------------
    # queue management
    # ------------------------------------------------------------------
    def enqueue(self, request: Request) -> None:
        queue = self.read_queue if request.is_read else self.write_queue
        queue.append(request)

    def pending_requests(self) -> int:
        return len(self.read_queue) + len(self.write_queue)

    def next_arrival_ns(self) -> float | None:
        """Earliest arrival among queued requests (None if queues empty)."""
        best: float | None = None
        for queue in (self.read_queue, self.write_queue):
            for request in queue:
                time_ns = request.arrival_ns
                if best is None or time_ns < best:
                    best = time_ns
        return best

    def advance_to_next_arrival(self) -> bool:
        """Advance the clock to the earliest queued arrival in one call.

        Coalesces the ``next_arrival_ns()`` query and the ``advance_to()``
        that always followed it: one queue scan moves the clock to the
        shared timestamp, after which every request arriving at it is
        serviced without further time queries.  Returns False (and leaves
        the clock alone) when both queues are empty.
        """
        next_arrival = self.next_arrival_ns()
        if next_arrival is None:
            return False
        if next_arrival > self.now_ns:
            self.now_ns = next_arrival
        return True

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    #: Latency of forwarding read data out of the write queue (SRAM lookup).
    FORWARD_LATENCY_NS = 2.0

    def service_one(self) -> Request | None:
        """Pick and service one request (FR-FCFS); returns it, with its
        ``completion_ns`` filled in, or None if nothing has arrived yet."""
        self._apply_periodic_refresh(self.now_ns)
        self._update_drain_mode()
        request = self._pick()
        if request is None:
            return None
        if request.is_read and self._forward_from_write_queue(request):
            return request
        self._service(request)
        return request

    def _forward_from_write_queue(self, request: Request) -> bool:
        """Serve a read from a pending older write to the same line."""
        for write in self.write_queue:
            if (write.address == request.address
                    and write.arrival_ns <= request.arrival_ns):
                request.completion_ns = (max(self.now_ns, request.arrival_ns)
                                         + self.FORWARD_LATENCY_NS)
                self.stats.reads += 1
                self.stats.forwarded_reads += 1
                return True
        return False

    def advance_to(self, time_ns: float) -> None:
        """Move the controller clock forward (e.g. to the next arrival)."""
        if time_ns > self.now_ns:
            self.now_ns = time_ns

    def _update_drain_mode(self) -> None:
        depth = self.config.write_queue_depth
        if len(self.write_queue) >= depth * self.config.write_high_watermark:
            self._draining_writes = True
        elif len(self.write_queue) <= depth * self.config.write_low_watermark:
            self._draining_writes = False

    def _arrived(self, queue: list[Request]) -> list[Request]:
        return [r for r in queue if r.arrival_ns <= self.now_ns]

    def _pick(self) -> Request | None:
        reads = self._arrived(self.read_queue)
        writes = self._arrived(self.write_queue)
        if self._draining_writes and writes:
            candidates = writes
        elif reads:
            candidates = reads
        elif writes:
            candidates = writes  # no read is ready: opportunistic drain
        else:
            return None
        hits = [r for r in candidates
                if self._bank(r).open_row == r.decoded.row]
        pool = hits or candidates
        request = min(pool, key=lambda r: r.arrival_ns)
        queue = self.read_queue if request.is_read else self.write_queue
        queue.remove(request)
        return request

    # ------------------------------------------------------------------
    # command timing
    # ------------------------------------------------------------------
    def _bank(self, request: Request) -> BankTimeline:
        return self.banks[self._flat_bank(request)]

    def _flat_bank(self, request: Request) -> int:
        d = request.decoded
        c = self.config
        return d.bank + c.banks_per_group * (
            d.bank_group + c.bank_groups * (d.rank + c.ranks * d.channel))

    def _rank_index(self, request: Request) -> int:
        d = request.decoded
        return d.rank + self.config.ranks * d.channel

    def _service(self, request: Request) -> None:
        timing = self.timing
        flat = self._flat_bank(request)
        bank = self.banks[flat]
        rank_index = self._rank_index(request)
        rank = self.ranks[rank_index]
        channel = self.channels[request.decoded.channel]
        row = request.decoded.row
        earliest = max(self.now_ns, request.arrival_ns, bank.ready_ns)
        observer = self.observer

        if bank.open_row == row:
            self.stats.row_hits += 1
            cas_start = earliest
        else:
            self.stats.row_misses += 1
            act_start = earliest
            closes_row = bank.open_row is not None
            if closes_row:
                # Ready-to-precharge: tRAS after the last ACT, then tRP.
                pre_start = max(earliest, bank.act_ns + timing.tRAS)
                act_start = pre_start + timing.tRP
            act_start = max(act_start, rank.faw_constraint(act_start, timing.tFAW))
            rank.record_act(act_start)
            if observer is not None:
                if closes_row:
                    observer.on_command(PreCommand(flat, pre_start))
                decoded = request.decoded
                observer.on_command(ActCommand(
                    flat, rank_index, decoded.channel, decoded.bank_group,
                    row, act_start))
            bank.open_row = row
            bank.act_ns = act_start
            self.stats.activations += 1
            self.energy.add_activation(timing.tRAS)
            cas_start = act_start + timing.tRCD
            self._run_mitigation(flat, row, act_start)
            # Mitigation actions may have pushed the bank's ready time.
            cas_start = max(cas_start, bank.ready_ns)

        cas_start = channel.cas_constraint(
            cas_start, request.decoded.bank_group, timing.tCCD, timing.tCCD_L)
        if observer is not None:
            decoded = request.decoded
            observer.on_command(CasCommand(
                flat, decoded.channel, decoded.bank_group, row,
                cas_start, not request.is_read))
        if request.is_read:
            self.stats.reads += 1
            self.energy.add_read()
            data_done = channel.reserve_bus(cas_start + timing.tCL, timing.tBL)
        else:
            self.stats.writes += 1
            self.energy.add_write()
            data_done = channel.reserve_bus(cas_start + timing.tCL, timing.tBL)
            data_done += timing.tWR  # write recovery before the row can close
        request.completion_ns = data_done
        bank.block_until(cas_start + timing.tCCD
                         + self.mitigation.act_penalty_ns)
        self.now_ns = max(self.now_ns, cas_start)

    # ------------------------------------------------------------------
    # mitigation actions
    # ------------------------------------------------------------------
    def _run_mitigation(self, flat: int, row: int,
                        act_start: float) -> None:
        if act_start >= self._next_refresh_window_ns:
            self.mitigation.on_refresh_window(act_start)
            self._next_refresh_window_ns += self.timing.tREFW
        actions = self.mitigation.on_activation(flat, row, act_start)
        observer = self.observer
        for action in actions:
            if isinstance(action, PreventiveRefresh):
                if observer is not None:
                    victims = tuple(self._victim_rows(
                        action.aggressor_row, action.victim_offsets))
                    observer.on_command(MitigationRequest(
                        action.flat_bank, action.aggressor_row, "refresh",
                        victims, len(victims), act_start))
                self._do_preventive_refresh(action)
            elif isinstance(action, RfmCommand):
                if observer is not None:
                    observer.on_command(MitigationRequest(
                        action.flat_bank, -1, "rfm", (),
                        action.victim_rows, act_start))
                self._do_rfm(action)
            elif isinstance(action, MetadataAccess):
                self._do_metadata(action)
            else:  # pragma: no cover - exhaustive over Action
                raise SimulationError(f"unknown mitigation action {action!r}")

    def _victim_rows(self, aggressor: int,
                     offsets: tuple[int, ...]) -> list[int]:
        rows = self.config.rows_per_bank
        return [aggressor + d for d in offsets
                if 0 <= aggressor + d < rows]

    def _do_preventive_refresh(self, action: PreventiveRefresh) -> None:
        bank = self.banks[action.flat_bank]
        start = max(bank.ready_ns, self.now_ns)
        duration = 0.0
        observer = self.observer
        for victim in self._victim_rows(action.aggressor_row,
                                        action.victim_offsets):
            tras_ns, full = self.policy.preventive_tras_ns(
                action.flat_bank, victim, start)
            if observer is not None:
                observer.on_command(PreventiveRefreshCmd(
                    action.flat_bank, victim, start + duration, tras_ns, full))
            duration += tras_ns + self.timing.tRP
            self.energy.add_preventive_refresh(1, tras_ns)
            self.stats.preventive_refresh_rows += 1
            if full:
                self.stats.preventive_refresh_full += 1
            else:
                self.stats.preventive_refresh_partial += 1
        bank.occupy(start, duration, preventive=True)
        bank.open_row = None  # the refresh closes the row buffer

    def _do_rfm(self, action: RfmCommand) -> None:
        bank = self.banks[action.flat_bank]
        start = max(bank.ready_ns, self.now_ns)
        duration = 0.0
        observer = self.observer
        for _ in range(action.victim_rows):
            tras_ns, full = self.policy.preventive_tras_ns(
                action.flat_bank, -1, start)
            if observer is not None:
                observer.on_command(PreventiveRefreshCmd(
                    action.flat_bank, -1, start + duration, tras_ns, full))
            duration += tras_ns + self.timing.tRP
            self.energy.add_preventive_refresh(1, tras_ns)
            self.stats.preventive_refresh_rows += 1
            if full:
                self.stats.preventive_refresh_full += 1
            else:
                self.stats.preventive_refresh_partial += 1
        self.stats.rfm_commands += 1
        if action.is_backoff:
            self.stats.backoff_events += 1
        bank.occupy(start, duration, preventive=True)
        bank.open_row = None

    def _do_metadata(self, action: MetadataAccess) -> None:
        bank = self.banks[action.flat_bank]
        timing = self.timing
        start = max(bank.ready_ns, self.now_ns)
        per_access = timing.tRP + timing.tRCD + timing.tCL + timing.tBL
        total = (action.reads + action.writes) * per_access
        if self.observer is not None:
            self.observer.on_command(MetadataCmd(
                action.flat_bank, start, total, action.reads, action.writes))
        bank.occupy(start, total)
        bank.open_row = None
        self.stats.metadata_reads += action.reads
        self.stats.metadata_writes += action.writes
        self.energy.add_metadata_access(action.reads, action.writes)

    # ------------------------------------------------------------------
    # periodic refresh
    # ------------------------------------------------------------------
    def _rows_per_ref(self) -> int:
        refs_per_window = self.timing.tREFW / self.timing.tREFI
        rows = self.config.rows_per_bank / refs_per_window
        return max(1, round(rows))

    def _apply_periodic_refresh(self, up_to_ns: float) -> None:
        for rank_index, rank in enumerate(self.ranks):
            while rank.next_refresh_ns <= up_to_ns:
                self._apply_one_refresh(rank_index, rank,
                                        rank.next_refresh_ns)
                rank.next_refresh_ns += self.timing.tREFI

    def _apply_one_refresh(self, rank_index: int, rank: RankTimeline,
                           start: float) -> None:
        """Execute one all-bank REF command on ``rank`` at ``start``."""
        timing = self.timing
        # The policy is consulted per REF command (Appendix B's window
        # counter advances with each one).
        scale = self.policy.periodic_refresh_scale()
        trfc = timing.tRFC * scale
        if self.observer is not None:
            self.observer.on_command(RefCommand(rank_index, start, trfc))
        for bank in self._banks_of_rank(rank_index):
            busy_from = max(bank.ready_ns, start)
            bank.ready_ns = busy_from + trfc
            bank.refresh_busy_ns += trfc
            bank.open_row = None
            self.energy.add_periodic_refresh(
                self._rows_per_periodic_refresh, timing.tRAS * scale)
        self.stats.periodic_refreshes += 1

    def _banks_of_rank(self, rank_index: int) -> list[BankTimeline]:
        per_rank = self.config.banks_per_rank
        lo = rank_index * per_rank
        return self.banks[lo:lo + per_rank]

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def preventive_busy_fraction(self, elapsed_ns: float) -> float:
        """Fraction of bank-time spent on preventive refreshes (Fig. 3)."""
        if elapsed_ns <= 0:
            raise SimulationError("elapsed time must be positive")
        busy = sum(b.preventive_busy_ns for b in self.banks)
        return busy / (elapsed_ns * len(self.banks))
