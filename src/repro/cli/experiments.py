"""The ``list``, ``run``, and ``catalog`` subcommands."""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.analysis.experiments import EXPERIMENTS, run_experiment
from repro.analysis.render import curve_table
from repro.cli.shared import (
    add_cache_tier_flag,
    add_deprecated_sim_kernel_flag,
    add_kernel_policy_flag,
    install_policy,
)
from repro.dram.catalog import all_module_specs, module_spec
from repro.dram.timing import TESTED_TRAS_FACTORS


def _render(result: object) -> str:
    """Best-effort text rendering of an experiment result."""
    if isinstance(result, str):
        return result
    if isinstance(result, dict):
        flat_numeric = all(isinstance(v, (int, float))
                           for v in result.values())
        if flat_numeric and result:
            return curve_table(result)
        lines = []
        for key, value in result.items():
            lines.append(f"[{key}]")
            lines.append(repr(value))
        return "\n".join(lines)
    return repr(result)


def cmd_list(_: argparse.Namespace) -> int:
    width = max(len(identifier) for identifier in EXPERIMENTS)
    for identifier, experiment in EXPERIMENTS.items():
        print(f"{identifier:<{width}}  {experiment.description}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    install_policy(args)
    result = run_experiment(args.experiment)
    text = _render(result)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def cmd_catalog(args: argparse.Namespace) -> int:
    if args.module:
        spec = module_spec(args.module)
        print(f"{spec.module_id}: {spec.part_number} ({spec.form_factor}, "
              f"{spec.die_density_gbit} Gb, die {spec.die_revision}, "
              f"x{spec.device_width}, {spec.num_chips} chips)")
        for factor in TESTED_TRAS_FACTORS:
            value = spec.lowest_nrh[factor]
            print(f"  {factor:.2f} x tRAS: lowest N_RH = {value}")
        return 0
    for spec in all_module_specs():
        print(f"{spec.module_id:<5} {spec.part_number:<25} "
              f"{spec.die_density_gbit:>3} Gb  x{spec.device_width}")
    return 0


def register(subparsers) -> None:
    list_parser = subparsers.add_parser("list", help="list all experiments")
    list_parser.set_defaults(func=cmd_list)

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--out", help="write the result to a file")
    run_parser.add_argument("--check-protocol", default="off",
                            choices=("off", "tolerant", "strict"),
                            help="attach the DDR protocol checker to every "
                                 "simulation this experiment runs")
    add_kernel_policy_flag(
        run_parser,
        "execution policy for every stage: scalar "
        "oracles, fast paths, numpy array "
        "tiers, or per-stage defaults "
        "(results are bit-identical either "
        "way; --check-protocol forces the "
        "oracles)")
    add_cache_tier_flag(run_parser)
    add_deprecated_sim_kernel_flag(run_parser)
    run_parser.set_defaults(func=cmd_run)

    catalog_parser = subparsers.add_parser(
        "catalog", help="show the tested-module catalog")
    catalog_parser.add_argument("module", nargs="?",
                                help="module id for per-module detail")
    catalog_parser.set_defaults(func=cmd_catalog)
