"""The ``campaign`` subcommand (and its config builder, shared with
``job submit campaign``)."""

from __future__ import annotations

import argparse
import sys

from repro.characterization.campaign import (
    CampaignConfig,
    CharacterizationCampaign,
)
from repro.cli.shared import (
    add_cache_tier_flag,
    add_deprecated_device_kernel_flag,
    add_deprecated_sim_kernel_flag,
    add_kernel_policy_flag,
    add_scheduler_flags,
    install_policy,
)
from repro.runtime import PrintProgress
from repro.validation import check_physics


def campaign_config_from_args(args: argparse.Namespace) -> CampaignConfig:
    """One builder for batch runs and service submissions: identical flags
    produce an identical config, hence the same job digest and results."""
    module_ids = (tuple(args.modules.split(","))
                  if args.modules else CampaignConfig().module_ids)
    return CampaignConfig(module_ids=module_ids, per_region=args.rows)


def cmd_campaign(args: argparse.Namespace) -> int:
    install_policy(args)
    config = campaign_config_from_args(args)
    campaign = CharacterizationCampaign(args.dir, config)
    if args.status:
        print(campaign.summary())
        return 0
    if args.check_protocol != "off":
        # Physics guards before spending hours measuring a broken model;
        # strict raises, tolerant reports and continues.
        for module_id in config.module_ids:
            for problem in check_physics(module_id,
                                         mode=args.check_protocol):
                print(f"physics: {problem}", file=sys.stderr)
    campaign.run(jobs=args.jobs, progress=PrintProgress(), force=args.force,
                 task_timeout_s=args.task_timeout,
                 scheduler=args.scheduler, workers=args.workers,
                 serve=args.serve, lease_batch=args.lease_batch)
    print(campaign.summary())
    return 0


def add_campaign_spec_flags(parser: argparse.ArgumentParser) -> None:
    """The flags that define *what* a campaign covers (the job spec)."""
    parser.add_argument("--modules",
                        help="comma-separated module ids (default: all 30)")
    parser.add_argument("--rows", type=int, default=64,
                        help="rows per bank region")


def register(subparsers) -> None:
    campaign_parser = subparsers.add_parser(
        "campaign", help="run a resumable characterization campaign")
    campaign_parser.add_argument("--dir", default="campaign_results",
                                 help="results directory")
    add_campaign_spec_flags(campaign_parser)
    campaign_parser.add_argument("--jobs", type=int, default=None,
                                 help="parallel worker processes "
                                      "(default: all cores)")
    campaign_parser.add_argument("--task-timeout", type=float, default=None,
                                 metavar="SECONDS",
                                 help="per-module deadline: a worker that "
                                      "produces no result in time is "
                                      "killed and the module retried "
                                      "(needs --jobs > 1)")
    campaign_parser.add_argument("--status", action="store_true",
                                 help="only report progress")
    campaign_parser.add_argument("--check-protocol", default="off",
                                 choices=("off", "tolerant", "strict"),
                                 help="run the physics invariant guards on "
                                      "every module before measuring "
                                      "(forces the scalar oracle kernels)")
    add_kernel_policy_flag(
        campaign_parser,
        "execution policy for every stage "
        "(results are bit-identical either "
        "way)")
    add_cache_tier_flag(campaign_parser)
    campaign_parser.add_argument("--force", action="store_true",
                                 help="re-run every module and clear every "
                                      "persisted cache tier under --dir")
    add_deprecated_device_kernel_flag(campaign_parser)
    add_deprecated_sim_kernel_flag(campaign_parser)
    add_scheduler_flags(campaign_parser, "module")
    campaign_parser.set_defaults(func=cmd_campaign)
