"""The ``validate`` and ``chaos`` subcommands."""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro.dram.catalog import all_module_ids
from repro.validation import check_physics


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.validation.matrix import run_matrix
    failures = 0
    module_ids = (tuple(args.modules.split(","))
                  if args.modules else all_module_ids())
    for module_id in module_ids:
        problems = check_physics(module_id, mode="tolerant")
        for problem in problems:
            print(f"physics: {problem}", file=sys.stderr)
        failures += len(problems)
    print(f"physics invariants: {len(module_ids)} module(s) checked, "
          f"{failures} problem(s)")
    if args.skip_faults:
        return 1 if failures else 0
    if args.dir:
        report = run_matrix(args.dir, seed=args.seed)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-validate-") as workdir:
            report = run_matrix(workdir, seed=args.seed)
    print(report.summary())
    if args.out:
        report.save(args.out)
        print(f"wrote {args.out}")
    return 0 if report.all_covered and not failures else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.validation.chaos import run_chaos_matrix
    if args.dir:
        report = run_chaos_matrix(args.dir, seed=args.seed, only=args.only)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
            report = run_chaos_matrix(workdir, seed=args.seed,
                                      only=args.only)
    print(report.summary())
    if args.out:
        report.save(args.out)
        print(f"wrote {args.out}")
    return 0 if report.all_covered else 1


def register(subparsers) -> None:
    validate_parser = subparsers.add_parser(
        "validate", help="run physics guards and the fault-injection matrix")
    validate_parser.add_argument("--modules",
                                 help="comma-separated module ids for the "
                                      "physics guards (default: all 30)")
    validate_parser.add_argument("--seed", type=int, default=2025,
                                 help="fault-matrix seed")
    validate_parser.add_argument("--dir",
                                 help="keep fault-scenario artifacts here "
                                      "(default: a temporary directory)")
    validate_parser.add_argument("--out",
                                 help="write the matrix report JSON here")
    validate_parser.add_argument("--skip-faults", action="store_true",
                                 help="physics guards only")
    validate_parser.set_defaults(func=cmd_validate)

    chaos_parser = subparsers.add_parser(
        "chaos", help="run the deterministic runtime chaos matrix")
    chaos_parser.add_argument("--seed", type=int, default=2025,
                              help="chaos-scenario seed")
    chaos_parser.add_argument("--only",
                              help="run only scenarios whose name contains "
                                   "this substring (e.g. 'fleet')")
    chaos_parser.add_argument("--dir",
                              help="keep chaos-scenario artifacts here "
                                   "(default: a temporary directory)")
    chaos_parser.add_argument("--out",
                              help="write the chaos report JSON here")
    chaos_parser.set_defaults(func=cmd_chaos)
