"""The ``serve-api`` and ``job`` subcommands (characterization-as-a-service).

``serve-api`` turns this host into a job endpoint: clients submit
campaign/sweep specs over the fleet's frame protocol, the service dedups
them by content digest, runs them through the same scheduler seam as the
batch CLI, and serves results and on-demand figures back.  The ``job``
verbs are that client::

    repro-experiments serve-api --dir jobs --serve 127.0.0.1:7910 &
    repro-experiments job submit sweep --connect :7910 --mitigations PARA
    repro-experiments job watch  <job-id> --connect :7910
    repro-experiments job fetch  <job-id> --connect :7910 --dest out/

Because the batch ``campaign``/``sweep`` subcommands drive the very same
job layer in-process, a fetched result directory is byte-identical to a
direct run with the same flags.
"""

from __future__ import annotations

import argparse

from repro.cli.campaigns import add_campaign_spec_flags, campaign_config_from_args
from repro.cli.shared import (
    add_cache_tier_flag,
    add_connect_flags,
    add_kernel_policy_flag,
    install_policy,
)
from repro.cli.sweeps import add_sweep_spec_flags, sweep_grid_from_args
from repro.service.jobs import DONE, JobSpec


def _client(args: argparse.Namespace):
    from repro.service.client import ServiceClient
    return ServiceClient(args.connect,
                         connect_timeout_s=args.connect_timeout)


def _print_job(frame: dict) -> None:
    line = f"{frame['job_id']} state={frame['state']}"
    if frame.get("deduped"):
        line += " deduped=true"
    if frame.get("position") is not None:
        line += f" position={frame['position']}"
    print(line)
    if frame.get("error"):
        print(f"error: {frame['error']}")


# ----------------------------------------------------------------------
# serve-api
# ----------------------------------------------------------------------
def cmd_serve_api(args: argparse.Namespace) -> int:
    from repro.service.api import CharacterizationService
    from repro.service.manager import RunOptions
    install_policy(args)
    options = RunOptions(jobs=args.jobs, task_timeout_s=args.task_timeout,
                         scheduler=args.scheduler, workers=args.workers,
                         serve=args.fleet_serve,
                         lease_batch=args.lease_batch)
    service = CharacterizationService(args.dir, serve=args.serve,
                                      options=options)
    host, port = service.start()
    print(f"serving jobs from {args.dir} on {host}:{port}", flush=True)
    service.serve_forever()
    return 0


# ----------------------------------------------------------------------
# job verbs (the service's CLI client)
# ----------------------------------------------------------------------
def cmd_job_submit(args: argparse.Namespace) -> int:
    if args.kind == "campaign":
        config = campaign_config_from_args(args)
    else:
        config = sweep_grid_from_args(args)
    spec = JobSpec(kind=args.kind, config=config)
    with _client(args) as client:
        frame = client.submit(spec)
    _print_job(frame)
    return 0


def cmd_job_status(args: argparse.Namespace) -> int:
    with _client(args) as client:
        frame = client.status(args.job_id)
    _print_job(frame)
    return 0


def cmd_job_watch(args: argparse.Namespace) -> int:
    from repro.runtime import PrintProgress
    from repro.service.manager import replay_event
    reporter = PrintProgress()
    with _client(args) as client:
        end = client.stream(
            args.job_id,
            on_event=lambda event: replay_event(reporter, event))
    state = end.get("state")
    print(f"{args.job_id} state={state}")
    if end.get("error"):
        print(f"error: {end['error']}")
    return 0 if state == DONE else 1


def cmd_job_fetch(args: argparse.Namespace) -> int:
    with _client(args) as client:
        if args.figure:
            print(client.figure(args.job_id, args.figure))
            return 0
        written = client.fetch(args.job_id, args.dest)
    print(f"fetched {len(written)} file(s) to {args.dest}")
    return 0


# ----------------------------------------------------------------------
def register(subparsers) -> None:
    from repro.runtime.scheduler import SCHEDULER_NAMES
    serve_parser = subparsers.add_parser(
        "serve-api",
        help="serve the characterization job API over TCP")
    serve_parser.add_argument("--dir", default="service_jobs",
                              help="durable job store root (one namespace "
                                   "per job id)")
    serve_parser.add_argument("--serve", default="127.0.0.1:0",
                              metavar="HOST:PORT",
                              help="listen here for job clients (default: "
                                   "an ephemeral loopback port, printed "
                                   "on startup)")
    serve_parser.add_argument("--jobs", type=int, default=None,
                              help="parallel worker processes per job "
                                   "(default: all cores)")
    serve_parser.add_argument("--task-timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="per-task deadline inside every job "
                                   "(needs --jobs > 1)")
    serve_parser.add_argument("--scheduler", default="local",
                              choices=SCHEDULER_NAMES,
                              help="execution backend for every job: "
                                   "local pool or worker fleet (results "
                                   "are byte-identical either way)")
    serve_parser.add_argument("--workers", type=int, default=None,
                              help="fleet only: loopback workers spawned "
                                   "per job (default: 2)")
    serve_parser.add_argument("--fleet-serve", default=None,
                              metavar="HOST:PORT",
                              help="fleet only: listen here for external "
                                   "`repro-experiments worker` clients")
    serve_parser.add_argument("--lease-batch", type=int, default=None,
                              metavar="N",
                              help="fleet only: tasks leased per round "
                                   "trip (default: 4)")
    add_kernel_policy_flag(
        serve_parser,
        "execution policy for every job "
        "(results are bit-identical either "
        "way)")
    add_cache_tier_flag(serve_parser)
    serve_parser.set_defaults(func=cmd_serve_api)

    job_parser = subparsers.add_parser(
        "job", help="submit and follow jobs on a serve-api endpoint")
    job_subparsers = job_parser.add_subparsers(dest="job_command",
                                               required=True)

    submit_parser = job_subparsers.add_parser(
        "submit", help="submit a job spec (dedups by content digest)")
    kind_subparsers = submit_parser.add_subparsers(dest="kind",
                                                   required=True)
    submit_campaign = kind_subparsers.add_parser(
        "campaign", help="submit a characterization campaign")
    add_connect_flags(submit_campaign, "serve-api endpoint")
    add_campaign_spec_flags(submit_campaign)
    submit_campaign.set_defaults(func=cmd_job_submit, kind="campaign")
    submit_sweep = kind_subparsers.add_parser(
        "sweep", help="submit a system-evaluation sweep")
    add_connect_flags(submit_sweep, "serve-api endpoint")
    add_sweep_spec_flags(submit_sweep)
    submit_sweep.add_argument("--check-protocol", default=None,
                              choices=("off", "tolerant", "strict"),
                              help="protocol-check every grid point "
                                   "(default: the config file's setting, "
                                   "else off)")
    submit_sweep.set_defaults(func=cmd_job_submit, kind="sweep")

    status_parser = job_subparsers.add_parser(
        "status", help="one job's state, history, and error")
    status_parser.add_argument("job_id")
    add_connect_flags(status_parser, "serve-api endpoint")
    status_parser.set_defaults(func=cmd_job_status)

    watch_parser = job_subparsers.add_parser(
        "watch", help="stream a job's live progress until it finishes")
    watch_parser.add_argument("job_id")
    add_connect_flags(watch_parser, "serve-api endpoint")
    watch_parser.set_defaults(func=cmd_job_watch)

    fetch_parser = job_subparsers.add_parser(
        "fetch", help="download a job's result files (or render a figure)")
    fetch_parser.add_argument("job_id")
    add_connect_flags(fetch_parser, "serve-api endpoint")
    fetch_parser.add_argument("--dest", default=".",
                              help="directory to write result files into")
    fetch_parser.add_argument("--figure", default=None, metavar="NAME",
                              help="print this figure rendered from the "
                                   "job's persisted rows instead of "
                                   "fetching files (e.g. fig17)")
    fetch_parser.set_defaults(func=cmd_job_fetch)
