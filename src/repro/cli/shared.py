"""Shared argument builders and policy installation for every subcommand.

Each subcommand module (:mod:`repro.cli.experiments`,
:mod:`repro.cli.campaigns`, ...) registers its own parsers; the flag
groups that appear on more than one of them — the execution-policy
knobs, the deprecated per-stage kernel shims, the ``--scheduler``
backend selection — are built here so their spellings and semantics
cannot drift apart.
"""

from __future__ import annotations

import argparse

from repro.exec import (
    KERNEL_POLICIES,
    ExecutionPolicy,
    set_default_policy,
    warn_deprecated_flag,
)


def install_policy(args: argparse.Namespace, *,
                   check_protocol: str | None = None) -> ExecutionPolicy:
    """Build this invocation's :class:`ExecutionPolicy` — the one place the
    CLI decides kernels, oracle forcing, and cache tiers — and install it
    as the process default every layer resolves against.

    The old per-stage flags survive as deprecation shims: each warns once
    and lands as the matching per-stage override, which resolves to the
    byte-identical kernel choice.
    """
    device = getattr(args, "device_kernel", None)
    sim = getattr(args, "sim_kernel", None)
    if device is not None:
        warn_deprecated_flag("--device-kernel",
                             "--kernel-policy scalar|fast|array|auto")
    if sim is not None:
        warn_deprecated_flag("--sim-kernel",
                             "--kernel-policy scalar|fast|array|auto")
    if check_protocol is None:
        check_protocol = getattr(args, "check_protocol", None) or "off"
    policy = ExecutionPolicy(
        kernel_policy=getattr(args, "kernel_policy", "auto"),
        check_protocol=check_protocol,
        device_kernel=device, sim_kernel=sim,
        cache_tier=getattr(args, "cache_tier", "auto"))
    return set_default_policy(policy)


def add_kernel_policy_flag(parser: argparse.ArgumentParser,
                           help_text: str) -> None:
    """``--kernel-policy`` with per-subcommand help wording."""
    parser.add_argument("--kernel-policy", default="auto",
                        choices=KERNEL_POLICIES, help=help_text)


def add_cache_tier_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-tier", default="auto",
                        choices=("auto", "disk", "memory", "off"),
                        help="memoization tiers: persist to disk, "
                             "memory only, or off")


def add_deprecated_sim_kernel_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sim-kernel", default=None,
                        choices=("scalar", "batched"),
                        help="deprecated: use --kernel-policy "
                             "(kept as a per-stage override)")


def add_deprecated_device_kernel_flag(
        parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--device-kernel", default=None,
                        choices=("scalar", "vectorized"),
                        help="deprecated: use --kernel-policy "
                             "(kept as a per-stage override)")


def add_scheduler_flags(parser: argparse.ArgumentParser, unit: str) -> None:
    """The shared ``--scheduler`` knobs of campaign, sweep, and serve-api."""
    from repro.runtime.scheduler import SCHEDULER_NAMES
    parser.add_argument("--scheduler", default="local",
                        choices=SCHEDULER_NAMES,
                        help=f"execution backend: drain {unit}s on this "
                             f"host (local) or lease them to a worker "
                             f"fleet over TCP (fleet); results are "
                             f"byte-identical either way")
    parser.add_argument("--workers", type=int, default=None,
                        help="fleet only: loopback worker processes the "
                             "coordinator spawns itself (default: 2)")
    parser.add_argument("--serve", default=None, metavar="HOST:PORT",
                        help="fleet only: listen here for external "
                             "`repro-experiments worker` clients "
                             "(default: an ephemeral loopback port for "
                             "the spawned workers only)")
    parser.add_argument("--lease-batch", type=int, default=None,
                        metavar="N",
                        help=f"fleet only: {unit}s leased to a worker "
                             f"per round trip (default: 4)")


def add_connect_flags(parser: argparse.ArgumentParser,
                      what: str) -> None:
    """``--connect``/``--connect-timeout`` of every TCP client verb."""
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help=f"{what} address")
    parser.add_argument("--connect-timeout", type=float, default=10.0,
                        metavar="SECONDS",
                        help="give up connecting after this long "
                             "(bounded exponential backoff underneath; "
                             "default: 10)")
