"""Command-line interface: list and run the paper's experiments.

Installed as ``repro-experiments``::

    repro-experiments list
    repro-experiments run fig4
    repro-experiments run table4 --out table4.txt
    repro-experiments catalog S6
    repro-experiments validate
    repro-experiments sweep --check-protocol strict
    repro-experiments serve-api --dir jobs --serve 127.0.0.1:7910

``run``, ``campaign``, and ``sweep`` accept ``--check-protocol
{off,tolerant,strict}`` to attach the :mod:`repro.validation` protocol
checker (and, for campaigns, the physics invariant guards); ``validate``
runs the physics guards plus the deterministic fault-injection matrix and
fails if any fault class goes undetected.

The CLI is one package with one module per subcommand group —
:mod:`repro.cli.experiments` (list/run/catalog),
:mod:`repro.cli.campaigns`, :mod:`repro.cli.sweeps`,
:mod:`repro.cli.fleet` (worker), :mod:`repro.cli.validation`
(validate/chaos), and :mod:`repro.cli.service` (serve-api and the
``job`` client verbs) — sharing flag builders from
:mod:`repro.cli.shared`.  ``campaign`` and ``sweep`` drive the same job
layer (:mod:`repro.service`) in-process that ``serve-api`` exposes over
TCP, so batch runs and fetched service results are byte-identical.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli import (
    campaigns,
    experiments,
    fleet,
    service,
    sweeps,
    validation,
)
from repro.errors import ReproError

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the PaCRAM paper's tables and figures.")
    subparsers = parser.add_subparsers(dest="command", required=True)
    experiments.register(subparsers)
    campaigns.register(subparsers)
    sweeps.register(subparsers)
    fleet.register(subparsers)
    validation.register(subparsers)
    service.register(subparsers)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
