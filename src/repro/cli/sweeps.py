"""The ``sweep`` subcommand (and its grid builder, shared with
``job submit sweep``)."""

from __future__ import annotations

import argparse

from repro.analysis.sweeprunner import SweepGrid, SweepRunner, render_aggregate
from repro.cli.shared import (
    add_cache_tier_flag,
    add_deprecated_sim_kernel_flag,
    add_kernel_policy_flag,
    add_scheduler_flags,
    install_policy,
)
from repro.runtime import PrintProgress
from repro.sim.configloader import EvaluationConfig


def sweep_grid_from_args(args: argparse.Namespace) -> SweepGrid:
    """One builder for batch runs and service submissions: identical flags
    produce an identical grid, hence the same job digest and rows."""
    if args.config:
        grid = EvaluationConfig.load(args.config).sweep_grid()
        if args.check_protocol is not None:
            grid.check_protocol = args.check_protocol
        return grid
    return SweepGrid(
        mitigations=tuple(args.mitigations.split(",")),
        nrh_values=tuple(int(v) for v in args.nrh.split(",")),
        requests=args.requests,
        check_protocol=args.check_protocol or "off")


def cmd_sweep(args: argparse.Namespace) -> int:
    grid = sweep_grid_from_args(args)
    # The config file may turn checking on: build the policy from the
    # grid's resolved mode so oracle forcing agrees with what runs.
    install_policy(args, check_protocol=grid.check_protocol)
    runner = SweepRunner(args.dir, grid)
    if args.status:
        done, total = runner.status()
        print(f"{done}/{total} runs done")
        return 0
    rows = runner.run(jobs=args.jobs, progress=PrintProgress(),
                      force=args.force, task_timeout_s=args.task_timeout,
                      scheduler=args.scheduler, workers=args.workers,
                      serve=args.serve, lease_batch=args.lease_batch)
    violations = sum(row.violations for row in rows)
    if grid.check_protocol != "off":
        print(f"protocol check ({grid.check_protocol}): "
              f"{violations} violation(s) across {len(rows)} points")
    rendered = render_aggregate(runner.aggregate(rows))
    if rendered:
        print(rendered)
    described = runner.execution.describe_report()
    if described is not None:
        print(described)
    print(runner.execution.describe_caches())
    return 0


def add_sweep_spec_flags(parser: argparse.ArgumentParser) -> None:
    """The flags that define *what* a sweep covers (the job spec)."""
    parser.add_argument("--mitigations", default="PARA,RFM",
                        help="comma-separated mitigation names")
    parser.add_argument("--nrh", default="1024,64",
                        help="comma-separated N_RH values")
    parser.add_argument("--requests", type=int, default=2_000,
                        help="memory requests per workload")
    parser.add_argument("--config",
                        help="JSON evaluation-config file (overrides "
                             "the other grid flags; see A.6)")


def register(subparsers) -> None:
    sweep_parser = subparsers.add_parser(
        "sweep", help="run a resumable system-evaluation sweep")
    sweep_parser.add_argument("--dir", default="sweep_results",
                              help="results directory")
    add_sweep_spec_flags(sweep_parser)
    sweep_parser.add_argument("--jobs", type=int, default=None,
                              help="parallel worker processes "
                                   "(default: all cores)")
    sweep_parser.add_argument("--task-timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="per-point deadline: a worker that "
                                   "produces no row in time is killed and "
                                   "the point retried (needs --jobs > 1)")
    sweep_parser.add_argument("--status", action="store_true",
                              help="only report progress")
    sweep_parser.add_argument("--check-protocol", default=None,
                              choices=("off", "tolerant", "strict"),
                              help="protocol-check every grid point "
                                   "(default: the config file's setting, "
                                   "else off)")
    add_kernel_policy_flag(
        sweep_parser,
        "execution policy for every grid point "
        "(rows are bit-identical either way; "
        "--check-protocol forces the scalar "
        "oracle)")
    add_cache_tier_flag(sweep_parser)
    add_deprecated_sim_kernel_flag(sweep_parser)
    sweep_parser.add_argument("--force", action="store_true",
                              help="re-run every point and clear every "
                                   "persisted cache tier under --dir")
    add_scheduler_flags(sweep_parser, "point")
    sweep_parser.set_defaults(func=cmd_sweep)
