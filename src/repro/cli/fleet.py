"""The ``worker`` subcommand: join a fleet coordinator over TCP."""

from __future__ import annotations

import argparse
import sys


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.runtime.distributed import run_worker
    from repro.runtime.scheduler import parse_address
    host, port = parse_address(args.connect)
    if host == "0.0.0.0":  # --connect :7045 means "this host"
        host = "127.0.0.1"
    code = run_worker(host, port, worker_id=args.id, batch=args.batch,
                      scratch_dir=args.scratch,
                      connect_timeout_s=args.connect_timeout)
    if code == 3:
        print("coordinator went away (run finished or aborted)",
              file=sys.stderr)
        return 0  # a drained fleet is a success from the worker's side
    return code


def register(subparsers) -> None:
    worker_parser = subparsers.add_parser(
        "worker", help="join a fleet coordinator as an execution worker")
    worker_parser.add_argument("--connect", required=True,
                               metavar="HOST:PORT",
                               help="coordinator address (the campaign/"
                                    "sweep process running with "
                                    "--scheduler fleet --serve ...)")
    worker_parser.add_argument("--connect-timeout", type=float,
                               default=10.0, metavar="SECONDS",
                               help="give up connecting after this long "
                                    "(bounded exponential backoff "
                                    "underneath; default: 10)")
    worker_parser.add_argument("--batch", type=int, default=4,
                               help="tasks to request per lease")
    worker_parser.add_argument("--scratch", default=None, metavar="DIR",
                               help="scratch directory for task results "
                                    "(default: a temporary directory)")
    worker_parser.add_argument("--id", default=None,
                               help="worker name in the coordinator's "
                                    "ledger and run report "
                                    "(default: w-<hostname>-<pid>)")
    worker_parser.set_defaults(func=cmd_worker)
