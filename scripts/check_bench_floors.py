#!/usr/bin/env python
"""Re-check persisted benchmark floors from BENCH_system_scaling.json.

The system-scaling bench asserts its floors in-process, but the asserts
live and die with that pytest run; this script re-reads the persisted
payload so CI (or a human, later) can verify the artifact that actually
shipped.  The payload carries its own ``floors`` map — the check fails
if a floor regresses, if a floored metric is missing, or if the array
phase stopped being strictly faster than the batched phase.

Usage::

    python scripts/check_bench_floors.py [path/to/BENCH_system_scaling.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

DEFAULT_PAYLOAD = (Path(__file__).resolve().parent.parent
                   / "bench_results" / "BENCH_system_scaling.json")


def check(payload: dict) -> list[str]:
    """Return a list of human-readable floor violations (empty = pass)."""
    problems = []
    floors = payload.get("floors")
    if not floors:
        return ["payload carries no 'floors' map — bench too old or torn"]
    for metric, floor in sorted(floors.items()):
        value = payload.get(metric)
        if value is None:
            problems.append(f"{metric}: floored at {floor} but missing "
                            "from the payload")
        elif value < floor:
            problems.append(f"{metric}: {value:.2f} below floor {floor}")
    array_s, after_s = payload.get("array_s"), payload.get("after_s")
    if array_s is not None and after_s is not None and array_s >= after_s:
        problems.append(f"array phase ({array_s:.2f}s) not strictly faster "
                        f"than batched ({after_s:.2f}s)")
    return problems


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_PAYLOAD
    if not path.is_file():
        print(f"check_bench_floors: no payload at {path}", file=sys.stderr)
        return 2
    payload = json.loads(path.read_text())
    problems = check(payload)
    if problems:
        for problem in problems:
            print(f"check_bench_floors: {problem}", file=sys.stderr)
        return 1
    floors = payload["floors"]
    summary = "  ".join(f"{metric}={payload[metric]:.2f}(>={floor})"
                        for metric, floor in sorted(floors.items()))
    print(f"check_bench_floors: ok  {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
