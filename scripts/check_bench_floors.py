#!/usr/bin/env python
"""Re-check persisted benchmark floors and ceilings from BENCH_*.json.

The benches assert their bounds in-process, but those asserts live and
die with the pytest run; this script re-reads the persisted payloads so
CI (or a human, later) can verify the artifacts that actually shipped.
Each payload carries its own bounds:

* ``floors`` — metrics that must not drop below a minimum (speedups,
  payload-size ratios);
* ``ceilings`` — metrics that must not rise above a maximum (the fleet
  coordinator's per-task overhead).

The check fails if a bound regresses, if a bounded metric is missing, or
if a payload carrying ``array_s``/``after_s`` stopped having the array
phase strictly faster than the batched one.

Usage::

    python scripts/check_bench_floors.py [payload.json ...]

With no arguments, every ``bench_results/BENCH_*.json`` is checked.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"


def check(payload: dict) -> list[str]:
    """Return a list of human-readable bound violations (empty = pass)."""
    problems = []
    floors = payload.get("floors") or {}
    ceilings = payload.get("ceilings") or {}
    if not floors and not ceilings:
        return ["payload carries no 'floors' or 'ceilings' map — bench "
                "too old or torn"]
    for metric, floor in sorted(floors.items()):
        value = payload.get(metric)
        if value is None:
            problems.append(f"{metric}: floored at {floor} but missing "
                            "from the payload")
        elif value < floor:
            problems.append(f"{metric}: {value:.2f} below floor {floor}")
    for metric, ceiling in sorted(ceilings.items()):
        value = payload.get(metric)
        if value is None:
            problems.append(f"{metric}: capped at {ceiling} but missing "
                            "from the payload")
        elif value > ceiling:
            problems.append(f"{metric}: {value:.2f} above ceiling {ceiling}")
    array_s, after_s = payload.get("array_s"), payload.get("after_s")
    if array_s is not None and after_s is not None and array_s >= after_s:
        problems.append(f"array phase ({array_s:.2f}s) not strictly faster "
                        f"than batched ({after_s:.2f}s)")
    return problems


def _summary(payload: dict) -> str:
    parts = []
    for metric, floor in sorted((payload.get("floors") or {}).items()):
        parts.append(f"{metric}={payload[metric]:.2f}(>={floor})")
    for metric, ceiling in sorted((payload.get("ceilings") or {}).items()):
        parts.append(f"{metric}={payload[metric]:.2f}(<={ceiling})")
    return "  ".join(parts)


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        paths = [Path(arg) for arg in argv[1:]]
    else:
        paths = sorted(RESULTS_DIR.glob("BENCH_*.json"))
        if not paths:
            print(f"check_bench_floors: no BENCH_*.json under {RESULTS_DIR}",
                  file=sys.stderr)
            return 2
    failed = False
    for path in paths:
        if not path.is_file():
            print(f"check_bench_floors: no payload at {path}",
                  file=sys.stderr)
            return 2
        payload = json.loads(path.read_text())
        problems = check(payload)
        if problems:
            failed = True
            for problem in problems:
                print(f"check_bench_floors: {path.name}: {problem}",
                      file=sys.stderr)
        else:
            print(f"check_bench_floors: {path.name} ok  {_summary(payload)}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
