#!/usr/bin/env python3
"""Characterization campaign: the paper's §5 study on any catalog module.

Runs Algorithm 1 across the tested latencies (and optionally repeated
partial restorations and temperatures), then prints the figures' data:
normalized N_RH box statistics (Fig. 6), lowest N_RH per latency (Fig. 7 /
Table 3), and normalized BER (Fig. 9).

Usage:
    python examples/characterize_module.py [MODULE_ID] [--rows N]
    python examples/characterize_module.py S6 --rows 24
    python examples/characterize_module.py H5 --rows 16 --npr 1,8
"""

import argparse

from repro import characterize_module, module_spec
from repro.analysis.boxstats import BoxStats
from repro.dram.timing import TESTED_TRAS_FACTORS


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("module", nargs="?", default="S6",
                        help="catalog module id (H0-H8, M0-M6, S0-S13)")
    parser.add_argument("--rows", type=int, default=16,
                        help="rows per bank region (paper uses 1024)")
    parser.add_argument("--npr", default="1",
                        help="comma-separated consecutive-restoration counts")
    parser.add_argument("--temps", default="80",
                        help="comma-separated temperatures in Celsius")
    parser.add_argument("--save", metavar="PATH",
                        help="write the raw measurements to a JSON file")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    spec = module_spec(args.module)
    n_prs = tuple(int(x) for x in args.npr.split(","))
    temps = tuple(float(x) for x in args.temps.split(","))
    print(f"Module {spec.module_id}: {spec.part_number} "
          f"({spec.form_factor}, {spec.die_density_gbit} Gb, "
          f"die rev. {spec.die_revision}, x{spec.device_width})")
    print(f"Testing 3 x {args.rows} rows, N_PR={n_prs}, T={temps} C\n")

    result = characterize_module(
        spec.module_id, tras_factors=TESTED_TRAS_FACTORS,
        n_prs=n_prs, temperatures_c=temps, per_region=args.rows)

    print(f"{'tRAS':>6} {'lowest N_RH':>12} {'published':>10} "
          f"{'normalized N_RH (box)':>50}")
    for factor in TESTED_TRAS_FACTORS:
        lowest = result.lowest_nrh(factor)
        published = spec.lowest_nrh[factor]
        values = result.normalized_nrh(factor)
        box = BoxStats.from_values(values).row() if values else "-"
        print(f"{factor:>6.2f} {str(lowest):>12} {str(published):>10} "
              f"{box:>50}")

    print("\nNormalized BER:")
    for factor in TESTED_TRAS_FACTORS:
        values = result.normalized_ber(factor)
        if values:
            print(f"  {factor:.2f}: {BoxStats.from_values(values).row()}")

    if args.save:
        result.save(args.save)
        print(f"\nRaw measurements written to {args.save}")


if __name__ == "__main__":
    main()
