#!/usr/bin/env python3
"""Design-space exploration: which mitigation + PaCRAM config to deploy?

The scenario the paper's introduction motivates: a system designer must
protect DRAM with a worsening RowHammer threshold and wants to know, for
each mitigation mechanism, how much of its performance/energy overhead
PaCRAM recovers — and what the area bill is.

Usage:
    python examples/pacram_speedup.py [--nrh 64] [--requests 3000]
"""

import argparse

from repro.analysis.runner import pacram_reference_config, run_simulation
from repro.core.area import fr_area_mm2
from repro.mitigations import make_mitigation

MITIGATIONS = ("PARA", "RFM", "PRAC", "Hydra", "Graphene")
WORKLOADS = ("spec06.mcf", "spec06.lbm", "ycsb.a", "tpc.tpcc64")


def evaluate(mitigation: str, nrh: int, requests: int,
             vendor: str | None) -> tuple[float, float]:
    """(mean IPC, mean energy nJ) across the workload set."""
    pacram = pacram_reference_config(vendor) if vendor else None
    ipcs, energies = [], []
    for name in WORKLOADS:
        result = run_simulation((name,), mitigation=mitigation, nrh=nrh,
                                pacram=pacram, requests=requests)
        ipcs.append(result.mean_ipc)
        energies.append(result.energy_nj)
    return sum(ipcs) / len(ipcs), sum(energies) / len(energies)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nrh", type=int, default=64,
                        help="RowHammer threshold to configure for")
    parser.add_argument("--requests", type=int, default=3_000,
                        help="memory requests per workload")
    args = parser.parse_args()

    print(f"N_RH = {args.nrh}, {len(WORKLOADS)} workloads x "
          f"{args.requests} requests each\n")
    header = (f"{'mitigation':<10} {'base IPC':>9} "
              + "".join(f"{'PaCRAM-' + v:>10}" for v in 'HMS')
              + f" {'area mm2':>9} {'+PaCRAM':>8}")
    print(header)
    for mitigation in MITIGATIONS:
        base_ipc, base_energy = evaluate(mitigation, args.nrh,
                                         args.requests, None)
        cells = []
        for vendor in "HMS":
            ipc, _ = evaluate(mitigation, args.nrh, args.requests, vendor)
            cells.append(f"{(ipc / base_ipc - 1):+9.1%}")
        area = make_mitigation(mitigation, args.nrh).area_mm2(32)
        extra = fr_area_mm2(32)
        print(f"{mitigation:<10} {base_ipc:>9.3f} " + "".join(
            f"{c:>10}" for c in cells)
            + f" {area:>9.4f} {extra:>8.4f}")

    print("\nColumns PaCRAM-H/M/S: IPC change vs the same mitigation "
          "without PaCRAM\n(paper Fig. 17: PaCRAM-H gains up to ~19 % with "
          "PARA and ~12 % with RFM at N_RH=32).")


if __name__ == "__main__":
    main()
