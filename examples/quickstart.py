#!/usr/bin/env python3
"""Quickstart: characterize a module, configure PaCRAM, measure the speedup.

Walks the library's three layers end to end in under a minute:

1. run the paper's Algorithm 1 on a simulated DDR4 module (S6, the
   PaCRAM-S reference) to measure how reduced charge-restoration latency
   changes its RowHammer threshold;
2. derive a PaCRAM operating point from the measurements (and compare it
   with the paper's published Table-4 configuration);
3. simulate a DDR5 system running a memory-intensive workload with the
   PARA mitigation, with and without PaCRAM.
"""

from repro import (
    MemorySystem,
    PaCRAM,
    PaCRAMConfig,
    SystemConfig,
    characterize_module,
    make_mitigation,
    workload_by_name,
)
from repro.units import format_time_ns


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Characterize module S6 (Algorithm 1 at laptop scale).
    # ------------------------------------------------------------------
    print("== Characterizing module S6 (48 rows, 4 latencies) ==")
    result = characterize_module(
        "S6", tras_factors=(1.00, 0.64, 0.36, 0.27), per_region=16)
    nominal = result.lowest_nrh(1.00)
    print(f"lowest N_RH at nominal tRAS: {nominal}")
    for factor in (0.64, 0.36, 0.27):
        lowest = result.lowest_nrh(factor)
        print(f"lowest N_RH at {factor:.2f} x tRAS: {lowest} "
              f"({lowest / nominal:.0%} of nominal)")

    # ------------------------------------------------------------------
    # 2. Configure PaCRAM from our own measurements and from the paper.
    # ------------------------------------------------------------------
    print("\n== PaCRAM operating point (0.36 x tRAS) ==")
    own = PaCRAMConfig.from_characterization(result, 0.36, npcr=2_000)
    published = PaCRAMConfig.from_catalog("S6", 0.36)
    print(f"measured : ratio={own.nrh_reduction_ratio:.2f} "
          f"t_FCRI={format_time_ns(own.tfcri_ns)}")
    print(f"published: ratio={published.nrh_reduction_ratio:.2f} "
          f"t_FCRI={format_time_ns(published.tfcri_ns)} (paper: 374ms)")

    # ------------------------------------------------------------------
    # 3. System simulation: PARA at N_RH = 64, with and without PaCRAM.
    # ------------------------------------------------------------------
    print("\n== System impact (PARA, N_RH = 64, ycsb.a) ==")
    config = SystemConfig(num_cores=1)
    trace = workload_by_name("ycsb.a", requests=6_000)

    baseline = MemorySystem(
        config, [trace], mitigation=make_mitigation("PARA", 64)).run()

    pacram_h = PaCRAMConfig.from_catalog("H5", 0.36)  # PaCRAM-H
    policy = PaCRAM(config, pacram_h)
    mitigation = make_mitigation("PARA", pacram_h.scaled_nrh(64))
    accelerated = MemorySystem(
        config, [trace], mitigation=mitigation, policy=policy).run()

    speedup = accelerated.mean_ipc / baseline.mean_ipc - 1
    savings = 1 - accelerated.energy_nj / baseline.energy_nj
    print(f"IPC    : {baseline.mean_ipc:.3f} -> {accelerated.mean_ipc:.3f} "
          f"({speedup:+.1%})")
    print(f"energy : {baseline.energy_nj / 1e6:.3f} mJ -> "
          f"{accelerated.energy_nj / 1e6:.3f} mJ ({-savings:+.1%})")
    print(f"partial refreshes issued: {policy.partial_refreshes}")


if __name__ == "__main__":
    main()
