#!/usr/bin/env python3
"""RowHammer attack demonstration on the simulated testing platform.

Reproduces, on the software DRAM Bender, the attack primitives the paper's
threat model builds on — against a *simulated* DDR4 module, for education
and for validating mitigation behavior:

1. double-sided RowHammer: find a victim's N_RH and flip its cells;
2. the Half-Double access pattern (distance-2 aggressor) on a Mfr. H part;
3. the defense: a preventive refresh (even a *partial* one at the module's
   safe latency) heals the accumulated disturbance;
4. the PaCRAM caveat: a partial refresh below the safe latency lowers the
   victim's threshold — exactly why PaCRAM must scale the mitigation's
   configured N_RH (§8.2).
"""

from repro import DRAMBenderHost
from repro.characterization.algorithm1 import measure_row, CharacterizationConfig
from repro.characterization.halfdouble import perform_halfdouble
from repro.dram.disturbance import DataPattern
from repro.units import MS

FAST = CharacterizationConfig(iterations=1)
BANK = 0


def hammer(host, victim: int, count: int, restore_first_ns: float | None = None,
           n_pr: int = 1) -> int:
    """One double-sided hammering run; returns the victim's bitflip count."""
    module = host.module
    aggressors = module.mapping.neighbors(victim, 1)
    program = host.new_program()
    program.init_rows(BANK, victim, aggressors, DataPattern.ROW_STRIPE)
    if restore_first_ns is not None:
        program.partial_restoration(BANK, victim, restore_first_ns, n_pr)
    program.hammer_doublesided(BANK, aggressors, count)
    program.sleep_until(64 * MS)
    program.check_bitflips(BANK, victim, key="victim")
    return host.run(program).flips("victim")


def main() -> None:
    host = DRAMBenderHost("S6")  # a Samsung 8 Gb part from the catalog
    victim = 1000

    print("== 1. Double-sided RowHammer ==")
    profile = measure_row(host, BANK, victim, config=FAST)
    print(f"victim row {victim}: N_RH = {profile.nrh} "
          f"(worst-case pattern {profile.wcdp})")
    flips = hammer(host, victim, 100_000)
    print(f"hammering 100K times per aggressor flips {flips} cells "
          f"(BER {flips / 65536:.2e})")

    print("\n== 2. Half-Double on a Mfr. H module ==")
    host_h = DRAMBenderHost("H7")
    hd_hits = 0
    tested = 0
    for row in range(100, 300):
        tested += 1
        if perform_halfdouble(host_h, BANK, row, tras_red_ns=33.0, n_pr=1):
            hd_hits += 1
    print(f"H7: {hd_hits}/{tested} rows flip under Half-Double "
          f"(60K far + 300 near activations — far below N_RH!)")

    print("\n== 3. Preventive refresh as the defense ==")
    module = host.module
    aggressors = module.mapping.neighbors(victim, 1)
    program = host.new_program()
    program.init_rows(BANK, victim, aggressors, DataPattern.ROW_STRIPE)
    program.hammer_doublesided(BANK, aggressors, 50_000)
    # The mitigation mechanism fires a preventive refresh -- at the safe
    # PARTIAL latency (0.36 x tRAS for this module) -- then hammering resumes.
    program.partial_restoration(BANK, victim, 33.0 * 0.36, 1)
    program.hammer_doublesided(BANK, aggressors, 6_000)
    program.sleep_until(64 * MS)
    program.check_bitflips(BANK, victim, key="victim")
    flips = host.run(program).flips("victim")
    print(f"50K hammers + partial preventive refresh + 6K hammers: "
          f"{flips} bitflips (refresh healed the first 50K)")

    print("\n== 4. The PaCRAM caveat: reduced latency lowers N_RH ==")
    weak = measure_row(host, BANK, victim, tras_red_ns=33.0 * 0.27,
                       config=FAST)
    print(f"after a 0.27 x tRAS restoration the same row's N_RH drops "
          f"{profile.nrh} -> {weak.nrh} "
          f"({weak.nrh / profile.nrh:.0%}) — PaCRAM therefore configures "
          f"the mitigation for the reduced threshold (§8.2)")


if __name__ == "__main__":
    main()
