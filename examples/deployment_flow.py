#!/usr/bin/env python3
"""Deployment flow: profiling -> SPD -> boot -> online re-profiling (§10).

Walks the full production lifecycle §10 sketches for getting PaCRAM's
per-module parameters into a running system:

1. **manufacturing time** — the DRAM vendor profiles the module (here:
   Algorithm 1 against the device model) and burns the PaCRAM operating
   points into the module's SPD EEPROM;
2. **boot time** — the memory controller reads and checksums the SPD
   record, picks an operating point, and configures PaCRAM (the on-die
   mode-register variant, §8.5);
3. **runtime** — the system periodically re-profiles in 80-second,
   9.9-MiB-blocking batches to track aging (online profiling), with ECC
   absorbing the stray weak-cell failures in the meantime.
"""

from repro.core.ondie import OnDiePaCRAM
from repro.core.online_profiling import OnlineProfiler
from repro.core.spd import SpdRecord
from repro.dram.ecc import effective_failure_probability
from repro.mitigations import make_mitigation
from repro.sim.config import SystemConfig
from repro.sim.system import MemorySystem
from repro.units import format_time_ns
from repro.workloads import workload_by_name

MODULE = "S6"
FACTOR = 0.45  # PaCRAM-S best-observed latency


def main() -> None:
    # ------------------------------------------------------------------
    print("== 1. Manufacturing: profile and burn SPD ==")
    record = SpdRecord.from_catalog(MODULE)
    blob = record.encode()
    print(f"module {MODULE}: {len(record.entries)} operating points, "
          f"{len(blob)} bytes of SPD (CRC-protected)")
    for entry in record.entries:
        print(f"  {entry.tras_factor:.2f} x tRAS: N_RH={entry.nrh} "
              f"N_PCR={entry.npcr}")

    # ------------------------------------------------------------------
    print("\n== 2. Boot: read SPD, configure PaCRAM ==")
    booted = SpdRecord.decode(blob)  # checksum verified here
    pacram_config = booted.to_pacram_config(FACTOR)
    print(f"operating point {FACTOR} x tRAS: "
          f"N_RH scale {pacram_config.nrh_reduction_ratio:.2f}, "
          f"t_FCRI {format_time_ns(pacram_config.tfcri_ns)}")

    system_config = SystemConfig(num_cores=1)
    policy = OnDiePaCRAM(system_config, pacram_config)
    mitigation = make_mitigation("RFM", pacram_config.scaled_nrh(64))
    trace = workload_by_name("tpc.tpcc64", requests=5_000)
    baseline = MemorySystem(system_config, [trace],
                            mitigation=make_mitigation("RFM", 64)).run()
    result = MemorySystem(system_config, [trace], mitigation=mitigation,
                          policy=policy).run()
    print(f"RFM@64 IPC: {baseline.mean_ipc:.3f} -> {result.mean_ipc:.3f} "
          f"({result.mean_ipc / baseline.mean_ipc - 1:+.1%}); "
          f"{policy.mode_register_writes()} mode-register writes")

    # ------------------------------------------------------------------
    print("\n== 3. Runtime: online re-profiling + ECC headroom ==")
    profiler = OnlineProfiler()
    print(f"bank re-profile: {profiler.total_batches} batches x "
          f"{profiler.cost.batch_seconds:.0f}s "
          f"({profiler.remaining_minutes():.1f} min total, "
          f"{profiler.cost.blocked_bytes / 2**20:.1f} MiB blocked at a time)")
    for _ in range(3):
        batch = profiler.next_batch()
        profiler.complete_batch(batch)
    print(f"after 3 idle windows: {profiler.progress:.1%} of the bank "
          f"re-profiled, {profiler.remaining_minutes():.1f} min remaining")

    raw = 2e-4  # weak-cell retention failure fraction while data ages
    with_ecc = effective_failure_probability(raw, flips_when_failing=1)
    print(f"ECC: raw weak-cell row-failure fraction {raw:.0e} -> "
          f"{with_ecc:.0e} after SEC-DED (aging guardband, §10)")


if __name__ == "__main__":
    main()
