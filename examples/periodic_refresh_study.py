#!/usr/bin/env python3
"""Appendix-B study: extending PaCRAM to periodic refreshes.

Periodic refresh restores every row once per refresh window, so its latency
can be reduced the same way preventive-refresh latency can — with a single
counter ensuring a full-restoration window every N_PCR windows.  This
example sweeps chip density and periodic-refresh latency and reports
normalized performance and energy, reproducing Fig. 19's trend: the bigger
the chip, the more a reduced refresh latency buys.

Usage:
    python examples/periodic_refresh_study.py [--densities 8,64,512]
"""

import argparse

from repro.analysis.figures import fig19_periodic
from repro.analysis.render import sparkline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--densities", default="8,64,512",
                        help="comma-separated chip densities in Gbit")
    parser.add_argument("--factors", default="1.0,0.64,0.36,0.18",
                        help="comma-separated periodic-refresh latency factors")
    parser.add_argument("--requests", type=int, default=2_000)
    args = parser.parse_args()
    densities = tuple(int(d) for d in args.densities.split(","))
    factors = tuple(float(f) for f in args.factors.split(","))

    data = fig19_periodic(densities_gbit=densities,
                          latency_factors=factors,
                          requests=args.requests)

    print("performance normalized to a hypothetical no-refresh system")
    print(f"{'density':>8} " + " ".join(f"f={f:<6}" for f in factors))
    for density in densities:
        row = [data[density][f]["performance"] for f in factors]
        cells = " ".join(f"{v:8.4f}" for v in row)
        print(f"{density:>6}Gb {cells}  {sparkline(row)}")

    print("\nDRAM energy (same normalization; lower is better)")
    for density in densities:
        row = [data[density][f]["energy"] for f in factors]
        cells = " ".join(f"{v:8.4f}" for v in row)
        print(f"{density:>6}Gb {cells}  {sparkline(row)}")

    largest = densities[-1]
    nominal = data[largest][factors[0]]["performance"]
    best = max(data[largest][f]["performance"] for f in factors)
    print(f"\nAt {largest} Gb, reduced periodic-refresh latency recovers "
          f"{(best / nominal - 1) * 100:.1f}% performance over nominal "
          f"(paper: +23.31% at 512 Gb with 0.36 x latency).")


if __name__ == "__main__":
    main()
