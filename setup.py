"""Legacy setup shim: enables `pip install -e .` without network access."""
from setuptools import setup

setup()
