"""Fig. 10: combined temperature x latency effect on N_RH.

Paper shape (Takeaway 4): temperature does not significantly change the
effect of reduced restoration latency (< 0.31 % N_RH shift 50 -> 80 C).
"""

from bench_util import run_once, save_result

from repro.analysis.figures import fig10_temperature


def bench_fig10(benchmark):
    data = run_once(benchmark, fig10_temperature, ("H5", "M2", "S6"),
                    per_region=8)
    lines = []
    for vendor, per_temp in data.items():
        lines.append(f"[Mfr. {vendor}]")
        for temperature, per_factor in per_temp.items():
            for factor, stats in sorted(per_factor.items(), reverse=True):
                lines.append(f"  T={temperature:.0f}C f={factor}: {stats.row()}")
    save_result("fig10_temperature", "\n".join(lines))
    # Takeaway 4: medians across temperatures agree within 2 %.
    for vendor, per_temp in data.items():
        for factor in (0.64, 0.36):
            medians = [per_factor[factor].median
                       for per_factor in per_temp.values()
                       if factor in per_factor]
            if len(medians) >= 2:
                assert max(medians) - min(medians) < 0.05, (vendor, factor)
