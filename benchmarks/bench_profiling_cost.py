"""§10 profiling overhead: 80 s batches, 127 KB/s, 68.8 minutes per bank.

The paper's numbers describe profiling a real bank with DRAM Bender; the
second block projects what characterizing a full simulated bank costs on
this machine with each device kernel, so the fast path's effect on
campaign planning is visible next to the paper's hardware figure.
"""

import time

import pytest

from bench_util import run_once, save_result

from repro.characterization.sweeps import characterize_module
from repro.core.profiling import profiling_cost
from repro.dram.module import DRAMModule

#: A small single-point grid, just enough to measure per-kernel throughput.
_GRID = dict(tras_factors=(0.45,), n_prs=(1,), per_region=48, seed=7)


def _measure() -> tuple:
    cost = profiling_cost()
    started = time.perf_counter()
    scalar = characterize_module("H5", kernel="scalar", **_GRID)
    scalar_s = time.perf_counter() - started
    started = time.perf_counter()
    vectorized = characterize_module("H5", kernel="vectorized", **_GRID)
    vectorized_s = time.perf_counter() - started
    assert scalar.to_json() == vectorized.to_json()
    points = len(scalar.measurements)
    return cost, points / scalar_s, points / vectorized_s


def bench_profiling(benchmark):
    cost, scalar_rps, vectorized_rps = run_once(benchmark, _measure)
    rows_per_bank = DRAMModule("H5").geometry.rows_per_bank
    scalar_min = rows_per_bank / scalar_rps / 60.0
    vectorized_min = rows_per_bank / vectorized_rps / 60.0
    text = (f"batch: {cost.batch_seconds:.1f} s\n"
            f"throughput: {cost.throughput_bytes_per_s / 1024:.1f} KB/s\n"
            f"bank: {cost.bank_minutes:.1f} min\n"
            f"blocked: {cost.blocked_bytes / 2**20:.2f} MiB\n"
            f"simulated platform, full bank ({rows_per_bank} rows) at one "
            f"test point on this machine:\n"
            f"  scalar kernel:     {scalar_rps:.0f} row-points/s "
            f"(~{scalar_min:.1f} min/bank)\n"
            f"  vectorized kernel: {vectorized_rps:.0f} row-points/s "
            f"(~{vectorized_min:.1f} min/bank)")
    save_result("profiling_cost", text)
    assert cost.batch_seconds == pytest.approx(80.0)
    assert cost.throughput_bytes_per_s == pytest.approx(127 * 1024, rel=0.01)
    assert cost.bank_minutes == pytest.approx(68.8, abs=0.1)
    # The fast path must actually drop the projected bank-characterization
    # time on the simulated platform.
    assert vectorized_min < scalar_min
