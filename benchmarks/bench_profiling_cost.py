"""§10 profiling overhead: 80 s batches, 127 KB/s, 68.8 minutes per bank."""

import pytest

from bench_util import run_once, save_result

from repro.core.profiling import profiling_cost


def bench_profiling(benchmark):
    cost = run_once(benchmark, profiling_cost)
    text = (f"batch: {cost.batch_seconds:.1f} s\n"
            f"throughput: {cost.throughput_bytes_per_s / 1024:.1f} KB/s\n"
            f"bank: {cost.bank_minutes:.1f} min\n"
            f"blocked: {cost.blocked_bytes / 2**20:.2f} MiB")
    save_result("profiling_cost", text)
    assert cost.batch_seconds == pytest.approx(80.0)
    assert cost.throughput_bytes_per_s == pytest.approx(127 * 1024, rel=0.01)
    assert cost.bank_minutes == pytest.approx(68.8, abs=0.1)
