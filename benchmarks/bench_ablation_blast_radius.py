"""Ablation: blast radius 1 vs 2 for preventive refreshes.

The paper configures all mitigations with a blast radius of 2 (refresh the
four rows within +/- 2 of an aggressor) to cover Half-Double (§9.1).  This
ablation quantifies the performance cost of that safety margin: +/- 1
refreshes half the rows per trigger and is correspondingly cheaper — the
design point pre-Half-Double mechanisms used.
"""

from bench_util import run_once, save_result

from repro.mitigations.base import Action, MitigationMechanism, PreventiveRefresh
from repro.mitigations.graphene import Graphene
from repro.sim.config import SystemConfig
from repro.sim.system import MemorySystem
from repro.workloads.suites import workload_by_name


class _NarrowBlastGraphene(Graphene):
    """Graphene variant refreshing only the +/- 1 neighbors."""

    name = "Graphene-r1"

    def on_activation(self, flat_bank: int, row: int,
                      now_ns: float) -> list[Action]:
        actions = super().on_activation(flat_bank, row, now_ns)
        return [PreventiveRefresh(a.flat_bank, a.aggressor_row,
                                  victim_offsets=(-1, 1))
                if isinstance(a, PreventiveRefresh) else a
                for a in actions]


def _run(mechanism: MitigationMechanism):
    config = SystemConfig(num_cores=1)
    trace = workload_by_name("ycsb.a", requests=4_000)
    result = MemorySystem(config, [trace], mitigation=mechanism).run()
    return {
        "ipc": result.mean_ipc,
        "prev_rows": result.controller_stats.preventive_refresh_rows,
        "prev_fraction": result.preventive_busy_fraction,
    }


def _collect():
    return {
        "radius 2 (paper)": _run(Graphene(32)),
        "radius 1": _run(_NarrowBlastGraphene(32)),
    }


def bench_ablation_blast_radius(benchmark):
    data = run_once(benchmark, _collect)
    lines = [f"{label}: ipc={m['ipc']:.4f} rows={m['prev_rows']} "
             f"busy={m['prev_fraction']:.4f}"
             for label, m in data.items()]
    save_result("ablation_blast_radius", "\n".join(lines))
    wide = data["radius 2 (paper)"]
    narrow = data["radius 1"]
    # Half the victims per trigger -> about half the refreshed rows and a
    # lower preventive-busy fraction.
    assert narrow["prev_rows"] <= wide["prev_rows"] * 0.6 + 4
    assert narrow["prev_fraction"] <= wide["prev_fraction"] + 1e-9
