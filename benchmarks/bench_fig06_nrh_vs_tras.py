"""Fig. 6: normalized N_RH vs charge-restoration latency, per vendor.

Paper shape: H/S degrade as latency reduces; safe reductions of 64 % (H),
82 % (M), and 36 % (S) change N_RH by < 3 %.
"""

from bench_util import run_once, save_result

from repro.analysis.figures import fig6_nrh_boxes

MODULES = ("H5", "H7", "M2", "M5", "S1", "S6")


def bench_fig6(benchmark):
    boxes = run_once(benchmark, fig6_nrh_boxes, MODULES, per_region=12)
    lines = []
    for vendor, per_factor in boxes.items():
        lines.append(f"[Mfr. {vendor}]")
        for factor, stats in sorted(per_factor.items(), reverse=True):
            lines.append(f"  f={factor}: {stats.row()}")
    save_result("fig06_nrh_vs_tras", "\n".join(lines))
    # Takeaway 1: small N_RH change at the vendor-safe latencies.  (The
    # M median reflects module M5's own published 0.93 ratio at 0.18.)
    assert boxes["H"][0.36].median >= 0.95
    assert boxes["M"][0.18].median >= 0.92
    assert boxes["S"][0.64].median >= 0.85
    # Mfr. S degrades visibly at deep reductions.
    assert boxes["S"][0.27].median < boxes["S"][1.00].median
