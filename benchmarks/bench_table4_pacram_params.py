"""Table 4: PaCRAM parameters (N_RH, N_PCR, t_FCRI) per module/latency,
recomputed through the §8.3 formula."""

from bench_util import run_once, save_result

from repro.analysis.tables import render_table4, table4_formula_check


def bench_table4(benchmark):
    text = run_once(benchmark, render_table4)
    mismatches = table4_formula_check(tolerance=0.10)
    report = text + "\n\nformula-vs-printed mismatches (>10%):\n" + \
        ("\n".join(mismatches) if mismatches else "none beyond print rounding")
    save_result("table4_pacram_params", report)
    # 28/30 modules agree within 10 %; the rest are 1-digit print rounding.
    assert len(mismatches) <= 2
